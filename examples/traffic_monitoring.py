"""Traffic congestion monitoring over a time-based window.

The paper's third motivating scenario: "in traffic systems, [a continuous
top-k query] can be used to monitor real-time data (e.g., vehicle speed,
vehicle density) from RFID readers and thus detect the top-10 congested
regions".  This example scores each road-segment report by a congestion
index (vehicle density divided by speed), uses a *time-based* window of the
last 600 time units sliding every 60, and reports the most congested
segments whenever the window moves.

Run with::

    python examples/traffic_monitoring.py
"""

import random
from dataclasses import dataclass

from repro import QuerySpec, StreamEngine
from repro.core.object import StreamObject


@dataclass(frozen=True)
class SegmentReport:
    """One RFID reading for a road segment."""

    segment: int
    speed_kmh: float
    vehicles_per_km: float


def congestion_index(report: SegmentReport) -> float:
    """Higher means more congested: dense traffic moving slowly."""
    return report.vehicles_per_km / max(report.speed_kmh, 1.0)


def generate_reports(count: int, segments: int = 40, seed: int = 3):
    """Synthetic RFID feed: a few segments experience a rush-hour jam."""
    rng = random.Random(seed)
    jammed = set(rng.sample(range(segments), 4))
    timestamp = 0
    for t in range(count):
        if rng.random() < 0.7:
            timestamp += 1
        segment = rng.randrange(segments)
        rush_hour = (timestamp // 400) % 2 == 1
        if segment in jammed and rush_hour:
            speed = rng.uniform(3, 15)
            density = rng.uniform(80, 150)
        else:
            speed = rng.uniform(35, 90)
            density = rng.uniform(5, 40)
        report = SegmentReport(segment=segment, speed_kmh=speed, vehicles_per_km=density)
        yield StreamObject(
            score=congestion_index(report), t=t, payload=report, timestamp=timestamp
        )


def main() -> None:
    # Top-10 congested readings within the last 600 time units, refreshed
    # every 60 time units.
    spec = QuerySpec().window(600).top(10).slide(60).over_time()

    def print_congestion(name: str, result) -> None:
        if result.slide_index % 4:
            return
        segments = sorted({obj.payload.segment for obj in result})
        worst = result.objects[0]
        print(
            f"t={result.window_end:>5}  congested segments {segments} — "
            f"worst: segment {worst.payload.segment} "
            f"({worst.payload.speed_kmh:.0f} km/h, "
            f"{worst.payload.vehicles_per_km:.0f} veh/km, index {worst.score:.1f})"
        )

    engine = StreamEngine()
    traffic = engine.subscribe(
        "traffic", spec, algorithm="SAP", keep_results=False,
        on_result=print_congestion,
    )
    print(f"query: {traffic.query.describe()}\n")

    # The RFID feed streams straight into the engine; close() emits the
    # final (end-of-stream) report of the time-based window.
    engine.push_many(generate_reports(8000))
    engine.close()

    snapshot = traffic.snapshot()
    print(f"\ncandidates kept by SAP at the end: {snapshot['candidate_count']} "
          f"(window duration {traffic.query.n} time units)")


if __name__ == "__main__":
    main()
