"""Quickstart: monitor the top-k of a sliding window with SAP.

Run with::

    python examples/quickstart.py

The example builds a continuous top-k query ``⟨n=1000, k=5, s=50⟩``, streams
5,000 uniformly random objects through the SAP framework, and prints the
answer every few window slides.
"""

from repro import SAPTopK, TopKQuery, run_algorithm
from repro.streams import UncorrelatedStream


def main() -> None:
    # A continuous top-5 query over the last 1,000 objects, re-evaluated
    # every 50 arrivals.
    query = TopKQuery(n=1000, k=5, s=50)

    # Any iterable of StreamObject works; here we use the synthetic
    # "time-unrelated" stream from the paper's evaluation.
    stream = UncorrelatedStream(seed=7).take(5000)

    algorithm = SAPTopK(query)
    report = run_algorithm(algorithm, stream)

    print(f"query     : {query.describe()}")
    print(f"algorithm : {algorithm.name}")
    print(f"slides    : {report.slides}")
    print(f"runtime   : {report.elapsed_seconds:.3f} s")
    print(f"candidates: {report.average_candidates:.1f} on average "
          f"(window holds {query.n} objects)")
    print()

    for result in report.results[:: max(1, len(report.results) // 5)]:
        scores = ", ".join(f"{score:.3f}" for score in result.scores)
        print(f"window #{result.slide_index:>3} (newest arrival t={result.window_end}): "
              f"top-{query.k} scores = [{scores}]")


if __name__ == "__main__":
    main()
