"""Quickstart: monitor the top-k of a sliding window with SAP.

Run with::

    python examples/quickstart.py

The example builds a continuous top-k query ``⟨n=1000, k=5, s=50⟩`` with
the :class:`QuerySpec` builder, subscribes it on the push-based
:class:`StreamEngine`, and streams 5,000 uniformly random objects through
it — one at a time, the way an unbounded feed would arrive.  The legacy
one-shot API (``run_algorithm``) produces identical answers; see the
commented block at the end.
"""

from repro import QuerySpec, StreamEngine
from repro.streams import UncorrelatedStream


def main() -> None:
    # A continuous top-5 query over the last 1,000 objects, re-evaluated
    # every 50 arrivals.
    spec = QuerySpec().window(1000).top(5).slide(50)

    engine = StreamEngine()
    watch = engine.subscribe("watch", spec, algorithm="SAP")

    # Push the synthetic "time-unrelated" stream from the paper's
    # evaluation.  feed() never materialises the stream; engine memory
    # stays O(window) however long it runs.
    UncorrelatedStream(seed=7).feed(engine, 5000)

    stats = watch.stats()
    print(f"query     : {watch.query.describe()}")
    print(f"algorithm : {watch.algorithm.name}")
    print(f"slides    : {stats['slides']:.0f}")
    print(f"candidates: {stats['average_candidates']:.1f} on average "
          f"(window holds {watch.query.n} objects)")
    print(f"latency   : p50 {stats['median_latency'] * 1e6:.0f} µs, "
          f"p95 {stats['p95_latency'] * 1e6:.0f} µs per slide")
    print()

    results = watch.results()
    for result in results[:: max(1, len(results) // 5)]:
        scores = ", ".join(f"{score:.3f}" for score in result.scores)
        print(f"window #{result.slide_index:>3} (newest arrival t={result.window_end}): "
              f"top-5 scores = [{scores}]")

    engine.close()

    # The legacy one-shot API is a thin wrapper over the same engine and
    # returns identical answers:
    #
    #     from repro import SAPTopK, TopKQuery, run_algorithm
    #     report = run_algorithm(
    #         SAPTopK(TopKQuery(n=1000, k=5, s=50)),
    #         UncorrelatedStream(seed=7).take(5000),
    #     )
    #     print(report.summary())


if __name__ == "__main__":
    main()
