"""A mixed-window query fleet spread over worker processes.

Eight users watch one market feed with four different window shapes.  A
single :class:`repro.StreamEngine` would run all of them on one core (the
GIL); the :class:`repro.cluster.ShardedStreamEngine` below places each
query on one of four worker processes instead — queries sharing a window
shape land on the same shard (hash-window placement), so they keep the
``k_max`` shared execution plans of the multi-query plane — and fans the
feed out in slide-aligned chunks.

Halfway through, one query is *rebalanced* to another shard while the
stream is live: its state (configuration, window contents, slide clock,
retained answers, metrics) crosses the process boundary through the
serialization layer (:mod:`repro.core.state`), and its answers continue
exactly as if it had never moved.

Run with::

    python examples/sharded_engine.py
"""

from repro import QuerySpec
from repro.cluster import ShardedStreamEngine
from repro.streams import StockStream


def main() -> None:
    shapes = [
        QuerySpec(n=1000, k=10, s=50),   # last "minute", fine slide
        QuerySpec(n=1000, k=50, s=50),   # same shape, bigger k: same shard
        QuerySpec(n=500, k=5, s=25),     # half-size window
        QuerySpec(n=2000, k=20, s=100),  # long window
    ]
    with ShardedStreamEngine(shards=4, placement="hash-window") as engine:
        for index in range(8):
            engine.subscribe(
                f"user-{index}",
                shapes[index % len(shapes)],
                algorithm="SAP",
                result_buffer=4,
            )

        feed = StockStream(stocks=200, seed=5)
        objects = list(feed.take(30_000))

        engine.push_many(objects[:15_000])
        engine.synchronize()

        # Move one query to the least busy shard, mid-stream and live.
        loads = {record["shard"]: record["load"] for record in engine.describe_shards()}
        target = min(loads, key=loads.get)
        moved = engine.rebalance("user-1", to_shard=target)
        print(f"rebalanced {moved.name} to shard {moved.shard} (live)\n")

        engine.push_many(objects[15_000:])
        engine.synchronize()

        print("placement after rebalance:")
        for record in engine.describe_shards():
            members = ", ".join(record["members"]) or "-"
            print(f"  shard {record['shard']} (load {record['load']}): {members}")
        print()

        merged = engine.aggregate_stats()
        print(
            "cluster latency (merged from per-slide samples): "
            f"p50={merged['p50_latency'] * 1e6:.0f}us "
            f"p95={merged['p95_latency'] * 1e6:.0f}us "
            f"p99={merged['p99_latency'] * 1e6:.0f}us"
        )
        for name in engine.subscriptions():
            latest = engine.subscription(name).latest()
            top = f"{latest.scores[0]:.4f}" if latest and latest.scores else "-"
            print(f"  {name:<8} shard={engine.shard_of(name)}  best={top}")


if __name__ == "__main__":
    main()
