"""Serving layer walkthrough: a producer and a consumer over real HTTP.

This example boots ``repro serve`` in-process (the same server the CLI
command runs), then plays both sides of the network:

* the **producer** POSTs stock ticks to ``/events`` in at-least-once
  style — every batch is sent *twice*, and the server's idempotent
  dedupe window collapses the redeliveries before the engine sees them;
* the **consumer** opens the SSE stream of a subscription and prints the
  continuous top-k answers as the server pushes them.

At the end, the answers received over the network are checked
byte-for-byte against an embedded :class:`repro.StreamEngine` fed the
same admitted events — the serving layer adds a network surface, not an
approximation.  This script doubles as the CI serving smoke test: it
exits non-zero unless the results match exactly and the server shuts
down cleanly.

Run with::

    PYTHONPATH=src python examples/serving_client.py
"""

import json
import socket
import threading
import urllib.request

from repro import StreamEngine, StreamObject, TopKQuery
from repro.serve import ServeConfig, run_in_thread
from repro.streams import make_dataset

STREAM_LENGTH = 2_000
QUERY = {"name": "hot-stocks", "n": 200, "k": 5, "s": 25}
BATCH = 100


def request(base_url, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base_url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as response:
        raw = response.read()
        return json.loads(raw) if raw else None


def consume_sse(port, path, records, ready):
    """A minimal SSE consumer on a raw socket (no client library needed)."""
    sock = socket.create_connection(("127.0.0.1", port))
    sock.sendall(f"GET {path} HTTP/1.1\r\nHost: local\r\n\r\n".encode())
    buffer = b""
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
            if b": subscribed" in buffer:
                ready.set()
            while b"\n\n" in buffer:
                frame, _, buffer = buffer.partition(b"\n\n")
                event, data = None, []
                for line in frame.splitlines():
                    if line.startswith(b"event: "):
                        event = line[7:].decode()
                    elif line.startswith(b"data: "):
                        data.append(line[6:])
                if event == "result":
                    records.append(json.loads(b"\n".join(data)))
                elif event == "end":
                    return
    finally:
        sock.close()


def embedded_answers(scores):
    """Ground truth: the same admitted events through an embedded engine."""
    engine = StreamEngine(keep_results=True)
    engine.subscribe(
        "ref", TopKQuery(n=QUERY["n"], k=QUERY["k"], s=QUERY["s"])
    )
    engine.push_many(
        [StreamObject(score=score, t=t) for t, score in enumerate(scores)],
        chunk_size=len(scores),
    )
    produced = engine.drain_results().get("ref", [])
    engine.close()
    return [
        (r.slide_index, r.window_end, tuple((o.score, o.t) for o in r.objects))
        for r in produced
    ]


def main() -> int:
    scores = [obj.score for obj in make_dataset("STOCK").take(STREAM_LENGTH)]

    with run_in_thread(ServeConfig(port=0, linger_ms=20)) as handle:
        print(f"server    : {handle.base_url}")
        created = request(handle.base_url, "POST", "/subscriptions", QUERY)
        print(
            f"subscribed: {created['name']} "
            f"(n={QUERY['n']}, k={QUERY['k']}, s={QUERY['s']})"
        )

        records, ready = [], threading.Event()
        consumer = threading.Thread(
            target=consume_sse,
            args=(handle.port, f"/subscriptions/{QUERY['name']}/stream", records, ready),
            daemon=True,
        )
        consumer.start()
        ready.wait(5)

        duplicates = 0
        for begin in range(0, len(scores), BATCH):
            events = [
                {"id": f"tick-{begin + i}", "score": score}
                for i, score in enumerate(scores[begin : begin + BATCH])
            ]
            # At-least-once producer: every batch is delivered twice.
            request(handle.base_url, "POST", "/events", {"events": events})
            reply = request(handle.base_url, "POST", "/events", {"events": events})
            duplicates += reply["duplicates"]
        print(f"produced  : {len(scores)} ticks, {duplicates} redeliveries deduped")

        expected = embedded_answers(scores)
        polled = request(
            handle.base_url, "GET", f"/subscriptions/{QUERY['name']}/results"
        )["results"]
        stats = request(handle.base_url, "GET", f"/subscriptions/{QUERY['name']}")
        print(
            f"delivered : {stats['results_pushed']} answers "
            f"({stats['clients']} streaming client)"
        )
        for record in polled[-3:]:
            top = ", ".join(f"{o['score']:.2f}" for o in record["objects"])
            print(f"  slide {record['slide_index']:>3}: top-{QUERY['k']} = [{top}]")

    consumer.join(5)  # the server's shutdown ends the SSE stream

    served = [
        (r["slide_index"], r["window_end"], tuple((o["score"], o["t"]) for o in r["objects"]))
        for r in polled
    ]
    streamed = [
        (r["slide_index"], r["window_end"], tuple((o["score"], o["t"]) for o in r["objects"]))
        for r in records
    ]
    if served != expected:
        print("FAIL: polled answers differ from the embedded engine")
        return 1
    if streamed != expected:
        print("FAIL: streamed answers differ from the embedded engine")
        return 1
    if consumer.is_alive():
        print("FAIL: the SSE stream did not end on server shutdown")
        return 1
    print(f"exact     : {len(expected)} answers byte-identical to the embedded engine")
    print("shutdown  : clean (stream ended, server thread joined)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
