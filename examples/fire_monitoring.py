"""Fire-risk monitoring from sensor data.

The paper's second motivating scenario: "in fire monitoring systems, a
top-k query can be used to monitor real-time data (e.g., temperatures,
humidity, and UV indexes) from sensors and hence detect the ten regions in
which conflagrations are most likely to happen."  Each sensor reading is
scored by a simple fire-risk index combining temperature, humidity, and UV;
the query continuously reports the ten most at-risk readings of the last
5,000 measurements, and the example raises an alert whenever a region stays
in the answer for several consecutive windows.

Run with::

    python examples/fire_monitoring.py
"""

import random
from collections import Counter
from dataclasses import dataclass

from repro import QuerySpec, StreamEngine
from repro.core.object import StreamObject


@dataclass(frozen=True)
class SensorReading:
    region: int
    temperature_c: float
    humidity_pct: float
    uv_index: float


def fire_risk(reading: SensorReading) -> float:
    """Hotter, drier, sunnier readings score higher."""
    dryness = max(0.0, 100.0 - reading.humidity_pct)
    return 0.6 * reading.temperature_c + 0.3 * dryness + 0.1 * reading.uv_index * 10.0


def generate_readings(count: int, regions: int = 60, seed: int = 11):
    rng = random.Random(seed)
    # Two regions slowly develop heat-wave conditions.
    hot_regions = set(rng.sample(range(regions), 2))
    for t in range(count):
        region = rng.randrange(regions)
        heating = min(1.0, t / count * 2.0) if region in hot_regions else 0.0
        reading = SensorReading(
            region=region,
            temperature_c=rng.gauss(24 + 20 * heating, 3),
            humidity_pct=max(5.0, rng.gauss(55 - 35 * heating, 8)),
            uv_index=min(11.0, max(0.0, rng.gauss(5 + 4 * heating, 1.5))),
        )
        yield StreamObject(score=fire_risk(reading), t=t, payload=reading)


def main() -> None:
    # The ten most at-risk readings of the last 5,000 measurements,
    # refreshed every 250 readings.
    spec = QuerySpec().window(5000).top(10).slide(250).scored_by(fire_risk)
    persistent = Counter()

    def check_alerts(name: str, result) -> None:
        """Alert for regions in the answer for 10 consecutive checks."""
        regions_in_answer = {obj.payload.region for obj in result}
        for region in regions_in_answer:
            persistent[region] += 1
        for region in (r for r in regions_in_answer if persistent[r] == 10):
            worst = max(
                (o for o in result if o.payload.region == region),
                key=lambda o: o.score,
            )
            print(
                f"ALERT after window #{result.slide_index}: region {region:>2} "
                f"persistently at risk (temp {worst.payload.temperature_c:.1f}°C, "
                f"humidity {worst.payload.humidity_pct:.0f}%, risk {worst.score:.1f})"
            )
        for region in list(persistent):
            if region not in regions_in_answer:
                del persistent[region]

    engine = StreamEngine()
    fire = engine.subscribe(
        "fire", spec, algorithm="SAP", result_buffer=1, on_result=check_alerts
    )
    print(f"query: {fire.query.describe()}\n")

    # The sensor feed is a generator: the engine consumes it one reading at
    # a time and never holds more than one window of it.
    engine.push_many(generate_readings(20_000))
    engine.close()

    print("\nFinal top-risk readings:")
    for rank, obj in enumerate(fire.latest(), start=1):
        reading = obj.payload
        print(
            f"  #{rank:<2} region {reading.region:>2}  "
            f"{reading.temperature_c:5.1f}°C  {reading.humidity_pct:4.0f}%RH  "
            f"UV {reading.uv_index:4.1f}  risk {obj.score:6.1f}"
        )


if __name__ == "__main__":
    main()
