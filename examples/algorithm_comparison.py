"""Compare SAP against every baseline on a chosen dataset.

Reproduces, at example scale, the comparison behind Figures 9 and 10 of the
paper: the same stream is pushed through SAP (all three partitioners),
MinTopK, SMA, k-skyband, and the brute-force oracle; the script verifies
that all answers agree and prints a table of running time, average
candidate count, and memory.

Run with::

    python examples/algorithm_comparison.py [DATASET]

where DATASET is one of STOCK, TRIP, PLANET, TIMEU, TIMER (default TIMER).
"""

import sys

from repro import TopKQuery, algorithm_factories, compare_algorithms
from repro.streams import make_dataset


def main() -> None:
    dataset = sys.argv[1].upper() if len(sys.argv) > 1 else "TIMER"
    stream = make_dataset(dataset).take(8000)
    query = TopKQuery(n=1000, k=20, s=50)

    # Every configuration comes from the unified registry; the brute-force
    # oracle goes first so it serves as the agreement reference.
    factories = list(
        algorithm_factories(
            "brute-force",
            "SAP-equal",
            "SAP-dynamic",
            "SAP-enhanced",
            "MinTopK",
            "SMA",
            "k-skyband",
        ).values()
    )

    print(f"dataset  : {dataset} ({len(stream)} objects)")
    print(f"query    : {query.describe()}")
    outcome = compare_algorithms(factories, stream, query)
    print(f"all algorithms agree: {outcome.agree}\n")

    header = f"{'algorithm':<26} {'seconds':>9} {'avg candidates':>15} {'memory KB':>11}"
    print(header)
    print("-" * len(header))
    for name in outcome.names():
        report = outcome.report(name)
        print(
            f"{name:<26} {report.elapsed_seconds:9.3f} "
            f"{report.average_candidates:15.1f} {report.average_memory_kb:11.1f}"
        )


if __name__ == "__main__":
    main()
