"""Several continuous top-k queries sharing one pass over the stream.

A monitoring dashboard rarely shows a single view: a trader may watch the
top-5 transactions of the last minute, the top-20 of the last hour, and a
tumbling per-day leaderboard at the same time.  The
:class:`repro.StreamEngine` feeds every stream object exactly once and
buckets the views into query groups by window shape: views that share a
shape (the three last-minute views below) also share one slide batcher and
one SAP sealing pipeline at the group's largest ``k`` — adding another
user to an already-watched shape is nearly free.

Run with::

    python examples/multi_query_dashboard.py
"""

from repro import QuerySpec, StreamEngine
from repro.streams import StockStream


def main() -> None:
    engine = StreamEngine()
    views = {
        # Three users watching the same last-minute shape: one query
        # group, one shared SAP plan at k_max=20.
        "last-minute top-3": QuerySpec(n=500, k=3, s=100),
        "last-minute top-10": QuerySpec(n=500, k=10, s=100),
        "last-minute top-20": QuerySpec(n=500, k=20, s=100),
        # Different shapes get their own groups.
        "last-hour top-20": QuerySpec(n=5000, k=20, s=500),
        "per-day leaderboard": QuerySpec(n=2000, k=10, s=2000),
    }
    for name, spec in views.items():
        engine.subscribe(name, spec, algorithm="SAP", result_buffer=1)

    # One pass over the feed serves every view; nothing is materialised.
    StockStream(stocks=200, seed=5).feed(engine, 12_000)

    print("dashboard views fed by a single pass over the stream\n")
    for group in engine.groups():
        plans = ", ".join(
            f"{plan['kind']} plan at k_max={plan['k_max']}" for plan in group["plans"]
        )
        print(f"group n={group['n']} s={group['s']}: {len(group['members'])} view(s)"
              + (f", sharing one {plans}" if plans else ""))
    print()

    for name in engine.subscriptions():
        view = engine.subscription(name)
        final = view.latest()
        best = final.objects[0]
        print(f"{name:<22} ({view.query.describe()})")
        print(f"  refreshed {view.results_delivered} times; "
              f"current best trade value {best.score:,.0f} "
              f"(stock {best.payload.stock_id})")
        print(f"  SAP kept {view.algorithm.candidate_count()} candidates; "
              f"stats: {view.algorithm.stats.as_dict()}\n")

    engine.close()


if __name__ == "__main__":
    main()
