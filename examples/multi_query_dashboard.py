"""Several continuous top-k queries sharing one pass over the stream.

A monitoring dashboard rarely shows a single view: a trader may watch the
top-5 transactions of the last minute, the top-20 of the last hour, and a
tumbling per-day leaderboard at the same time.  The
:class:`repro.MultiQueryEngine` feeds every stream object exactly once and
lets each registered query slide its own window.

Run with::

    python examples/multi_query_dashboard.py
"""

from repro import MultiQueryEngine, SAPTopK, TopKQuery
from repro.streams import StockStream


def main() -> None:
    stream = StockStream(stocks=200, seed=5).take(12_000)

    engine = MultiQueryEngine()
    views = {
        "last-minute top-5": TopKQuery(n=500, k=5, s=100),
        "last-hour top-20": TopKQuery(n=5000, k=20, s=500),
        "per-day leaderboard": TopKQuery(n=2000, k=10, s=2000),
    }
    for name, query in views.items():
        engine.register(name, SAPTopK(query))

    answers = engine.run(stream)

    print("dashboard views fed by a single pass over the stream\n")
    for name, query in views.items():
        results = answers[name]
        final = results[-1]
        best = final.objects[0]
        print(f"{name:<22} ({query.describe()})")
        print(f"  refreshed {len(results)} times; "
              f"current best trade value {best.score:,.0f} "
              f"(stock {best.payload.stock_id})")
        algorithm = engine.algorithm(name)
        print(f"  SAP kept {algorithm.candidate_count()} candidates; "
              f"stats: {algorithm.stats.as_dict()}\n")


if __name__ == "__main__":
    main()
