"""Several continuous top-k queries sharing one pass over the stream.

A monitoring dashboard rarely shows a single view: a trader may watch the
top-5 transactions of the last minute, the top-20 of the last hour, and a
tumbling per-day leaderboard at the same time.  The
:class:`repro.StreamEngine` feeds every stream object exactly once and lets
each subscribed query slide its own window — any registered algorithm can
back any view.

Run with::

    python examples/multi_query_dashboard.py
"""

from repro import QuerySpec, StreamEngine
from repro.streams import StockStream


def main() -> None:
    engine = StreamEngine()
    views = {
        "last-minute top-5": QuerySpec(n=500, k=5, s=100),
        "last-hour top-20": QuerySpec(n=5000, k=20, s=500),
        "per-day leaderboard": QuerySpec(n=2000, k=10, s=2000),
    }
    for name, spec in views.items():
        engine.subscribe(name, spec, algorithm="SAP", result_buffer=1)

    # One pass over the feed serves every view; nothing is materialised.
    StockStream(stocks=200, seed=5).feed(engine, 12_000)

    print("dashboard views fed by a single pass over the stream\n")
    for name in engine.subscriptions():
        view = engine.subscription(name)
        final = view.latest()
        best = final.objects[0]
        print(f"{name:<22} ({view.query.describe()})")
        print(f"  refreshed {view.results_delivered} times; "
              f"current best trade value {best.score:,.0f} "
              f"(stock {best.payload.stock_id})")
        print(f"  SAP kept {view.algorithm.candidate_count()} candidates; "
              f"stats: {view.algorithm.stats.as_dict()}\n")

    engine.close()


if __name__ == "__main__":
    main()
