"""Stock-market monitoring: the paper's motivating example.

"In stock market, a continuous top-k query can be used to monitor real-time
transactions and hence retrieve the 10 most significant transactions within
the last 30 minutes."  This example reproduces that scenario on the
synthetic STOCK stream (transaction significance = price × volume), runs
SAP and MinTopK side by side, and prints both the answers and the
efficiency comparison.

Run with::

    python examples/stock_monitoring.py
"""

from repro import MinTopK, SAPTopK, TopKQuery, compare_algorithms
from repro.streams import StockStream


def main() -> None:
    # Top-10 transactions over the most recent 2,000 trades, refreshed
    # every 100 trades (the count-based analogue of "last 30 minutes").
    query = TopKQuery(n=2000, k=10, s=100)
    stream = StockStream(stocks=250, seed=42).take(10_000)

    outcome = compare_algorithms([SAPTopK, MinTopK], stream, query)
    assert outcome.agree, "exact algorithms must agree"

    sap_report = outcome.report("SAP[enhanced-dynamic]")
    mintopk_report = outcome.report("MinTopK")

    print("Top-10 most significant transactions in the final window:")
    final = sap_report.results[-1]
    for rank, obj in enumerate(final, start=1):
        trade = obj.payload
        print(
            f"  #{rank:<2} stock {trade.stock_id:<4} "
            f"price {trade.price:10.2f}  volume {trade.volume:12.1f}  "
            f"value {obj.score:16.2f}"
        )

    print()
    print("Efficiency comparison over the whole stream:")
    for report in (sap_report, mintopk_report):
        print(
            f"  {report.algorithm:<22} {report.elapsed_seconds:7.3f} s, "
            f"{report.average_candidates:7.1f} candidates on average, "
            f"{report.average_memory_kb:7.1f} KB"
        )


if __name__ == "__main__":
    main()
