"""Kill an engine mid-stream, recover it, and prove nothing was lost.

A durable :class:`repro.StreamEngine` journals every slide-aligned chunk
into a write-ahead log and periodically checkpoints every subscription's
state (windows, candidate structures, slide clocks, retained answers).
This example crashes one the hard way — the process state is simply
abandoned, exactly what ``SIGKILL`` leaves behind — then calls
:meth:`repro.StreamEngine.recover` on the same directory and continues
the stream.  An uncrashed twin ingests the identical sequence in one
life; the recovered engine's answers must match the twin's exactly,
slide for slide, object for object.  That is the determinism argument of
the paper turned into a durability guarantee: answers are a pure
function of subscriptions + object sequence, so checkpoint + WAL-tail
replay reproduces the pre-crash answer stream byte-identically.

Run with::

    python examples/crash_recovery.py [durability-dir]

The same recovery path powers ``repro serve --durability-dir`` (whole
processes) and ``ShardRouter.resurrect`` (single shard workers).
"""

import shutil
import sys
import tempfile

from repro import QuerySpec, StreamEngine
from repro.streams import StockStream

CRASH_AT = 6_000
TOTAL = 12_000
CHUNK = 100


def subscribe(engine) -> None:
    engine.subscribe("minute-top10", QuerySpec(n=1000, k=10, s=50))
    engine.subscribe(
        "fast-top5", QuerySpec(n=500, k=5, s=25).using("MinTopK")
    )


def signature(drained):
    """A comparable form of an answer stream."""
    return {
        name: [
            (r.slide_index, r.window_end, tuple((o.score, o.t) for o in r.objects))
            for r in results
        ]
        for name, results in sorted(drained.items())
    }


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-crash-demo-"
    )
    stream = list(StockStream(stocks=200, seed=5).take(TOTAL))

    # Life 1: a durable engine ingests half the stream, then "crashes".
    engine = StreamEngine.recover(directory, checkpoint_interval=16)
    subscribe(engine)
    engine.push_many(stream[:CRASH_AT], chunk_size=CHUNK)
    print(f"life 1 : ingested {CRASH_AT} objects, then SIGKILL (abandoned)")
    del engine  # no close(), no flush — the journal is all that survives

    # Life 2: recover from the directory and finish the stream.
    recovered = StreamEngine.recover(directory, checkpoint_interval=16)
    report = recovered.recovery_report
    print(
        f"life 2 : recovered {report.restored_subscriptions} subscriptions "
        f"from checkpoint {report.checkpoint_seq}, replayed "
        f"{report.replayed_chunks} WAL slides ({report.replayed_objects} "
        f"objects) in {report.seconds:.3f}s"
    )
    recovered.push_many(stream[CRASH_AT:], chunk_size=CHUNK)

    # The oracle: a twin that never crashed.
    twin = StreamEngine()
    subscribe(twin)
    twin.push_many(stream, chunk_size=CHUNK)

    recovered_answers = signature(recovered.drain_results())
    twin_answers = signature(twin.drain_results())
    for name in twin_answers:
        count = len(twin_answers[name])
        matches = recovered_answers[name] == twin_answers[name]
        print(f"{name:13s}: {count} answers, identical to twin: {matches}")
        assert matches, f"{name}: recovered stream diverged"

    recovered.close()
    twin.close()
    if len(sys.argv) <= 1:
        shutil.rmtree(directory, ignore_errors=True)
    print("crash-exact recovery verified")


if __name__ == "__main__":
    main()
