"""Adaptive control plane walkthrough: a MAPE-K loop over a live engine.

A monitoring query runs over a regime-switching stream (the DRIFT
dataset).  Static configurations leave performance on the table: the
paper's enhanced dynamic partitioner is the right choice on stationary
score distributions, but under regime switching its Mann-Whitney sealing
tests keep paying statistical cost without candidate savings.  The
controller notices the drift (using the very same rank-sum test, applied
to the per-slide best scores) and swaps the partitioner mid-run — the
engine is drained at a slide boundary and rebuilt from live window state,
so the answers are byte-identical to an uncontrolled run.

Run with::

    PYTHONPATH=src python examples/adaptive_control.py
"""

from repro import AdaptiveController, Policy, QuerySpec, StreamEngine
from repro.streams import DriftingStream

STREAM_LENGTH = 12_000


def run(controlled: bool):
    engine = StreamEngine(return_results=False)
    watch = engine.subscribe(
        "watch",
        QuerySpec().window(1000).top(10).slide(50),
        algorithm="SAP",  # the paper's default: enhanced dynamic partitioner
    )
    controller = None
    if controlled:
        # Policies are declarative and JSON-loadable; Policy.from_file(
        # "examples/control_policy.json") works the same way.  The default
        # reacts to score drift and candidate blowup with exact tactics.
        controller = AdaptiveController(Policy.default())
        engine.attach_controller(controller)
    engine.push_many(DriftingStream(seed=19).objects(STREAM_LENGTH))
    engine.flush()
    answers = [(r.slide_index, tuple(r.scores)) for r in watch.results()]
    return answers, watch.stats(), controller


def main() -> None:
    static_answers, static_stats, _ = run(controlled=False)
    adaptive_answers, adaptive_stats, controller = run(controlled=True)

    print(f"stream        : DRIFT, {STREAM_LENGTH} objects, regime switch every 2000")
    print(f"slides        : {int(adaptive_stats['slides'])}")
    print(f"answers equal : {static_answers == adaptive_answers}")
    print(
        "latency (adaptive) : "
        f"p50={adaptive_stats['p50_latency']:.6f}s "
        f"p95={adaptive_stats['p95_latency']:.6f}s "
        f"p99={adaptive_stats['p99_latency']:.6f}s"
    )
    print("adaptation log:")
    for event in controller.events():
        status = "applied" if event.applied else "declined"
        print(
            f"  slide {event.slide_index:>4}  {event.subscription:<8} "
            f"{event.tactic:<18} <- {event.trigger} ({status})"
        )
    account = controller.accuracy_report()
    print(f"accuracy      : exact={account['exact']} (shed {account['shed']} objects)")


if __name__ == "__main__":
    main()
