"""Shim for environments without PEP 517 build tooling.

All metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` on machines with bare setuptools (no ``wheel``,
no network for build isolation).  Use ``pip install -e .`` when possible.
"""

from setuptools import setup

setup()
