"""Tests for admission control and the bounded per-client channels
(:mod:`repro.serve.backpressure`)."""

import asyncio

import pytest

from repro.serve.backpressure import (
    DISCONNECT,
    DROP_OLDEST,
    AdmissionControl,
    AdmissionError,
    ChannelClosed,
    ClientChannel,
)


class TestAdmissionControl:
    def test_admits_up_to_the_cap_then_rejects(self):
        control = AdmissionControl(max_subscriptions=2, retry_after=7)
        control.admit()
        control.admit()
        with pytest.raises(AdmissionError) as err:
            control.admit()
        assert err.value.retry_after == 7  # becomes the Retry-After header
        assert err.value.limit == 2

    def test_release_reopens_a_slot(self):
        control = AdmissionControl(max_subscriptions=1)
        control.admit()
        with pytest.raises(AdmissionError):
            control.admit()
        control.release()
        control.admit()  # does not raise

    def test_stats_count_rejections(self):
        control = AdmissionControl(max_subscriptions=1)
        control.admit()
        for _ in range(3):
            with pytest.raises(AdmissionError):
                control.admit()
        stats = control.stats()
        assert stats["active"] == 1
        assert stats["max_subscriptions"] == 1
        assert stats["rejected"] == 3

    def test_release_never_goes_negative(self):
        control = AdmissionControl(max_subscriptions=4)
        control.release()
        assert control.stats()["active"] == 0


class TestClientChannelDropOldest:
    def test_bounded_queue_drops_oldest(self):
        channel = ClientChannel(maxlen=3, policy=DROP_OLDEST)
        for i in range(5):
            assert channel.offer(i)  # drop-oldest always accepts
        assert channel.stats()["dropped"] == 2
        assert channel.stats()["queue"] == 3

        async def drain():
            return [await channel.get() for _ in range(3)]

        # The two oldest answers (0, 1) were sacrificed; order preserved.
        assert asyncio.run(drain()) == [2, 3, 4]

    def test_get_waits_for_offer(self):
        channel = ClientChannel(maxlen=4, policy=DROP_OLDEST)

        async def go():
            async def producer():
                await asyncio.sleep(0.01)
                channel.offer("late")

            task = asyncio.ensure_future(producer())
            value = await channel.get()
            await task
            return value

        assert asyncio.run(go()) == "late"


class TestClientChannelDisconnect:
    def test_overflow_disconnects_but_keeps_pending_readable(self):
        channel = ClientChannel(maxlen=2, policy=DISCONNECT)
        assert channel.offer("a")
        assert channel.offer("b")
        assert not channel.offer("c")  # overflow: the client is cut off
        assert channel.closed
        assert channel.close_reason == "slow-client"
        assert channel.stats()["dropped"] == 1

        async def drain():
            got = [await channel.get(), await channel.get()]
            with pytest.raises(ChannelClosed):
                await channel.get()
            return got

        # Already-queued answers are still delivered before the cut.
        assert asyncio.run(drain()) == ["a", "b"]

    def test_offer_after_close_is_refused(self):
        channel = ClientChannel(maxlen=2, policy=DISCONNECT)
        channel.close("client-disconnect")
        assert not channel.offer("x")
        assert channel.stats()["queue"] == 0

    def test_close_is_idempotent_and_keeps_first_reason(self):
        channel = ClientChannel(maxlen=2, policy=DROP_OLDEST)
        channel.close("first")
        channel.close("second")
        assert channel.close_reason == "first"

    def test_close_wakes_a_blocked_reader(self):
        channel = ClientChannel(maxlen=2, policy=DROP_OLDEST)

        async def go():
            async def closer():
                await asyncio.sleep(0.01)
                channel.close("server-shutdown")

            task = asyncio.ensure_future(closer())
            with pytest.raises(ChannelClosed):
                await channel.get()
            await task

        asyncio.run(go())
