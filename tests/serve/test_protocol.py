"""Wire-format tests for :mod:`repro.serve.protocol`.

The parser and framers are plain functions over bytes, so everything here
runs without a socket: HTTP requests come from in-memory stream readers,
WebSocket frames round-trip through the encoder and decoder directly.
"""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    WS_CLOSE,
    WS_PING,
    WS_TEXT,
    HttpRequest,
    ProtocolError,
    encode_websocket_frame,
    error_response,
    is_websocket_upgrade,
    read_request,
    read_websocket_frame,
    render_response,
    sse_comment,
    sse_event,
    websocket_accept_key,
    websocket_handshake_response,
)


def parse(raw: bytes) -> HttpRequest:
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHttpParsing:
    def test_request_line_query_and_headers(self):
        req = parse(
            b"GET /subscriptions/q1/results?drain=true&x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\nX-Custom: Value\r\n\r\n"
        )
        assert req.method == "GET"
        assert req.path == "/subscriptions/q1/results"
        assert req.segments == ("subscriptions", "q1", "results")
        assert req.query == {"drain": "true", "x": "1"}
        assert req.headers["x-custom"] == "Value"  # header names lowercase

    def test_body_read_by_content_length(self):
        body = json.dumps({"events": [1, 2, 3]}).encode()
        req = parse(
            b"POST /events HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
            % (len(body), body)
        )
        assert req.json() == {"events": [1, 2, 3]}

    def test_eof_before_any_bytes_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_chunked_transfer_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse(
                b"POST /events HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
            )
        assert err.value.status == 400

    def test_oversized_body_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"POST /events HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        assert err.value.status == 413

    def test_bad_json_body_maps_to_400(self):
        req = parse(b"POST /events HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop")
        with pytest.raises(ProtocolError) as err:
            req.json()
        assert err.value.status == 400

    def test_keep_alive_default_and_close(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").wants_keep_alive()
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.wants_keep_alive()


class TestResponses:
    def test_json_response_has_length_and_type(self):
        raw = render_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Type: application/json" in head
        assert json.loads(body) == {"ok": True}
        assert b"Content-Length: %d" % len(body) in head

    def test_error_response_carries_status_and_message(self):
        raw = error_response(404, "no such subscription")
        assert raw.startswith(b"HTTP/1.1 404")
        assert b"no such subscription" in raw

    def test_extra_headers_rendered(self):
        raw = render_response(429, {"error": "full"}, headers={"Retry-After": "5"})
        assert b"Retry-After: 5\r\n" in raw


class TestServerSentEvents:
    def test_event_framing(self):
        frame = sse_event({"a": 1}, event="result")
        assert frame == b'event: result\ndata: {"a": 1}\n\n'

    def test_comment_framing(self):
        assert sse_comment("hello") == b": hello\n\n"


class TestWebSocket:
    def test_accept_key_rfc6455_example(self):
        # The worked example from RFC 6455 section 1.3.
        assert (
            websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_upgrade_detection(self):
        req = parse(
            b"GET /subscriptions/q/ws HTTP/1.1\r\n"
            b"Upgrade: websocket\r\nConnection: keep-alive, Upgrade\r\n"
            b"Sec-WebSocket-Key: abc\r\n\r\n"
        )
        assert is_websocket_upgrade(req)
        assert not is_websocket_upgrade(parse(b"GET / HTTP/1.1\r\n\r\n"))

    def test_handshake_response_contains_accept(self):
        req = parse(
            b"GET /subscriptions/q/ws HTTP/1.1\r\n"
            b"Upgrade: websocket\r\nConnection: Upgrade\r\n"
            b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n"
        )
        raw = websocket_handshake_response(req)
        assert raw.startswith(b"HTTP/1.1 101")
        assert b"s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in raw

    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536, 70000])
    def test_frame_roundtrip_all_length_encodings(self, size):
        # Server frames are unmasked; the reader accepts them as a client
        # would, which exercises the 7/16/64-bit length paths.
        payload = bytes(i % 251 for i in range(size))
        frame = encode_websocket_frame(payload, opcode=WS_TEXT)

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await read_websocket_frame(reader)

        opcode, decoded = asyncio.run(go())
        assert opcode == WS_TEXT
        assert decoded == payload

    def test_masked_client_frame_is_unmasked(self):
        # Hand-build a masked client frame: "Hi" with mask 0x11223344.
        mask = bytes([0x11, 0x22, 0x33, 0x44])
        payload = b"Hi"
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        frame = bytes([0x80 | WS_TEXT, 0x80 | len(payload)]) + mask + masked

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await read_websocket_frame(reader)

        opcode, decoded = asyncio.run(go())
        assert (opcode, decoded) == (WS_TEXT, b"Hi")

    def test_eof_mid_frame_returns_none(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(bytes([0x80 | WS_TEXT, 126, 0x01]))  # truncated
            reader.feed_eof()
            return await read_websocket_frame(reader)

        assert asyncio.run(go()) is None

    def test_control_opcodes_exported(self):
        assert (WS_CLOSE, WS_PING) == (0x8, 0x9)
