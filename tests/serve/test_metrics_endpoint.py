"""The serving layer's metrics exposition: /metrics and /metrics.json."""

import http.client
import json
import time

import pytest

from repro.serve import ServeConfig, run_in_thread


@pytest.fixture()
def server():
    with run_in_thread(ServeConfig(port=0, linger_ms=10)) as handle:
        yield handle


def fetch(handle, path):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        conn.close()


def post(handle, path, body):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
    try:
        conn.request(
            "POST", path, body=json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def load(handle, events=200):
    assert post(handle, "/subscriptions", {"name": "w", "n": 50, "k": 3, "s": 10})[0] == 201
    status, _ = post(
        handle,
        "/events",
        {"events": [{"id": f"e{i}", "score": float(i % 13)} for i in range(events)]},
    )
    assert status in (200, 202)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        status, body, _ = fetch(handle, "/metrics")
        if b"repro_slides_total" in body:
            return
        time.sleep(0.02)
    raise AssertionError("engine metrics never appeared on /metrics")


class TestPrometheusEndpoint:
    def test_content_type_is_text_format_004(self, server):
        status, _, headers = fetch(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"

    def test_serving_and_engine_instruments_exposed(self, server):
        load(server)
        _, body, _ = fetch(server, "/metrics")
        text = body.decode()
        for name in (
            "repro_ingested_total",      # serving: ingest batcher
            "repro_dedupe_admitted_total",
            "repro_sessions",
            "repro_events_ingested_total",  # engine, behind the facade
            "repro_slides_total",
            "repro_deliver_latency_seconds_bucket",
        ):
            assert name in text, f"{name} missing from /metrics"
        assert "# TYPE repro_ingested_total counter" in text

    def test_counters_are_monotone_across_scrapes(self, server):
        load(server, events=100)

        def value(text, name):
            for line in text.splitlines():
                if line.startswith(name + " ") or line.startswith(name + "{"):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        first = fetch(server, "/metrics")[1].decode()
        post(
            server,
            "/events",
            {"events": [{"id": f"x{i}", "score": 1.0} for i in range(100)]},
        )
        time.sleep(0.3)
        second = fetch(server, "/metrics")[1].decode()
        for name in ("repro_ingested_total", "repro_dedupe_admitted_total"):
            assert value(second, name) >= value(first, name)
        assert value(second, "repro_ingested_total") == 200.0


class TestJsonEndpoint:
    def test_snapshot_document_shape(self, server):
        load(server)
        status, body, headers = fetch(server, "/metrics.json")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        document = json.loads(body)
        assert set(document) == {"ts", "metrics"}
        assert isinstance(document["ts"], float)
        names = {record["name"] for record in document["metrics"]}
        assert "repro_ingested_total" in names
        histogram = next(
            record
            for record in document["metrics"]
            if record["name"] == "repro_deliver_latency_seconds"
        )
        assert {"buckets", "boundaries", "sum", "count"} <= set(histogram)
