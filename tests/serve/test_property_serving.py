"""End-to-end exactness property of the serving layer.

The acceptance property of the whole subsystem: answers delivered over
the network are **byte-identical** to an embedded :class:`StreamEngine`
fed the same logical event sequence — even when the producer redelivers
events (at-least-once), because the dedupe window collapses redeliveries
before the engine sees them and ``t`` is assigned in admission order.

One server handles every hypothesis example (restarting per example
would dominate the runtime); isolation comes from a fresh subscription
name and a fresh id namespace per example, plus a full drain of the
ingest pipeline between examples.
"""

import itertools
import json
import time
import urllib.request

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro import StreamEngine, StreamObject, TopKQuery
from repro.serve import ServeConfig, run_in_thread

# Window shapes kept tiny so every example completes several slides.
SHAPES = [(10, 3, 5), (8, 2, 4), (12, 4, 6)]

scores_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)

# Redelivery pattern: for each event, how many extra times the producer
# sends it (0 = exactly once).  Drawn independently of the scores and
# trimmed/padded to fit, so shrinking stays simple.
redelivery_strategy = st.lists(st.integers(min_value=0, max_value=2), max_size=40)


@pytest.fixture(scope="module")
def server():
    with run_in_thread(ServeConfig(port=0, linger_ms=5)) as handle:
        yield handle


_example_ids = itertools.count()


def _request(handle, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        handle.base_url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as response:
        raw = response.read()
        return response.status, json.loads(raw) if raw else None


def reference_answers(scores, shape):
    """The embedded-engine ground truth for the deduped event sequence."""
    n, k, s = shape
    engine = StreamEngine(keep_results=True)
    engine.subscribe("ref", TopKQuery(n=n, k=k, s=s))
    engine.push_many(
        [StreamObject(score=score, t=t) for t, score in enumerate(scores)],
        chunk_size=max(1, len(scores)),
    )
    produced = [
        {
            "slide_index": r.slide_index,
            "window_end": r.window_end,
            "objects": [{"score": o.score, "t": o.t} for o in r.objects],
        }
        for r in engine.subscription("ref").drain()
    ]
    engine.close()
    return produced


@settings(max_examples=25, deadline=None)
@given(
    scores=scores_strategy,
    redeliveries=redelivery_strategy,
    shape_index=st.integers(min_value=0, max_value=len(SHAPES) - 1),
)
def test_served_answers_byte_identical_to_embedded_engine(
    server, scores, redeliveries, shape_index
):
    example = next(_example_ids)
    name = f"prop-{example}"
    n, k, s = SHAPES[shape_index]
    status, _ = _request(
        server, "POST", "/subscriptions", {"name": name, "n": n, "k": k, "s": s}
    )
    assert status == 201
    try:
        # Build the at-least-once stream: every event carries an id, and
        # some events are immediately redelivered (the worst case for a
        # window algorithm: a duplicate inside the same slide).
        events = []
        for index, score in enumerate(scores):
            event = {"id": f"ex{example}-e{index}", "score": score}
            extra = redeliveries[index] if index < len(redeliveries) else 0
            events.extend([event] * (1 + extra))

        status, body = _request(server, "POST", "/events", {"events": events})
        assert status == 200
        assert body["accepted"] == len(scores)
        assert body["duplicates"] == len(events) - len(scores)

        expected = reference_answers(scores, SHAPES[shape_index])

        deadline = time.monotonic() + 10
        served = []
        while time.monotonic() < deadline:
            _, body = _request(server, "GET", f"/subscriptions/{name}/results")
            served = body["results"]
            if len(served) >= len(expected):
                break
            time.sleep(0.01)

        # The server assigns t in admission order starting from its own
        # counter; shift the reference to the server's origin before
        # comparing identities.
        assert len(served) == len(expected)
        if served:
            origin = served[0]["objects"][0]["t"] - expected[0]["objects"][0]["t"]
        for got, want in zip(served, expected):
            assert got["slide_index"] == want["slide_index"]
            assert got["window_end"] - want["window_end"] == origin
            assert [o["score"] for o in got["objects"]] == [
                o["score"] for o in want["objects"]
            ]
            assert [o["t"] - origin for o in got["objects"]] == [
                o["t"] for o in want["objects"]
            ]
    finally:
        status, _ = _request(server, "DELETE", f"/subscriptions/{name}")
        assert status == 204
