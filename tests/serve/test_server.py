"""End-to-end tests of the serving layer over real sockets.

One server per test class (module-scoped fixtures would leak state
between tests that mutate subscriptions), driven with
:mod:`http.client` — the stdlib client exercises keep-alive, chunk-free
bodies, and status codes exactly the way external producers will.
"""

import base64
import hashlib
import json
import os
import socket
import struct
import time

import pytest

from repro.serve import (
    DISCONNECT,
    ServeConfig,
    run_in_thread,
)

@pytest.fixture()
def server():
    with run_in_thread(ServeConfig(port=0, linger_ms=10)) as handle:
        yield handle


def request(handle, method, path, body=None):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(
            method, path, body=payload, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        raw = response.read()
        decoded = json.loads(raw) if raw else None
        return response.status, decoded, dict(response.getheaders())
    finally:
        conn.close()


def subscribe(handle, name, *, n=10, k=3, s=5, **extra):
    body = {"name": name, "n": n, "k": k, "s": s, **extra}
    return request(handle, "POST", "/subscriptions", body)


def ingest(handle, events):
    return request(handle, "POST", "/events", {"events": events})


def wait_for_results(handle, name, minimum=1, timeout=5.0):
    """Poll (without draining) until the subscription has answers."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body, _ = request(handle, "GET", f"/subscriptions/{name}/results")
        assert status == 200
        if len(body["results"]) >= minimum:
            return body["results"]
        time.sleep(0.02)
    raise AssertionError(f"no results for {name!r} within {timeout}s")


class TestSubscriptionLifecycle:
    def test_create_list_inspect_unsubscribe(self, server):
        status, body, _ = subscribe(server, "alpha", n=20, k=5, s=10)
        assert status == 201
        assert body["query"] == {"n": 20, "k": 5, "s": 10, "time_based": False}
        assert body["algorithm"] == "SAP"

        status, body, _ = request(server, "GET", "/subscriptions")
        assert status == 200
        assert [s["name"] for s in body["subscriptions"]] == ["alpha"]

        status, body, _ = request(server, "GET", "/subscriptions/alpha")
        assert status == 200
        assert body["name"] == "alpha"
        assert "engine" in body  # engine-side stats merged in

        status, _, _ = request(server, "DELETE", "/subscriptions/alpha")
        assert status == 204
        status, _, _ = request(server, "GET", "/subscriptions/alpha")
        assert status == 404

    def test_duplicate_name_conflicts(self, server):
        assert subscribe(server, "dup")[0] == 201
        status, body, _ = subscribe(server, "dup")
        assert status == 409
        assert "exists" in body["error"]

    def test_bad_bodies_are_400(self, server):
        for body in [
            {"name": "x"},  # missing n/k
            {"name": "x", "n": 10, "k": 30, "s": 5},  # k exceeds the window
            {"name": "x", "n": 10, "k": 3, "s": 5, "algorithm": "nope"},
            {"name": "", "n": 10, "k": 3, "s": 5},
        ]:
            status, _, _ = request(server, "POST", "/subscriptions", body)
            assert status == 400, body

    def test_unknown_routes_and_methods(self, server):
        assert request(server, "GET", "/nope")[0] == 404
        subscribe(server, "q")
        assert request(server, "PUT", "/subscriptions/q")[0] == 405

    def test_health_and_stats(self, server):
        status, body, _ = request(server, "GET", "/health")
        assert (status, body["status"]) == (200, "ok")
        status, body, _ = request(server, "GET", "/stats")
        assert status == 200
        assert body["engine"] == "local"
        assert {"ingest", "admission", "sessions"} <= set(body)


class TestAdmissionControl:
    def test_429_with_retry_after_past_the_cap(self):
        config = ServeConfig(port=0, max_subscriptions=2, retry_after=9)
        with run_in_thread(config) as handle:
            assert subscribe(handle, "a")[0] == 201
            assert subscribe(handle, "b")[0] == 201
            status, body, headers = subscribe(handle, "c")
            assert status == 429
            assert headers["Retry-After"] == "9"
            assert "limit" in body["error"]
            # Unsubscribing frees the slot for a newcomer.
            assert request(handle, "DELETE", "/subscriptions/a")[0] == 204
            assert subscribe(handle, "c")[0] == 201


class TestIngestion:
    def test_duplicates_counted_and_ignored(self, server):
        subscribe(server, "q")
        events = [{"id": f"e{i}", "score": float(i), "payload": i} for i in range(15)]
        status, body, _ = ingest(server, events + events[:4])
        assert status == 200
        assert body["accepted"] == 15
        assert body["duplicates"] == 4

        results = wait_for_results(server, "q", minimum=2)
        # 15 admitted events, n=10, s=5: windows close at t=9 and t=14.
        # The four redelivered events produced nothing — with them, the
        # second window would have closed early with different members.
        assert [r["slide_index"] for r in results] == [0, 1]
        assert results[1]["objects"][0]["score"] == 14.0
        status, body, _ = request(server, "GET", "/stats")
        assert body["ingest"]["dedupe"]["duplicates"] == 4

    def test_single_event_and_array_bodies(self, server):
        subscribe(server, "q")
        status, body, _ = request(server, "POST", "/events", {"score": 1.5})
        assert (status, body["accepted"]) == (200, 1)
        status, body, _ = request(server, "POST", "/events", [{"score": 2.0}])
        assert (status, body["accepted"]) == (200, 1)

    def test_invalid_event_rejects_the_request(self, server):
        subscribe(server, "q")
        status, body, _ = ingest(server, [{"score": "not-a-number"}])
        assert status == 400

    def test_events_without_subscribers_are_dropped(self, server):
        status, body, _ = ingest(server, [{"score": 1.0}, {"score": 2.0}])
        assert status == 200
        _, stats, _ = request(server, "GET", "/stats")
        assert stats["ingest"]["dropped_no_subscribers"] == 2

    def test_linger_flushes_partial_slides(self, server):
        subscribe(server, "q", n=10, k=2, s=5)
        # 12 events: 10 flush aligned, the 2-event tail rides the linger
        # timer; the next 3 never reach alignment (5) inside one call, so
        # only the linger can complete the second window.
        ingest(server, [{"score": float(i)} for i in range(12)])
        results = wait_for_results(server, "q", minimum=1)
        assert results[0]["slide_index"] == 0
        ingest(server, [{"score": float(i)} for i in range(12, 15)])
        results = wait_for_results(server, "q", minimum=2)
        assert results[1]["slide_index"] == 1
        assert results[1]["window_end"] == 14

    def test_drain_empties_history(self, server):
        subscribe(server, "q")
        ingest(server, [{"score": float(i)} for i in range(15)])
        wait_for_results(server, "q", minimum=2)
        _, body, _ = request(server, "GET", "/subscriptions/q/results?drain=true")
        assert len(body["results"]) >= 2
        _, body, _ = request(server, "GET", "/subscriptions/q/results")
        assert body["results"] == []


class TestStreamingDelivery:
    def read_until(self, sock, marker, timeout=5.0):
        sock.settimeout(timeout)
        buf = b""
        while marker not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
        return buf

    def test_sse_stream_delivers_results(self, server):
        subscribe(server, "q")
        sse = socket.create_connection(("127.0.0.1", server.port))
        try:
            sse.sendall(
                b"GET /subscriptions/q/stream HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            head = self.read_until(sse, b": subscribed q")
            assert b"text/event-stream" in head
            ingest(server, [{"score": float(i)} for i in range(10)])
            frame = self.read_until(sse, b"event: result")
            data = [
                line[len(b"data: "):]
                for line in frame.splitlines()
                if line.startswith(b"data: ")
            ]
            record = json.loads(b"\n".join(data))
            assert record["subscription"] == "q"
            assert len(record["objects"]) == 3  # k=3
        finally:
            sse.close()

    def test_websocket_stream_delivers_results(self, server):
        subscribe(server, "q")
        ws = socket.create_connection(("127.0.0.1", server.port))
        try:
            key = base64.b64encode(os.urandom(16)).decode()
            ws.sendall(
                (
                    "GET /subscriptions/q/ws HTTP/1.1\r\nHost: t\r\n"
                    "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {key}\r\n"
                    "Sec-WebSocket-Version: 13\r\n\r\n"
                ).encode()
            )
            head = self.read_until(ws, b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 101")
            accept = base64.b64encode(
                hashlib.sha1(
                    (key + "258EAFA5-E914-47DA-95CA-C5AB0DC85B11").encode()
                ).digest()
            )
            assert accept in head

            ingest(server, [{"score": float(i)} for i in range(10)])
            ws.settimeout(5.0)
            frame = ws.recv(65536)
            opcode, length = frame[0] & 0x0F, frame[1] & 0x7F
            offset = 2
            if length == 126:
                length = struct.unpack(">H", frame[2:4])[0]
                offset = 4
            record = json.loads(frame[offset : offset + length])
            assert opcode == 0x1
            assert record["subscription"] == "q"
        finally:
            ws.close()

    def test_disconnecting_sse_client_is_detached(self, server):
        subscribe(server, "q")
        sse = socket.create_connection(("127.0.0.1", server.port))
        sse.sendall(b"GET /subscriptions/q/stream HTTP/1.1\r\nHost: t\r\n\r\n")
        self.read_until(sse, b": subscribed q")
        _, body, _ = request(server, "GET", "/subscriptions/q")
        assert body["clients"] == 1
        sse.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            _, body, _ = request(server, "GET", "/subscriptions/q")
            if body["clients"] == 0:
                break
            time.sleep(0.02)
        assert body["clients"] == 0


class TestSlowClients:
    """Deterministic backpressure tests against server internals: a
    channel is attached directly (no TCP buffering races), then the
    delivery path is driven through real ingestion."""

    def attach_channel(self, handle, name, maxlen, policy):
        import asyncio

        from repro.serve.backpressure import ClientChannel

        session = handle.server.registry.get(name)

        async def attach():
            channel = ClientChannel(maxlen=maxlen, policy=policy)
            session.attach(channel)
            return channel

        future = asyncio.run_coroutine_threadsafe(attach(), handle.loop)
        return future.result(timeout=5)

    def test_drop_oldest_accounting_reaches_session_stats(self, server):
        subscribe(server, "q", n=10, k=2, s=5)
        channel = self.attach_channel(server, "q", maxlen=2, policy="drop-oldest")
        # 30 events, n=10, s=5: windows close at t=9..29 -> 5 answers
        # offered to a 2-slot queue nobody reads -> 3 drops.
        ingest(server, [{"score": float(i)} for i in range(30)])
        deadline = time.monotonic() + 5
        body = {}
        while time.monotonic() < deadline:
            _, body, _ = request(server, "GET", "/subscriptions/q")
            if body["results_dropped"] >= 3:
                break
            time.sleep(0.02)
        assert body["results_dropped"] == 3
        assert body["results_pushed"] == 5
        assert channel.stats()["queue"] == 2

    def test_disconnect_policy_closes_the_channel(self, server):
        subscribe(server, "q", n=10, k=2, s=5)
        channel = self.attach_channel(server, "q", maxlen=1, policy=DISCONNECT)
        ingest(server, [{"score": float(i)} for i in range(30)])
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if channel.closed:
                break
            time.sleep(0.02)
        assert channel.closed
        assert channel.close_reason == "slow-client"
        _, body, _ = request(server, "GET", "/subscriptions/q")
        assert body["clients_disconnected"] == 1
        assert body["clients"] == 0  # the dead channel was discarded


class TestGracefulShutdown:
    def test_shutdown_pushes_the_buffered_tail(self):
        # Events still below one slide alignment when the server stops are
        # pushed before the engine closes instead of being dropped.
        config = ServeConfig(port=0, linger_ms=60_000)  # linger never fires
        handle = run_in_thread(config)
        try:
            subscribe(handle, "q", n=10, k=2, s=5)
            ingest(handle, [{"score": float(i)} for i in range(12)])
            wait_for_results(handle, "q", minimum=1)
            assert handle.server.batcher.stats()["pending"] == 2
        finally:
            handle.stop()
        assert handle.server.batcher.stats()["pending"] == 0
        session = handle.server.registry.get("q")
        assert list(session.history)[0]["slide_index"] == 0

    def test_shutdown_delivers_final_time_based_report(self):
        # Time-based windows emit an end-of-stream report on close; the
        # shutdown drain must deliver it to the subscription history.
        config = ServeConfig(port=0, linger_ms=5)
        handle = run_in_thread(config)
        try:
            subscribe(handle, "t", n=10, k=2, s=5, time_based=True)
            ingest(handle, [{"score": float(i)} for i in range(12)])
            wait_for_results(handle, "t", minimum=1)
        finally:
            handle.stop()
        records = list(handle.server.registry.get("t").history)
        # Slide 0 closed in-stream at t=10; slide 1 is the final report.
        assert [r["slide_index"] for r in records] == [0, 1]
        assert records[1]["window_end"] == 15

    def test_stop_is_idempotent(self):
        handle = run_in_thread(ServeConfig(port=0))
        handle.stop()
        handle.stop()  # second stop is a no-op


class TestSharded:
    def test_serves_from_the_sharded_plane(self):
        config = ServeConfig(port=0, engine="sharded", shards=2, linger_ms=10)
        with run_in_thread(config) as handle:
            subscribe(handle, "a", n=10, k=3, s=5)
            subscribe(handle, "b", n=20, k=4, s=10)
            events = [{"id": f"e{i}", "score": float(i)} for i in range(40)]
            _, body, _ = ingest(handle, events + events[:7])
            assert body["duplicates"] == 7
            results_a = wait_for_results(handle, "a", minimum=7)
            results_b = wait_for_results(handle, "b", minimum=3)
            assert [r["slide_index"] for r in results_a] == list(range(7))
            assert [r["slide_index"] for r in results_b] == list(range(3))
            # Top scores are the stream maxima within each window.
            assert results_a[-1]["objects"][0]["score"] == 39.0
