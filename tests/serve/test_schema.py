"""The declared wire surface: route matching, aliasing, and drift guards.

Two drift guards matter more than the unit checks: every route's
``handler`` key must resolve to a ``_h_<key>`` method on the server (so
the table cannot name a handler that does not exist), and the README's
endpoint table must equal :func:`markdown_table` exactly (so the docs
cannot drift from the dispatcher — both are rendered from ROUTES).
"""

import os

import pytest

from repro.serve import schema
from repro.serve.app import TopKServer


class TestMatch:
    def test_v1_path_is_canonical(self):
        matched = schema.match("GET", ("v1", "health"))
        assert matched.route.handler == "health"
        assert not matched.deprecated
        assert matched.deprecation_headers() is None

    def test_unversioned_path_is_deprecated_alias(self):
        matched = schema.match("GET", ("health",))
        assert matched.route.handler == "health"
        assert matched.deprecated
        headers = matched.deprecation_headers()
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == '</v1/health>; rel="successor-version"'

    def test_path_params_are_extracted(self):
        matched = schema.match("GET", ("v1", "subscriptions", "alerts", "results"))
        assert matched.route.handler == "get_results"
        assert matched.params == {"name": "alerts"}

    def test_unknown_path_raises_404(self):
        with pytest.raises(schema.RouteNotFound):
            schema.match("GET", ("v1", "nope"))

    def test_wrong_method_raises_405_with_allowed(self):
        with pytest.raises(schema.MethodNotAllowed) as excinfo:
            schema.match("PUT", ("v1", "subscriptions"))
        assert set(excinfo.value.allowed) == {"GET", "POST"}

    def test_both_forms_resolve_every_route(self):
        for route in schema.ROUTES:
            segments = tuple(
                "x" if part.startswith("{") else part for part in route.pattern
            )
            canonical = schema.match(route.method, ("v1",) + segments)
            legacy = schema.match(route.method, segments)
            assert canonical.route is route and not canonical.deprecated
            assert legacy.route is route and legacy.deprecated


class TestDriftGuards:
    def test_every_handler_key_has_a_server_method(self):
        for route in schema.ROUTES:
            assert hasattr(TopKServer, "_h_" + route.handler), (
                f"route {route.method} {route.path} names handler "
                f"{route.handler!r} but TopKServer has no _h_{route.handler}"
            )

    def test_streaming_flags_match_the_takeover_handlers(self):
        streaming = {r.handler for r in schema.ROUTES if r.streaming}
        assert streaming == {"stream_sse", "stream_ws"}

    def test_readme_embeds_exactly_the_generated_table(self):
        readme = os.path.join(os.path.dirname(__file__), "..", "..", "README.md")
        with open(readme, "r", encoding="utf-8") as handle:
            content = handle.read()
        assert schema.markdown_table() in content, (
            "README.md endpoint table drifted from repro.serve.schema.ROUTES; "
            "re-embed schema.markdown_table()"
        )

    def test_subscription_body_fields_match_the_validator(self):
        # the fields documented here must be exactly what from_dict accepts
        from repro.core.exceptions import InvalidQueryError
        from repro.engine.spec import QuerySpec

        body = {"n": 10, "k": 2, "s": 5}
        for field in schema.SUBSCRIPTION_BODY_FIELDS:
            probe = dict(body)
            probe.setdefault(field, None)
            try:
                QuerySpec.from_dict(probe)
            except InvalidQueryError as exc:
                assert "unknown subscription parameter" not in str(exc), (
                    f"documented field {field!r} rejected by the validator"
                )
            except Exception:
                pass  # value errors are fine; unknown-key errors are not
        with pytest.raises(InvalidQueryError, match="unknown subscription"):
            QuerySpec.from_dict({**body, "undocumented": 1})
