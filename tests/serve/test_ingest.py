"""Tests for the ingestion pipeline: dedupe window, event parsing, and
slide-aligned batching (:mod:`repro.serve.ingest`)."""

import pytest

from repro.serve.ingest import (
    DEFAULT_DEDUPE_WINDOW,
    MAX_ALIGNED_BATCH,
    DedupeWindow,
    IngestBatcher,
    parse_event,
)


class TestDedupeWindow:
    def test_duplicates_are_ignored(self):
        window = DedupeWindow(capacity=8)
        assert window.admit("a")
        assert window.admit("b")
        assert not window.admit("a")  # exact redelivery
        assert not window.admit("a")  # and again
        stats = window.stats()
        assert stats["admitted"] == 2
        assert stats["duplicates"] == 2
        assert stats["tracked_ids"] == 2

    def test_eviction_past_capacity_readmits(self):
        window = DedupeWindow(capacity=3)
        for event_id in ("a", "b", "c"):
            assert window.admit(event_id)
        assert window.admit("d")  # evicts "a", the oldest
        assert window.stats()["evictions"] == 1
        # "a" fell out of the window: a redelivery is admitted again.
        assert window.admit("a")
        # ...which in turn evicted "b".
        assert window.admit("b")
        assert window.stats()["evictions"] == 3
        assert window.stats()["tracked_ids"] == 3

    def test_duplicate_refreshes_recency(self):
        window = DedupeWindow(capacity=3)
        for event_id in ("a", "b", "c"):
            window.admit(event_id)
        assert not window.admit("a")  # touch "a": now "b" is the oldest
        window.admit("d")
        assert not window.admit("a")  # still tracked
        assert window.admit("b")  # "b" was the eviction victim

    def test_counts_accumulate_across_evictions(self):
        window = DedupeWindow(capacity=2)
        for i in range(10):
            window.admit(f"id-{i}")
        stats = window.stats()
        assert stats["admitted"] == 10
        assert stats["evictions"] == 8
        assert stats["tracked_ids"] == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DedupeWindow(capacity=0)
        assert DedupeWindow().stats()["capacity"] == DEFAULT_DEDUPE_WINDOW


class TestParseEvent:
    def test_minimal_event(self):
        event_id, score, payload = parse_event({"score": 3})
        assert event_id is None  # no id: bypasses dedupe
        assert score == 3.0 and isinstance(score, float)
        assert payload is None

    def test_full_event(self):
        event_id, score, payload = parse_event(
            {"id": "e-1", "score": 2.5, "payload": {"sym": "ACME"}}
        )
        assert (event_id, score, payload) == ("e-1", 2.5, {"sym": "ACME"})

    @pytest.mark.parametrize(
        "raw",
        [
            "not a dict",
            {},  # missing score
            {"score": "high"},  # non-numeric
            {"score": True},  # bool is not a score
            {"score": 1.0, "id": 7},  # non-string id
        ],
    )
    def test_invalid_events_rejected(self, raw):
        with pytest.raises(ValueError):
            parse_event(raw)


class TestIngestBatcher:
    def test_server_assigns_strictly_increasing_t(self):
        batcher = IngestBatcher()
        for score in (5.0, 1.0, 3.0):
            batcher.append(score, None)
        batch = batcher.take_all()
        assert [o.t for o in batch] == [0, 1, 2]
        assert [o.score for o in batch] == [5.0, 1.0, 3.0]
        # t keeps counting across batches — redelivered events were already
        # deduped upstream, so arrival order is the identity.
        batcher.append(9.0, None)
        assert batcher.take_all()[0].t == 3

    def test_alignment_is_lcm_of_slides(self):
        batcher = IngestBatcher()
        batcher.set_alignment([4, 6])
        assert batcher.alignment == 12
        batcher.set_alignment([5])
        assert batcher.alignment == 5
        batcher.set_alignment([])  # no count-based subscriptions
        assert batcher.alignment == 1

    def test_alignment_clamped_when_lcm_explodes(self):
        batcher = IngestBatcher()
        batcher.set_alignment([7919, 7927])  # coprime: lcm ~62.8M
        assert batcher.alignment == 1
        assert batcher.alignment <= MAX_ALIGNED_BATCH

    def test_take_aligned_keeps_the_tail(self):
        batcher = IngestBatcher()
        batcher.set_alignment([5])
        for i in range(13):
            batcher.append(float(i), None)
        aligned = batcher.take_aligned()
        assert len(aligned) == 10  # largest multiple of 5
        assert batcher.stats()["pending"] == 3
        tail = batcher.take_all()
        assert [o.t for o in tail] == [10, 11, 12]

    def test_take_aligned_below_one_slide_is_empty(self):
        batcher = IngestBatcher()
        batcher.set_alignment([10])
        batcher.append(1.0, None)
        assert batcher.take_aligned() == []
        assert batcher.stats()["pending"] == 1

    def test_stats_track_totals(self):
        batcher = IngestBatcher()
        batcher.set_alignment([2])
        for i in range(5):
            batcher.append(float(i), None)
        batcher.take_aligned()
        stats = batcher.stats()
        assert stats == {"ingested": 5, "pending": 1, "alignment": 2}
