"""Unit tests for the incremental slide batcher."""

import random

import pytest

from repro.core.object import StreamObject
from repro.core.query import TopKQuery
from repro.core.window import SlideBatcher, slides_for_query

from ..conftest import make_objects, random_scores


def _batch_all(objects, query):
    batcher = SlideBatcher(query)
    events = []
    for obj in objects:
        events.extend(batcher.push(obj))
    events.extend(batcher.flush())
    return events


def _events_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.index == b.index
        assert [o.t for o in a.arrivals] == [o.t for o in b.arrivals]
        assert [o.t for o in a.expirations] == [o.t for o in b.expirations]


class TestCountBasedBatcher:
    @pytest.mark.parametrize("n,s", [(5, 1), (6, 2), (10, 10), (7, 3)])
    def test_matches_generator(self, n, s):
        query = TopKQuery(n=n, k=1, s=s)
        objects = make_objects(random_scores(40, seed=n * 10 + s))
        _events_equal(_batch_all(objects, query), list(slides_for_query(objects, query)))

    def test_no_events_before_window_fills(self):
        query = TopKQuery(n=10, k=2, s=2)
        batcher = SlideBatcher(query)
        for obj in make_objects(range(9)):
            assert batcher.push(obj) == []

    def test_flush_is_noop_for_count_based(self):
        query = TopKQuery(n=5, k=1, s=1)
        batcher = SlideBatcher(query)
        for obj in make_objects(range(5)):
            batcher.push(obj)
        assert batcher.flush() == []


class TestTimeBasedBatcher:
    def _timed(self, count, seed=1):
        rng = random.Random(seed)
        timestamp = 0
        objects = []
        for t in range(count):
            if rng.random() < 0.6:
                timestamp += rng.randint(1, 3)
            objects.append(StreamObject(score=rng.uniform(0, 10), t=t, timestamp=timestamp))
        return objects

    def test_matches_generator_including_final_flush(self):
        query = TopKQuery(n=20, k=2, s=5, time_based=True)
        objects = self._timed(200)
        _events_equal(_batch_all(objects, query), list(slides_for_query(objects, query)))

    def test_flush_emits_final_report(self):
        query = TopKQuery(n=10, k=1, s=5, time_based=True)
        objects = self._timed(50)
        batcher = SlideBatcher(query)
        for obj in objects:
            batcher.push(obj)
        assert len(batcher.flush()) == 1
