"""Unit tests for partitions, partition specs, and unit summaries."""

import pytest

from repro.core.object import top_k
from repro.core.partition import Partition, PartitionSpec, UnitSummary, build_partition

from ..conftest import make_objects, random_scores


class TestPartition:
    def test_topk_computed_at_construction(self):
        objects = make_objects([5, 9, 1, 7])
        partition = build_partition(0, objects, k=2)
        assert [o.score for o in partition.topk] == [9.0, 7.0]
        assert partition.kth_key == (7.0, 3)

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            Partition(partition_id=0, objects=[], k=1)

    def test_topk_smaller_than_k_for_tiny_partition(self):
        partition = build_partition(0, make_objects([3, 1]), k=5)
        assert len(partition.topk) == 2

    def test_expire_one_advances_prefix(self):
        objects = make_objects([5, 9, 1])
        partition = build_partition(0, objects, k=1)
        partition.expire_one(objects[0])
        assert partition.expired_prefix == 1
        assert partition.live_count == 2
        assert not partition.fully_expired
        assert partition.oldest_live_t == 1

    def test_expire_out_of_order_rejected(self):
        objects = make_objects([5, 9, 1])
        partition = build_partition(0, objects, k=1)
        with pytest.raises(ValueError):
            partition.expire_one(objects[1])

    def test_fully_expired(self):
        objects = make_objects([5, 9])
        partition = build_partition(0, objects, k=1)
        for obj in objects:
            partition.expire_one(obj)
        assert partition.fully_expired
        assert partition.oldest_live_t is None

    def test_non_candidate_objects(self):
        objects = make_objects([5, 9, 1, 7])
        partition = build_partition(0, objects, k=2)
        others = partition.non_candidate_objects()
        assert sorted(o.score for o in others) == [1.0, 5.0]


class TestBuildPartitionWithUnits:
    def _units_for(self, objects, unit_size, k):
        units = []
        for start in range(0, len(objects), unit_size):
            chunk = objects[start : start + unit_size]
            units.append(
                UnitSummary(
                    start=start,
                    end=start + len(chunk),
                    is_k_unit=True,
                    summary=top_k(chunk, k),
                )
            )
        return units

    def test_topk_derived_from_unit_summaries(self):
        objects = make_objects(random_scores(40, seed=1))
        units = self._units_for(objects, unit_size=10, k=3)
        partition = build_partition(0, objects, k=3, units=units)
        assert partition.topk == top_k(objects, 3)

    def test_falls_back_to_scan_when_summaries_too_small(self):
        objects = make_objects(random_scores(20, seed=2))
        # Non-k-unit style summaries (top-1 only) cannot supply k=5 objects.
        units = [
            UnitSummary(start=0, end=10, is_k_unit=False, summary=top_k(objects[:10], 1)),
            UnitSummary(start=10, end=20, is_k_unit=False, summary=top_k(objects[10:], 1)),
        ]
        partition = build_partition(0, objects, k=5, units=units)
        assert partition.topk == top_k(objects, 5)


class TestUnitSummary:
    def test_size_and_keys(self):
        objects = make_objects([4, 8, 6])
        unit = UnitSummary(start=0, end=3, is_k_unit=True, summary=top_k(objects, 2))
        assert unit.size == 3
        assert unit.max_key == (8.0, 1)
        assert unit.min_summary_key == (6.0, 2)


class TestPartitionSpec:
    def test_size_property(self):
        spec = PartitionSpec(objects=make_objects([1, 2, 3]))
        assert spec.size == 3
        assert spec.units is None
