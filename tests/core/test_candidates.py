"""Unit tests for the candidate set and its merge-and-refine maintenance."""

from repro.core.candidates import CandidateSet
from repro.core.object import StreamObject



def _obj(score, t):
    return StreamObject(score=float(score), t=t)


class TestBasics:
    def test_add_and_len(self):
        candidates = CandidateSet()
        candidates.add(_obj(5, 1), partition_id=0)
        candidates.add(_obj(7, 2), partition_id=1)
        assert len(candidates) == 2
        assert (5.0, 1) in candidates
        assert candidates.get((7.0, 2)).partition_id == 1

    def test_remove_returns_entry(self):
        candidates = CandidateSet()
        candidates.add(_obj(5, 1), partition_id=3)
        entry = candidates.remove((5.0, 1))
        assert entry is not None and entry.partition_id == 3
        assert candidates.remove((5.0, 1)) is None
        assert len(candidates) == 0

    def test_iter_descending_orders_by_rank(self):
        candidates = CandidateSet()
        for score, t in [(5, 1), (9, 2), (7, 3)]:
            candidates.add(_obj(score, t), partition_id=0)
        scores = [entry.obj.score for entry in candidates.iter_descending()]
        assert scores == [9.0, 7.0, 5.0]

    def test_top_entries_and_scores(self):
        candidates = CandidateSet()
        for score, t in [(5, 1), (9, 2), (7, 3)]:
            candidates.add(_obj(score, t), partition_id=0)
        assert candidates.top_scores(2) == [9.0, 7.0]
        assert len(candidates.top_entries(10)) == 3


class TestMergeRefine:
    def test_merge_increments_dominance_of_weaker_candidates(self):
        candidates = CandidateSet()
        old = [_obj(10, 0), _obj(8, 1), _obj(2, 2)]
        for obj in old:
            candidates.add(obj, partition_id=0)
        # Newer partition contributes 9 and 3: 8 gains one dominator (9),
        # 2 gains two dominators (9 and 3), 10 gains none.
        candidates.merge_partition_topk([_obj(9, 10), _obj(3, 11)], partition_id=1, k=5)
        assert candidates.get((10.0, 0)).dominance == 0
        assert candidates.get((8.0, 1)).dominance == 1
        assert candidates.get((2.0, 2)).dominance == 2

    def test_merge_removes_candidates_reaching_k_dominators(self):
        candidates = CandidateSet()
        candidates.add(_obj(1, 0), partition_id=0)
        removed = candidates.merge_partition_topk(
            [_obj(5, 10), _obj(4, 11)], partition_id=1, k=2
        )
        assert [entry.obj.score for entry in removed] == [1.0]
        assert (1.0, 0) not in candidates
        assert len(candidates) == 2

    def test_dominance_accumulates_across_merges(self):
        candidates = CandidateSet()
        candidates.add(_obj(1, 0), partition_id=0)
        candidates.merge_partition_topk([_obj(5, 10)], partition_id=1, k=3)
        candidates.merge_partition_topk([_obj(6, 20)], partition_id=2, k=3)
        assert candidates.get((1.0, 0)).dominance == 2
        candidates.merge_partition_topk([_obj(7, 30)], partition_id=3, k=3)
        assert (1.0, 0) not in candidates

    def test_merge_inserts_new_objects_with_zero_dominance(self):
        candidates = CandidateSet()
        candidates.merge_partition_topk([_obj(4, 1), _obj(2, 2)], partition_id=0, k=2)
        assert candidates.get((4.0, 1)).dominance == 0
        assert candidates.get((2.0, 2)).dominance == 0

    def test_merge_empty_list_is_noop(self):
        candidates = CandidateSet()
        candidates.add(_obj(5, 1), partition_id=0)
        removed = candidates.merge_partition_topk([], partition_id=1, k=2)
        assert removed == [] and len(candidates) == 1


class TestFrameworkQueries:
    def _populated(self):
        candidates = CandidateSet()
        # Partition 0 owns 10 and 4, partition 1 owns 9, 8, partition 2 owns 6.
        candidates.add(_obj(10, 0), partition_id=0)
        candidates.add(_obj(4, 1), partition_id=0)
        candidates.add(_obj(9, 10), partition_id=1)
        candidates.add(_obj(8, 11), partition_id=1)
        candidates.add(_obj(6, 20), partition_id=2)
        return candidates

    def test_group_dominance_counts_other_partitions_only(self):
        candidates = self._populated()
        # kth key of partition 0 is (4, 1): candidates above it from other
        # partitions are 9, 8, 6 -> rho = 3 (capped at k).
        assert candidates.group_dominance((4.0, 1), partition_id=0, k=10) == 3
        assert candidates.group_dominance((4.0, 1), partition_id=0, k=2) == 2

    def test_group_dominance_excludes_own_partition(self):
        candidates = self._populated()
        # Above (4,1) there is also partition 0's own 10, which must not count.
        rho_with_own_excluded = candidates.group_dominance((4.0, 1), partition_id=0, k=10)
        rho_other_partition = candidates.group_dominance((4.0, 1), partition_id=9, k=10)
        assert rho_other_partition == rho_with_own_excluded + 1

    def test_global_threshold_kth_best_outside_partition(self):
        candidates = self._populated()
        # Excluding partition 0, the candidates are 9, 8, 6: the 2nd best is 8.
        assert candidates.global_threshold(exclude_partition_id=0, k=2) == (8.0, 11)

    def test_global_threshold_none_when_not_enough_candidates(self):
        candidates = self._populated()
        assert candidates.global_threshold(exclude_partition_id=0, k=4) is None

    def test_count_for_partition(self):
        candidates = self._populated()
        assert candidates.count_for_partition(0) == 2
        assert candidates.count_for_partition(1) == 2
        assert candidates.count_for_partition(7) == 0
