"""Unit tests for the SAP framework (Algorithm 1)."""

import pytest

from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery
from repro.core.window import slides_for_query
from repro.baselines.brute_force import BruteForceTopK
from repro.core.result import results_agree
from repro.partitioning.dynamic import DynamicPartitioner
from repro.partitioning.enhanced import EnhancedDynamicPartitioner
from repro.partitioning.equal import EqualPartitioner

from ..conftest import make_objects


def _run(algorithm, objects):
    return [algorithm.process_slide(e) for e in slides_for_query(objects, algorithm.query)]


def _reference(query, objects):
    return _run(BruteForceTopK(query), objects)


class TestConstruction:
    def test_default_partitioner_is_enhanced_dynamic(self):
        sap = SAPTopK(TopKQuery(n=100, k=5, s=5))
        assert isinstance(sap.partitioner, EnhancedDynamicPartitioner)
        assert "enhanced" in sap.name

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SAPTopK(TopKQuery(n=100, k=5, s=5), meaningful_policy="sometimes")

    def test_name_mentions_partitioner(self):
        sap = SAPTopK(TopKQuery(n=100, k=5, s=5), partitioner=EqualPartitioner(m=4))
        assert "equal" in sap.name


class TestExactness:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda q: SAPTopK(q, partitioner=EqualPartitioner()),
            lambda q: SAPTopK(q, partitioner=DynamicPartitioner()),
            lambda q: SAPTopK(q, partitioner=EnhancedDynamicPartitioner()),
            lambda q: SAPTopK(q, meaningful_policy="eager"),
            lambda q: SAPTopK(q, use_savl=False),
        ],
        ids=["equal", "dynamic", "enhanced", "eager", "no-savl"],
    )
    def test_matches_brute_force_on_uniform_stream(self, factory, small_uniform_stream):
        query = TopKQuery(n=150, k=7, s=10)
        assert results_agree(
            _run(factory(query), small_uniform_stream),
            _reference(query, small_uniform_stream),
        )

    def test_matches_brute_force_on_decreasing_stream(self, decreasing_stream):
        query = TopKQuery(n=120, k=6, s=6)
        sap = SAPTopK(query)
        assert results_agree(_run(sap, decreasing_stream), _reference(query, decreasing_stream))

    def test_matches_brute_force_on_increasing_stream(self, increasing_stream):
        query = TopKQuery(n=120, k=6, s=6)
        sap = SAPTopK(query)
        assert results_agree(_run(sap, increasing_stream), _reference(query, increasing_stream))

    def test_single_partition_per_window(self, small_uniform_stream):
        # m=1 forces the extreme case where expirations can exhaust every
        # sealed partition (the force-seal safety valve).
        query = TopKQuery(n=100, k=4, s=10)
        sap = SAPTopK(query, partitioner=EqualPartitioner(m=1))
        assert results_agree(_run(sap, small_uniform_stream), _reference(query, small_uniform_stream))

    def test_slide_of_one(self, small_uniform_stream):
        query = TopKQuery(n=80, k=5, s=1)
        sap = SAPTopK(query)
        stream = small_uniform_stream[:300]
        assert results_agree(_run(sap, stream), _reference(query, stream))

    def test_k_equals_one(self, small_uniform_stream):
        query = TopKQuery(n=90, k=1, s=9)
        sap = SAPTopK(query)
        assert results_agree(_run(sap, small_uniform_stream), _reference(query, small_uniform_stream))

    def test_whole_window_slide(self, small_uniform_stream):
        query = TopKQuery(n=100, k=5, s=100)
        sap = SAPTopK(query)
        assert results_agree(_run(sap, small_uniform_stream), _reference(query, small_uniform_stream))

    def test_duplicate_scores(self):
        objects = make_objects([5.0] * 200 + [7.0] * 200 + [5.0] * 200)
        query = TopKQuery(n=100, k=5, s=10)
        sap = SAPTopK(query)
        assert results_agree(_run(sap, objects), _reference(query, objects))


class TestInternals:
    def test_partitions_tracked(self, small_uniform_stream):
        query = TopKQuery(n=150, k=7, s=10)
        sap = SAPTopK(query, partitioner=EqualPartitioner())
        _run(sap, small_uniform_stream)
        assert sap.partition_count >= 1
        assert all(size > 0 for size in sap.partition_sizes())

    def test_front_partition_has_rho_after_expirations(self, small_uniform_stream):
        query = TopKQuery(n=150, k=7, s=10)
        sap = SAPTopK(query)
        _run(sap, small_uniform_stream)
        front = sap.front_partition()
        assert front is not None
        assert front.rho is not None and front.rho >= 0

    def test_candidate_count_bounded(self, small_uniform_stream):
        """|C ∪ M_0| stays far below the window size on uniform data."""
        query = TopKQuery(n=200, k=5, s=10)
        sap = SAPTopK(query)
        for event in slides_for_query(small_uniform_stream, query):
            sap.process_slide(event)
            assert sap.candidate_count() <= query.n
        assert sap.candidate_count() < query.n / 2

    def test_memory_estimate_positive(self, small_uniform_stream):
        query = TopKQuery(n=150, k=7, s=10)
        sap = SAPTopK(query)
        _run(sap, small_uniform_stream)
        assert sap.memory_bytes() > 0

    def test_eager_policy_stores_premade_sets(self, small_uniform_stream):
        query = TopKQuery(n=150, k=7, s=10)
        sap = SAPTopK(query, meaningful_policy="eager", partitioner=EqualPartitioner())
        _run(sap, small_uniform_stream)
        # Eager formation keeps a meaningful set per sealed partition.
        assert len(sap._premade) >= 1

    def test_run_convenience_wrapper(self, small_uniform_stream):
        query = TopKQuery(n=150, k=7, s=10)
        results = SAPTopK(query).run(small_uniform_stream)
        assert results
        assert all(len(result) == query.k for result in results)
