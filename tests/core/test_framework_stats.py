"""Unit tests for the framework's work counters (FrameworkStats)."""

from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery
from repro.partitioning import EqualPartitioner



def _run(sap, objects):
    sap.run(objects)
    return sap.stats


class TestFrameworkStats:
    def test_counters_start_at_zero(self):
        sap = SAPTopK(TopKQuery(n=50, k=3, s=5))
        assert sap.stats.as_dict() == {
            "partitions_sealed": 0,
            "fronts_prepared": 0,
            "meaningful_formed": 0,
            "meaningful_skipped": 0,
            "promotions": 0,
            "refine_removals": 0,
        }

    def test_partitions_sealed_counts_every_seal(self, small_uniform_stream):
        sap = SAPTopK(TopKQuery(n=150, k=7, s=10), partitioner=EqualPartitioner(m=5))
        _run(sap, small_uniform_stream)
        # Every sealed partition got a fresh id, so the counter matches.
        assert sap.stats.partitions_sealed == sap._next_partition_id
        assert sap.stats.partitions_sealed >= sap.partition_count

    def test_every_prepared_front_is_formed_or_skipped(self, small_uniform_stream):
        sap = SAPTopK(TopKQuery(n=150, k=7, s=10))
        _run(sap, small_uniform_stream)
        stats = sap.stats
        assert stats.fronts_prepared > 0
        assert stats.meaningful_formed + stats.meaningful_skipped == stats.fronts_prepared

    def test_decreasing_stream_forms_meaningful_sets(self, decreasing_stream):
        """On an anti-correlated stream the front partition always has
        rho < k, so the meaningful set is formed for (almost) every front
        and promotions actually happen."""
        sap = SAPTopK(TopKQuery(n=120, k=6, s=6))
        _run(sap, decreasing_stream)
        assert sap.stats.meaningful_formed > 0
        assert sap.stats.promotions > 0

    def test_increasing_stream_skips_meaningful_sets(self, increasing_stream):
        """On a correlated stream newer partitions dominate older ones, so
        rho >= k for every front after the first and formation is skipped."""
        sap = SAPTopK(TopKQuery(n=120, k=6, s=6))
        _run(sap, increasing_stream)
        assert sap.stats.meaningful_skipped >= sap.stats.meaningful_formed
        assert sap.stats.refine_removals > 0

    def test_eager_policy_always_forms(self, small_uniform_stream):
        sap = SAPTopK(TopKQuery(n=150, k=7, s=10), meaningful_policy="eager")
        _run(sap, small_uniform_stream)
        assert sap.stats.meaningful_skipped == 0
        assert sap.stats.meaningful_formed == sap.stats.fronts_prepared

    def test_stats_repr_and_dict(self, small_uniform_stream):
        sap = SAPTopK(TopKQuery(n=150, k=7, s=10))
        _run(sap, small_uniform_stream)
        as_dict = sap.stats.as_dict()
        assert set(as_dict) == {
            "partitions_sealed",
            "fronts_prepared",
            "meaningful_formed",
            "meaningful_skipped",
            "promotions",
            "refine_removals",
        }
        assert all(value >= 0 for value in as_dict.values())
