"""Unit tests for the sliding-window substrate (count- and time-based)."""

import pytest

from repro.core.exceptions import InvalidQueryError
from repro.core.object import StreamObject
from repro.core.query import TopKQuery
from repro.core.window import (
    SlidingWindow,
    count_based_slides,
    slides_for_query,
    time_based_slides,
)

from ..conftest import make_objects


class TestSlidingWindow:
    def test_append_and_len(self):
        window = SlidingWindow()
        for obj in make_objects([1, 2, 3]):
            window.append(obj)
        assert len(window) == 3
        assert window.oldest.t == 0 and window.newest.t == 2

    def test_out_of_order_append_rejected(self):
        window = SlidingWindow()
        window.append(StreamObject(score=1.0, t=5))
        with pytest.raises(InvalidQueryError):
            window.append(StreamObject(score=1.0, t=4))

    def test_expire_oldest(self):
        window = SlidingWindow()
        for obj in make_objects([1, 2, 3, 4]):
            window.append(obj)
        removed = window.expire_oldest(2)
        assert [o.t for o in removed] == [0, 1]
        assert len(window) == 2

    def test_expire_older_than_uses_arrival_time(self):
        window = SlidingWindow()
        window.append(StreamObject(score=1.0, t=0, timestamp=10))
        window.append(StreamObject(score=1.0, t=1, timestamp=20))
        removed = window.expire_older_than(15)
        assert [o.t for o in removed] == [0]


class TestCountBasedSlides:
    def test_first_event_contains_full_window(self):
        query = TopKQuery(n=5, k=2, s=2)
        events = list(count_based_slides(make_objects(range(11)), query))
        assert len(events[0].arrivals) == 5
        assert events[0].expirations == ()
        assert events[0].index == 0

    def test_subsequent_events_have_s_arrivals_and_expirations(self):
        query = TopKQuery(n=5, k=2, s=2)
        events = list(count_based_slides(make_objects(range(11)), query))
        for event in events[1:]:
            assert len(event.arrivals) == query.s
            assert len(event.expirations) == query.s

    def test_number_of_events(self):
        query = TopKQuery(n=5, k=2, s=2)
        events = list(count_based_slides(make_objects(range(11)), query))
        # 5 objects fill the window, then 3 complete slides of 2 objects.
        assert len(events) == 4

    def test_trailing_partial_slide_discarded(self):
        query = TopKQuery(n=4, k=1, s=3)
        events = list(count_based_slides(make_objects(range(9)), query))
        # window at 4 objects, one full slide (3 objects), 2 leftovers dropped.
        assert len(events) == 2

    def test_expirations_are_oldest_objects(self):
        query = TopKQuery(n=4, k=1, s=2)
        events = list(count_based_slides(make_objects(range(8)), query))
        assert [o.t for o in events[1].expirations] == [0, 1]
        assert [o.t for o in events[2].expirations] == [2, 3]

    def test_short_stream_yields_nothing(self):
        query = TopKQuery(n=10, k=1, s=1)
        assert list(count_based_slides(make_objects(range(5)), query)) == []

    def test_window_invariant_holds_at_every_event(self):
        query = TopKQuery(n=6, k=2, s=3)
        objects = make_objects(range(30))
        live = []
        for event in count_based_slides(objects, query):
            expired_ids = {o.t for o in event.expirations}
            live = [o for o in live if o.t not in expired_ids] + list(event.arrivals)
            assert len(live) == query.n
            assert [o.t for o in live] == sorted(o.t for o in live)

    def test_rejects_time_based_query(self):
        query = TopKQuery(n=5, k=2, s=2, time_based=True)
        with pytest.raises(InvalidQueryError):
            list(count_based_slides(make_objects(range(10)), query))


class TestTimeBasedSlides:
    def _timed_objects(self, timestamps, scores=None):
        scores = scores or [1.0] * len(timestamps)
        return [
            StreamObject(score=float(s), t=i, timestamp=ts)
            for i, (ts, s) in enumerate(zip(timestamps, scores))
        ]

    def test_basic_reporting(self):
        query = TopKQuery(n=10, k=2, s=5, time_based=True)
        objects = self._timed_objects(list(range(0, 30)))
        events = list(time_based_slides(objects, query))
        assert events, "expected at least one report"
        assert events[0].index == 0

    def test_live_set_matches_window_duration(self):
        query = TopKQuery(n=10, k=2, s=5, time_based=True)
        objects = self._timed_objects(list(range(0, 40)))
        live = []
        for event in time_based_slides(objects, query):
            expired_ids = {o.t for o in event.expirations}
            live = [o for o in live if o.t not in expired_ids] + list(event.arrivals)
            spread = max(o.arrival_time for o in live) - min(o.arrival_time for o in live)
            assert spread <= query.n

    def test_expirations_never_include_undelivered_objects(self):
        query = TopKQuery(n=5, k=1, s=5, time_based=True)
        # Objects arriving long before the first report must not be reported
        # as expirations of objects that never arrived.
        objects = self._timed_objects([0, 1, 2, 20, 21, 40, 41])
        delivered = set()
        for event in time_based_slides(objects, query):
            for obj in event.expirations:
                assert obj.t in delivered
            delivered.update(o.t for o in event.arrivals)

    def test_rejects_count_based_query(self):
        query = TopKQuery(n=5, k=2, s=2)
        with pytest.raises(InvalidQueryError):
            list(time_based_slides(make_objects(range(10)), query))

    def test_empty_stream(self):
        query = TopKQuery(n=5, k=2, s=2, time_based=True)
        assert list(time_based_slides([], query)) == []


class TestDispatch:
    def test_slides_for_query_dispatches_on_window_type(self):
        objects = make_objects(range(20))
        count_query = TopKQuery(n=5, k=2, s=5)
        time_query = TopKQuery(n=5, k=2, s=5, time_based=True)
        count_events = list(slides_for_query(objects, count_query))
        time_events = list(slides_for_query(objects, time_query))
        assert count_events and time_events
        assert len(count_events[0].arrivals) == 5
