"""Unit tests for the continuous top-k query specification."""

import math

import pytest

from repro.core.exceptions import InvalidQueryError
from repro.core.query import TopKQuery, identity_preference, make_query


class TestValidation:
    def test_valid_query(self):
        query = TopKQuery(n=100, k=10, s=5)
        assert query.n == 100 and query.k == 10 and query.s == 5

    @pytest.mark.parametrize("n", [0, -1])
    def test_non_positive_window_rejected(self, n):
        with pytest.raises(InvalidQueryError):
            TopKQuery(n=n, k=1)

    @pytest.mark.parametrize("k", [0, -5])
    def test_non_positive_k_rejected(self, k):
        with pytest.raises(InvalidQueryError):
            TopKQuery(n=10, k=k)

    def test_non_positive_slide_rejected(self):
        with pytest.raises(InvalidQueryError):
            TopKQuery(n=10, k=1, s=0)

    def test_slide_larger_than_window_rejected(self):
        with pytest.raises(InvalidQueryError):
            TopKQuery(n=10, k=1, s=11)

    def test_k_larger_than_count_window_rejected(self):
        with pytest.raises(InvalidQueryError):
            TopKQuery(n=10, k=11)

    def test_k_larger_than_duration_allowed_for_time_based(self):
        query = TopKQuery(n=10, k=50, s=5, time_based=True)
        assert query.time_based


class TestDerivedQuantities:
    def test_m_star_formula(self):
        query = TopKQuery(n=10_000, k=100, s=10)
        assert query.m_star == math.ceil(math.sqrt(10_000 / 100))

    def test_m_star_uses_max_of_s_and_k(self):
        by_k = TopKQuery(n=10_000, k=100, s=10)
        by_s = TopKQuery(n=10_000, k=10, s=100)
        assert by_k.m_star == by_s.m_star

    def test_m_star_at_least_one(self):
        query = TopKQuery(n=5, k=5, s=5)
        assert query.m_star >= 1

    def test_l_min_is_multiple_of_slide(self):
        query = TopKQuery(n=1_000, k=7, s=13)
        assert query.l_min % query.s == 0

    def test_l_min_at_least_max_of_s_and_k(self):
        query = TopKQuery(n=1_000, k=50, s=10)
        assert query.l_min >= max(query.s, query.k)

    def test_l_max_between_l_min_and_window(self):
        query = TopKQuery(n=10_000, k=100, s=10)
        l_max = query.l_max(eta=3.0)
        assert query.l_min <= l_max <= query.n

    def test_l_max_formula_n_over_one_plus_eta(self):
        query = TopKQuery(n=12_000, k=10, s=10)
        eta = 2.0
        assert query.l_max(eta) <= query.n / (1 + eta) + query.s

    def test_slides_per_window(self):
        assert TopKQuery(n=100, k=5, s=10).slides_per_window == 10
        assert TopKQuery(n=105, k=5, s=10).slides_per_window == 11


class TestPreference:
    def test_identity_preference_default(self):
        query = TopKQuery(n=10, k=1)
        assert query.score(3) == 3.0
        assert query.preference is identity_preference

    def test_custom_preference(self):
        query = make_query(n=10, k=1, preference=lambda record: record["value"] * 2)
        assert query.score({"value": 4}) == 8.0

    def test_describe_mentions_window_type(self):
        assert "count-based" in TopKQuery(n=10, k=2).describe()
        assert "time-based" in TopKQuery(n=10, k=2, time_based=True).describe()

    def test_make_query_defaults(self):
        query = make_query(n=20, k=3)
        assert query.s == 1 and not query.time_based
