"""Unit tests for the stream-object data model and its total order."""


from repro.core.object import StreamObject, kth_score, sort_by_rank, top_k


class TestRankOrder:
    def test_rank_key_prefers_higher_score(self):
        low = StreamObject(score=1.0, t=5)
        high = StreamObject(score=2.0, t=1)
        assert high.rank_key > low.rank_key
        assert high.beats(low)
        assert not low.beats(high)

    def test_score_ties_broken_by_arrival_order(self):
        older = StreamObject(score=3.0, t=1)
        newer = StreamObject(score=3.0, t=2)
        assert newer.beats(older)
        assert newer.rank_key > older.rank_key

    def test_rank_key_is_score_then_arrival(self):
        obj = StreamObject(score=7.5, t=11)
        assert obj.rank_key == (7.5, 11)


class TestDominance:
    def test_later_higher_object_dominates(self):
        old = StreamObject(score=1.0, t=1)
        new = StreamObject(score=2.0, t=2)
        assert old.dominated_by(new)

    def test_earlier_object_never_dominates(self):
        old = StreamObject(score=5.0, t=1)
        new = StreamObject(score=1.0, t=2)
        assert not new.dominated_by(old)

    def test_equal_score_later_arrival_dominates(self):
        old = StreamObject(score=5.0, t=1)
        new = StreamObject(score=5.0, t=2)
        assert old.dominated_by(new)
        assert not new.dominated_by(old)

    def test_object_does_not_dominate_itself(self):
        obj = StreamObject(score=5.0, t=1)
        assert not obj.dominated_by(obj)


class TestHelpers:
    def test_sort_by_rank_best_first(self):
        objects = [StreamObject(score=s, t=i) for i, s in enumerate([3.0, 1.0, 2.0])]
        ordered = sort_by_rank(objects)
        assert [o.score for o in ordered] == [3.0, 2.0, 1.0]

    def test_sort_by_rank_ascending(self):
        objects = [StreamObject(score=s, t=i) for i, s in enumerate([3.0, 1.0, 2.0])]
        ordered = sort_by_rank(objects, reverse=False)
        assert [o.score for o in ordered] == [1.0, 2.0, 3.0]

    def test_top_k_returns_k_best(self):
        objects = [StreamObject(score=float(s), t=i) for i, s in enumerate(range(10))]
        best = top_k(objects, 3)
        assert [o.score for o in best] == [9.0, 8.0, 7.0]

    def test_top_k_handles_small_input(self):
        objects = [StreamObject(score=1.0, t=0)]
        assert len(top_k(objects, 5)) == 1

    def test_top_k_zero_or_negative_k(self):
        objects = [StreamObject(score=1.0, t=0)]
        assert top_k(objects, 0) == []
        assert top_k(objects, -1) == []

    def test_kth_score(self):
        objects = [StreamObject(score=float(s), t=i) for i, s in enumerate([5, 1, 9, 7])]
        assert kth_score(objects, 2) == 7.0

    def test_kth_score_insufficient_objects(self):
        objects = [StreamObject(score=1.0, t=0)]
        assert kth_score(objects, 3) == float("-inf")


class TestTimestamps:
    def test_arrival_time_defaults_to_t(self):
        obj = StreamObject(score=1.0, t=17)
        assert obj.arrival_time == 17

    def test_explicit_timestamp_used_for_arrival_time(self):
        obj = StreamObject(score=1.0, t=17, timestamp=99)
        assert obj.arrival_time == 99

    def test_payload_does_not_affect_equality(self):
        a = StreamObject(score=1.0, t=1, payload={"x": 1})
        b = StreamObject(score=1.0, t=1, payload={"x": 2})
        assert a == b
