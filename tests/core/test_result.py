"""Unit tests for top-k result objects and agreement checking."""

from repro.core.object import StreamObject
from repro.core.result import TopKResult, results_agree


def _result(index, scores):
    objects = [StreamObject(score=float(s), t=i) for i, s in enumerate(scores)]
    return TopKResult.from_objects(index, window_end=index, objects=objects)


class TestTopKResult:
    def test_from_objects_orders_best_first(self):
        result = _result(0, [1.0, 5.0, 3.0])
        assert result.scores == [5.0, 3.0, 1.0]

    def test_len_and_iteration(self):
        result = _result(0, [1.0, 2.0])
        assert len(result) == 2
        assert [o.score for o in result] == [2.0, 1.0]

    def test_identity_includes_arrival_order(self):
        a = TopKResult.from_objects(0, 0, [StreamObject(score=1.0, t=1)])
        b = TopKResult.from_objects(0, 0, [StreamObject(score=1.0, t=2)])
        assert a.identity() != b.identity()

    def test_arrival_orders_property(self):
        result = _result(0, [1.0, 5.0])
        assert result.arrival_orders == [1, 0]


class TestResultsAgree:
    def test_identical_streams_agree(self):
        left = [_result(0, [1, 2]), _result(1, [3, 4])]
        right = [_result(0, [1, 2]), _result(1, [3, 4])]
        assert results_agree(left, right)

    def test_different_scores_disagree(self):
        assert not results_agree([_result(0, [1, 2])], [_result(0, [1, 3])])

    def test_different_lengths_disagree(self):
        assert not results_agree([_result(0, [1])], [_result(0, [1]), _result(1, [2])])

    def test_empty_streams_agree(self):
        assert results_agree([], [])
