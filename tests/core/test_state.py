"""Unit tests for the serialization layer (:mod:`repro.core.state`)."""

import pickle

import pytest

from repro.core.exceptions import InvalidQueryError
from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery
from repro.core.state import (
    STATE_FORMAT_VERSION,
    AlgorithmState,
    StateSerializationError,
    StateVersionError,
    capture_algorithm,
    check_version,
    dumps,
    loads,
    replay_event,
    restore_algorithm,
)
from repro.core.window import SlideBatcher
from repro.baselines.sma import SMATopK

from ..conftest import make_objects, random_scores

QUERY = TopKQuery(n=60, k=4, s=10)


def run_to_boundary(algorithm, objects):
    """Drive ``algorithm`` through ``objects``; return (batcher, results)."""
    batcher = SlideBatcher(algorithm.query)
    results = []
    for obj in objects:
        for event in batcher.push(obj):
            results.append(algorithm.process_slide(event))
    return batcher, results


class TestCapture:
    def test_capture_is_versioned_and_fresh(self):
        algorithm = SAPTopK(QUERY)
        batcher, _ = run_to_boundary(algorithm, make_objects(random_scores(120)))
        state = capture_algorithm(
            algorithm, tuple(batcher.window_contents()), batcher.last_index
        )
        assert state.version == STATE_FORMAT_VERSION
        assert state.slide_index == batcher.last_index
        assert len(state.window) == QUERY.n
        # The captured algorithm is a respawn: configuration, no state.
        assert state.algorithm is not algorithm
        assert state.algorithm.candidate_count() == 0

    def test_capture_before_first_slide_requires_empty_window(self):
        algorithm = SAPTopK(QUERY)
        with pytest.raises(ValueError, match="not a slide boundary"):
            capture_algorithm(algorithm, tuple(make_objects([1.0])), None)

    def test_interface_capture_state_helper(self):
        algorithm = SAPTopK(QUERY)
        state = algorithm.capture_state((), None)
        assert isinstance(state, AlgorithmState)
        restored = restore_algorithm(state)
        assert isinstance(restored, SAPTopK)


class TestRestore:
    def test_round_trip_continues_byte_identical(self):
        objects = make_objects(random_scores(300, seed=7))
        reference = SAPTopK(QUERY)
        _, expected = run_to_boundary(reference, objects)

        algorithm = SAPTopK(QUERY)
        batcher, head = run_to_boundary(algorithm, objects[:150])
        state = loads(dumps(capture_algorithm(
            algorithm, tuple(batcher.window_contents()), batcher.last_index
        )))
        restored = restore_algorithm(state)
        resumed = SlideBatcher(QUERY)
        resumed.seed(tuple(batcher.window_contents()), batcher.last_index)
        tail = []
        for obj in objects[150:]:
            for event in resumed.push(obj):
                tail.append(restored.process_slide(event))
        assert [r.scores for r in head + tail] == [r.scores for r in expected]

    def test_restore_twice_yields_independent_instances(self):
        algorithm = SAPTopK(QUERY)
        batcher, _ = run_to_boundary(algorithm, make_objects(random_scores(120)))
        state = capture_algorithm(
            algorithm, tuple(batcher.window_contents()), batcher.last_index
        )
        first, second = restore_algorithm(state), restore_algorithm(state)
        assert first is not second
        assert first is not state.algorithm

    def test_sma_respawn_preserves_configuration(self):
        algorithm = SMATopK(QUERY, kmax_factor=3, grid_cells=16)
        respawned = algorithm.respawn()
        assert respawned._kmax == 3 * QUERY.k
        assert respawned._grid_cells == 16


class TestWireFormat:
    def test_version_mismatch_rejected(self):
        state = capture_algorithm(SAPTopK(QUERY), (), None)
        stale = AlgorithmState(
            version=STATE_FORMAT_VERSION + 1,
            algorithm=state.algorithm,
            window=state.window,
            slide_index=state.slide_index,
        )
        with pytest.raises(StateVersionError, match="not supported"):
            loads(dumps(stale))
        with pytest.raises(StateVersionError):
            check_version(-1)
        with pytest.raises(StateVersionError):
            restore_algorithm(stale)

    def test_unpicklable_state_raises_clear_error(self):
        query = TopKQuery(n=60, k=4, s=10, preference=lambda record: float(record))
        with pytest.raises(StateSerializationError, match="picklable"):
            dumps(capture_algorithm(SAPTopK(query), (), None))

    def test_loads_round_trips_plain_pickles(self):
        # Payloads without a ``version`` attribute pass through untouched.
        assert loads(pickle.dumps({"a": 1})) == {"a": 1}


class TestReplayEvent:
    def test_replay_event_shape(self):
        window = tuple(make_objects([1.0, 2.0, 3.0]))
        event = replay_event(window, 7)
        assert event.index == 7
        assert event.arrivals == window
        assert event.expirations == ()
        assert event.window_end == window[-1].t

    def test_empty_window_replay(self):
        event = replay_event((), 0)
        assert event.window_end == 0


class TestBatcherSeed:
    def test_seed_continues_like_uninterrupted(self):
        objects = make_objects(random_scores(200, seed=3))
        reference = SlideBatcher(QUERY)
        expected = []
        for obj in objects:
            expected.extend(reference.push(obj))

        first = SlideBatcher(QUERY)
        head = []
        for obj in objects[:100]:
            head.extend(first.push(obj))
        second = SlideBatcher(QUERY)
        second.seed(tuple(first.window_contents()), first.last_index)
        assert second.at_slide_boundary()
        tail = []
        for obj in objects[100:]:
            tail.extend(second.push(obj))
        got = head + tail
        assert [e.index for e in got] == [e.index for e in expected]
        assert [e.arrivals for e in got] == [e.arrivals for e in expected]
        assert [e.expirations for e in got] == [e.expirations for e in expected]

    def test_seed_rejects_wrong_size(self):
        batcher = SlideBatcher(QUERY)
        with pytest.raises(InvalidQueryError, match="full window"):
            batcher.seed(tuple(make_objects([1.0])), 0)

    def test_seed_rejects_used_batcher(self):
        batcher = SlideBatcher(QUERY)
        batcher.push(make_objects([1.0])[0])
        with pytest.raises(InvalidQueryError, match="consumed"):
            batcher.seed(tuple(make_objects(random_scores(60))), 0)

    def test_seed_rejects_time_based(self):
        batcher = SlideBatcher(TopKQuery(n=60, k=4, s=10, time_based=True))
        with pytest.raises(InvalidQueryError, match="count-based"):
            batcher.seed(tuple(make_objects(random_scores(60))), 0)

    def test_seed_rejects_negative_index(self):
        batcher = SlideBatcher(QUERY)
        with pytest.raises(InvalidQueryError, match="last_index"):
            batcher.seed(tuple(make_objects(random_scores(60))), -1)
