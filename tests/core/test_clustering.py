"""Unit tests for the preference-clustering primitives.

The shared-plan exactness itself is property-tested in
``tests/property/test_property_clustering.py``; these tests pin the
building blocks — vector validation, envelope/dominance maths, k_pad
sizing, the greedy cluster space, the canonical scorer — and the
engine-facing behaviours (plan formation, modes, drift counters,
sharded round-trips) with small deterministic cases.
"""

import pytest

from repro import StreamEngine, TopKQuery
from repro.core.clustering import (
    DEFAULT_PAD_FACTOR,
    DEFAULT_SIMILARITY,
    UNATTRIBUTED_SCORE,
    ClusterSpace,
    attributes_of,
    dominated_by,
    k_pad_for,
    linear_score,
    linear_scores,
    upper_envelope,
    validate_vector,
)
from repro.core.exceptions import InvalidQueryError
from repro.core.object import StreamObject


class TestValidateVector:
    def test_normalises_to_float_tuple(self):
        assert validate_vector([1, 0, 2]) == (1.0, 0.0, 2.0)

    @pytest.mark.parametrize(
        "bad",
        [[], [float("nan")], [float("inf")], [-0.5, 1.0], [0.0, 0.0], ["x", 1.0]],
    )
    def test_rejects_invalid(self, bad):
        with pytest.raises(InvalidQueryError):
            validate_vector(bad)


class TestEnvelope:
    def test_elementwise_max(self):
        assert upper_envelope([(1.0, 5.0), (3.0, 2.0)]) == (3.0, 5.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            upper_envelope([(1.0,), (1.0, 2.0)])

    def test_dominance(self):
        envelope = (2.0, 3.0)
        assert dominated_by((2.0, 3.0), envelope)
        assert dominated_by((0.5, 1.0), envelope)
        assert not dominated_by((2.1, 0.0), envelope)

    def test_dominance_bound_holds_for_nonnegative_attributes(self):
        members = [(1.0, 0.2, 0.0), (0.8, 0.5, 0.1)]
        envelope = upper_envelope(members)
        attrs = (4.0, 7.0, 11.0)
        for member in members:
            assert linear_score(member, attrs) <= linear_score(envelope, attrs)


class TestKPad:
    def test_padded_above_k_max(self):
        assert k_pad_for(10, 1000, DEFAULT_PAD_FACTOR) == 40

    def test_at_least_k_plus_one(self):
        assert k_pad_for(10, 1000, 1.0) == 11

    def test_capped_by_window(self):
        assert k_pad_for(10, 25, DEFAULT_PAD_FACTOR) == 25


class TestLinearScores:
    def test_missing_rows_price_at_unattributed(self):
        scores = linear_scores((1.0, 1.0), [(1.0, 2.0), None, (0.0, 3.0)])
        assert scores == [3.0, UNATTRIBUTED_SCORE, 3.0]

    def test_batch_size_never_changes_a_score(self):
        # The byte-identity cornerstone: scoring a row alone and scoring
        # it inside any batch produce the same float.
        weights = (0.3, 1.7, 0.01, 2.2)
        rows = [
            tuple(float(i * j + j) for j in range(1, 5)) for i in range(50)
        ]
        batch = linear_scores(weights, rows)
        for row, expected in zip(rows, batch):
            assert linear_scores(weights, [row])[0] == expected

    def test_attributes_of_shapes(self):
        assert attributes_of(
            StreamObject(score=0.0, t=0, payload={"attributes": [1, 2]}), 2
        ) == (1.0, 2.0)
        assert attributes_of(
            StreamObject(score=0.0, t=0, payload=(3.0, 4.0)), 2
        ) == (3.0, 4.0)
        assert attributes_of(StreamObject(score=0.0, t=0, payload=None), 2) is None
        assert attributes_of(StreamObject(score=0.0, t=0, payload=(1.0,)), 2) is None


class TestClusterSpace:
    def test_similar_vectors_share_a_cluster(self):
        space = ClusterSpace()
        first = space.assign((1.0, 0.2, 0.0))
        second = space.assign((0.98, 0.21, 0.0))
        assert first == second

    def test_distinct_tastes_split(self):
        space = ClusterSpace()
        assert space.assign((1.0, 0.0)) != space.assign((0.0, 1.0))

    def test_assignment_deterministic_in_arrival_order(self):
        vectors = [(1.0, 0.1), (0.1, 1.0), (0.99, 0.11), (0.11, 0.99)]
        left = ClusterSpace()
        right = ClusterSpace()
        assert [left.assign(v) for v in vectors] == [right.assign(v) for v in vectors]

    def test_threshold_is_tight_for_positive_orthant(self):
        # Unrelated positive tastes measure ~0.9 cosine; the default must
        # keep them apart or every envelope goes slack.
        assert DEFAULT_SIMILARITY >= 0.99
        space = ClusterSpace()
        assert space.assign((1.0, 0.5)) != space.assign((0.5, 1.0))


def _attribute_objects(rows, start_t=0):
    return [
        StreamObject(score=0.0, t=start_t + i, payload={"attributes": list(row)})
        for i, row in enumerate(rows)
    ]


ROWS = [
    (float((7 * i) % 23), float((5 * i) % 17), float(i % 11)) for i in range(90)
]


class TestEngineIntegration:
    def test_two_members_form_a_cluster_plan(self):
        engine = StreamEngine()
        query = TopKQuery(n=12, k=3, s=4)
        engine.subscribe_preference("a", query, (1.0, 0.2, 0.0))
        engine.subscribe_preference("b", query, (0.99, 0.21, 0.0))
        engine.push_many(_attribute_objects(ROWS))
        plans = [p for g in engine.groups() for p in g["plans"]]
        assert [p["kind"] for p in plans] == ["cluster"]
        assert plans[0]["k_pad"] == min(12, 4 * 3)
        snapshot = engine.subscription("a").snapshot()
        assert snapshot["cluster"]["mode"] == "shared"
        engine.close()

    def test_lone_member_runs_private(self):
        engine = StreamEngine()
        engine.subscribe_preference("solo", TopKQuery(n=12, k=3, s=4), (1.0, 0.2, 0.0))
        engine.push_many(_attribute_objects(ROWS))
        assert engine.subscription("solo").snapshot()["cluster"]["mode"] == "private"
        assert not [p for g in engine.groups() for p in g["plans"]]
        engine.close()

    def test_unattributed_objects_sort_last_not_crash(self):
        engine = StreamEngine()
        query = TopKQuery(n=6, k=2, s=3)
        engine.subscribe_preference("a", query, (1.0, 1.0, 1.0))
        engine.subscribe_preference("b", query, (1.0, 0.99, 1.0))
        mixed = _attribute_objects(ROWS[:30])
        mixed[7] = StreamObject(score=0.0, t=7, payload=None)  # no attributes
        engine.push_many(mixed)
        for name in ("a", "b"):
            for result in engine.results(name):
                assert all(obj.score > UNATTRIBUTED_SCORE for obj in result.objects)
        engine.close()

    def test_update_preference_inside_envelope_stays_shared(self):
        engine = StreamEngine()
        query = TopKQuery(n=12, k=3, s=4)
        engine.subscribe_preference("a", query, (1.0, 0.5, 0.0), cluster_id=0)
        engine.subscribe_preference("b", query, (0.5, 1.0, 0.0), cluster_id=0)
        engine.push_many(_attribute_objects(ROWS[:40]))
        record = engine.update_preference("a", (0.8, 0.8, 0.0))  # under the envelope
        assert record["mode"] == "shared"
        assert not record["drifted"]
        engine.push_many(_attribute_objects(ROWS[40:], start_t=40))
        engine.close()

    def test_update_preference_outside_envelope_counts_drift(self):
        engine = StreamEngine()
        query = TopKQuery(n=12, k=3, s=4)
        engine.subscribe_preference("a", query, (1.0, 0.5, 0.0), cluster_id=0)
        engine.subscribe_preference("b", query, (0.5, 1.0, 0.0), cluster_id=0)
        engine.push_many(_attribute_objects(ROWS[:40]))
        record = engine.update_preference("a", (3.0, 3.0, 3.0))
        assert record["mode"] == "drifted"
        engine.push_many(_attribute_objects(ROWS[40:], start_t=40))
        plans = [p for g in engine.groups() for p in g["plans"]]
        assert plans[0]["fallbacks"] > 0
        engine.close()

    def test_dimension_change_rejected(self):
        engine = StreamEngine()
        engine.subscribe_preference("a", TopKQuery(n=12, k=3, s=4), (1.0, 0.5))
        with pytest.raises(InvalidQueryError):
            engine.update_preference("a", (1.0, 0.5, 0.2))
        engine.close()


class TestShardedIntegration:
    def test_preference_subscriptions_round_trip(self):
        from repro.cluster import ShardedStreamEngine

        local = StreamEngine()
        sharded = ShardedStreamEngine(shards=2, placement="hash-cluster")
        try:
            query = TopKQuery(n=12, k=3, s=4)
            vectors = {
                "a": (1.0, 0.2, 0.0),
                "b": (0.99, 0.21, 0.0),
                "c": (0.0, 0.3, 1.0),
                "d": (0.0, 0.29, 0.98),
            }
            for name, vector in vectors.items():
                local.subscribe_preference(name, query, vector)
                sharded.subscribe_preference(name, query, vector)
            objects = _attribute_objects(ROWS)
            local.push_many(objects)
            sharded.push_many(objects)
            for name in vectors:
                left = local.results(name)
                right = sharded.results(name)
                assert [r.identity() for r in left] == [r.identity() for r in right]
                assert sharded.snapshot()[name]["cluster"]["mode"] == "shared"
        finally:
            local.close()
            sharded.close()
