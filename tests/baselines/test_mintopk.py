"""Unit tests for the MinTopK baseline."""

import pytest

from repro.baselines.brute_force import BruteForceTopK
from repro.baselines.mintopk import MinTopK
from repro.core.exceptions import InvalidQueryError
from repro.core.query import TopKQuery
from repro.core.result import results_agree
from repro.core.window import slides_for_query

from ..conftest import make_objects, random_scores


def _run(algorithm, objects):
    return [algorithm.process_slide(e) for e in slides_for_query(objects, algorithm.query)]


class TestExactness:
    @pytest.mark.parametrize("s", [1, 5, 10, 25, 100])
    def test_matches_brute_force_for_various_slides(self, s):
        query = TopKQuery(n=100, k=5, s=s)
        objects = make_objects(random_scores(600, seed=s))
        assert results_agree(_run(MinTopK(query), objects), _run(BruteForceTopK(query), objects))

    def test_matches_brute_force_when_s_does_not_divide_n(self):
        query = TopKQuery(n=100, k=5, s=7)
        objects = make_objects(random_scores(500, seed=9))
        assert results_agree(_run(MinTopK(query), objects), _run(BruteForceTopK(query), objects))

    def test_matches_brute_force_on_decreasing_stream(self, decreasing_stream):
        query = TopKQuery(n=120, k=6, s=12)
        assert results_agree(
            _run(MinTopK(query), decreasing_stream),
            _run(BruteForceTopK(query), decreasing_stream),
        )

    def test_rejects_time_based_windows(self):
        with pytest.raises(InvalidQueryError):
            MinTopK(TopKQuery(n=100, k=5, s=10, time_based=True))


class TestWindowMembership:
    def test_windows_of_first_object(self):
        query = TopKQuery(n=20, k=2, s=5)
        algorithm = MinTopK(query)
        assert list(algorithm._windows_of(0)) == [0]

    def test_windows_of_generic_object(self):
        query = TopKQuery(n=20, k=2, s=5)
        algorithm = MinTopK(query)
        # Object t=22 lives in windows [ceil(3/5), floor(22/5)] = [1, 4].
        assert list(algorithm._windows_of(22)) == [1, 2, 3, 4]

    def test_windows_exclude_already_reported(self):
        query = TopKQuery(n=20, k=2, s=5)
        algorithm = MinTopK(query)
        algorithm._next_report = 3
        assert list(algorithm._windows_of(22)) == [3, 4]


class TestCandidateBehaviour:
    def test_candidate_pool_bounded_by_nk_over_s(self):
        query = TopKQuery(n=100, k=5, s=10)
        objects = make_objects(random_scores(800, seed=5))
        algorithm = MinTopK(query)
        bound = query.n * query.k / max(query.s, query.k)
        for event in slides_for_query(objects, query):
            algorithm.process_slide(event)
            assert algorithm.candidate_count() <= bound + query.k

    def test_small_slide_needs_more_candidates_than_large_slide(self):
        objects = make_objects(random_scores(800, seed=6))

        def average_candidates(s):
            query = TopKQuery(n=100, k=5, s=s)
            algorithm = MinTopK(query)
            total, slides = 0, 0
            for event in slides_for_query(objects, query):
                algorithm.process_slide(event)
                total += algorithm.candidate_count()
                slides += 1
            return total / slides

        assert average_candidates(1) > average_candidates(50)

    def test_memory_includes_lbp_pointers(self):
        query = TopKQuery(n=100, k=5, s=10)
        objects = make_objects(random_scores(400, seed=7))
        algorithm = MinTopK(query)
        for event in slides_for_query(objects, query):
            algorithm.process_slide(event)
        assert algorithm.memory_bytes() > algorithm.candidate_count() * 16
