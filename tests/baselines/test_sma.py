"""Unit tests for the SMA multi-pass baseline and its grid index."""

import pytest

from repro.baselines.brute_force import BruteForceTopK
from repro.baselines.grid import ScoreGrid
from repro.baselines.sma import SMATopK
from repro.core.object import StreamObject
from repro.core.query import TopKQuery
from repro.core.result import results_agree
from repro.core.window import slides_for_query

from ..conftest import make_objects, random_scores


def _run(algorithm, objects):
    return [algorithm.process_slide(e) for e in slides_for_query(objects, algorithm.query)]


class TestScoreGrid:
    def test_insert_remove(self):
        grid = ScoreGrid(cell_width=1.0)
        obj = StreamObject(score=5.5, t=0)
        grid.insert(obj)
        assert len(grid) == 1
        assert grid.remove(obj)
        assert not grid.remove(obj)
        assert len(grid) == 0

    def test_calibrate_sets_cell_width_once(self):
        grid = ScoreGrid()
        grid.calibrate([0.0, 100.0], cells=10)
        first_width = grid._cell_width
        grid.calibrate([0.0, 1.0], cells=10)
        assert grid._cell_width == first_width

    def test_calibrate_handles_constant_scores(self):
        grid = ScoreGrid()
        grid.calibrate([5.0, 5.0, 5.0])
        grid.insert(StreamObject(score=5.0, t=0))
        assert len(grid) == 1

    def test_collect_top_returns_highest_scores(self):
        grid = ScoreGrid(cell_width=1.0)
        for obj in make_objects([5, 50, 20, 40, 10]):
            grid.insert(obj)
        top = grid.collect_top(2)[:2]
        assert [o.score for o in top] == [50.0, 40.0]

    def test_collect_top_with_negative_scores(self):
        grid = ScoreGrid(cell_width=0.5)
        for obj in make_objects([-5, -1, -3]):
            grid.insert(obj)
        top = grid.collect_top(1)[:1]
        assert top[0].score == -1.0

    def test_scan_from_top_orders_cells(self):
        grid = ScoreGrid(cell_width=1.0)
        for obj in make_objects([1, 9, 5]):
            grid.insert(obj)
        cells = list(grid.scan_from_top())
        assert cells[0][0].score == 9.0


class TestSMAExactness:
    def test_matches_brute_force_uniform(self):
        query = TopKQuery(n=100, k=5, s=10)
        objects = make_objects(random_scores(600, seed=1))
        assert results_agree(_run(SMATopK(query), objects), _run(BruteForceTopK(query), objects))

    def test_matches_brute_force_decreasing(self, decreasing_stream):
        query = TopKQuery(n=100, k=5, s=10)
        assert results_agree(
            _run(SMATopK(query), decreasing_stream),
            _run(BruteForceTopK(query), decreasing_stream),
        )

    def test_matches_brute_force_increasing(self, increasing_stream):
        query = TopKQuery(n=100, k=5, s=10)
        assert results_agree(
            _run(SMATopK(query), increasing_stream),
            _run(BruteForceTopK(query), increasing_stream),
        )

    def test_matches_brute_force_large_slide(self):
        query = TopKQuery(n=80, k=8, s=80)
        objects = make_objects(random_scores(600, seed=2))
        assert results_agree(_run(SMATopK(query), objects), _run(BruteForceTopK(query), objects))

    def test_invalid_kmax_factor(self):
        with pytest.raises(ValueError):
            SMATopK(TopKQuery(n=10, k=2, s=1), kmax_factor=0)


class TestSMABehaviour:
    def test_rescans_frequent_on_decreasing_stream(self, decreasing_stream):
        """Downtrending scores force SMA to re-scan constantly (Figure 1(a))."""
        query = TopKQuery(n=100, k=5, s=10)
        decreasing = SMATopK(query)
        _run(decreasing, decreasing_stream)

        increasing = SMATopK(query)
        _run(increasing, make_objects([float(i) for i in range(600)]))

        assert decreasing.rescan_count > increasing.rescan_count

    def test_candidate_set_bounded_by_kmax(self):
        query = TopKQuery(n=100, k=5, s=10)
        objects = make_objects(random_scores(600, seed=3))
        algorithm = SMATopK(query)
        for event in slides_for_query(objects, query):
            algorithm.process_slide(event)
            assert algorithm.candidate_count() <= 2 * query.k

    def test_memory_includes_grid(self):
        query = TopKQuery(n=100, k=5, s=10)
        objects = make_objects(random_scores(400, seed=4))
        algorithm = SMATopK(query)
        for event in slides_for_query(objects, query):
            algorithm.process_slide(event)
        # The grid indexes the whole window, so memory exceeds the candidate
        # footprint by a factor related to n / kmax.
        assert algorithm.memory_bytes() > query.n * 8
