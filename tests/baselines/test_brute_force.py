"""Unit tests for the brute-force oracle."""

from repro.baselines.brute_force import BruteForceTopK
from repro.core.object import top_k
from repro.core.query import TopKQuery
from repro.core.window import slides_for_query

from ..conftest import make_objects, random_scores


class TestBruteForce:
    def test_first_window_topk(self):
        query = TopKQuery(n=5, k=2, s=1)
        objects = make_objects([3, 9, 1, 7, 5, 2])
        algorithm = BruteForceTopK(query)
        events = list(slides_for_query(objects, query))
        first = algorithm.process_slide(events[0])
        assert first.scores == [9.0, 7.0]

    def test_results_track_the_window(self):
        query = TopKQuery(n=4, k=1, s=2)
        objects = make_objects([10, 1, 2, 3, 4, 20, 5, 6])
        algorithm = BruteForceTopK(query)
        results = [algorithm.process_slide(e) for e in slides_for_query(objects, query)]
        assert results[0].scores == [10.0]
        # After two slides the window is [4, 20, 5, 6].
        assert results[-1].scores == [20.0]

    def test_matches_direct_topk_on_random_stream(self):
        query = TopKQuery(n=60, k=4, s=6)
        objects = make_objects(random_scores(300, seed=2))
        algorithm = BruteForceTopK(query)
        window = []
        for event in slides_for_query(objects, query):
            expired = {o.t for o in event.expirations}
            window = [o for o in window if o.t not in expired] + list(event.arrivals)
            result = algorithm.process_slide(event)
            assert list(result.objects) == top_k(window, query.k)

    def test_candidate_count_is_window_size(self):
        query = TopKQuery(n=50, k=3, s=10)
        objects = make_objects(random_scores(200, seed=3))
        algorithm = BruteForceTopK(query)
        for event in slides_for_query(objects, query):
            algorithm.process_slide(event)
            assert algorithm.candidate_count() == query.n

    def test_memory_scales_with_window(self):
        small = BruteForceTopK(TopKQuery(n=10, k=2, s=1))
        large = BruteForceTopK(TopKQuery(n=100, k=2, s=1))
        stream = make_objects(random_scores(200, seed=4))
        small.run(stream)
        large.run(stream)
        assert large.memory_bytes() > small.memory_bytes()
