"""Unit tests for the one-pass k-skyband baseline."""

from repro.baselines.brute_force import BruteForceTopK
from repro.baselines.kskyband import KSkybandTopK
from repro.core.query import TopKQuery
from repro.core.result import results_agree
from repro.core.window import slides_for_query
from repro.stats.dominance import k_skyband

from ..conftest import make_objects, random_scores


def _run(algorithm, objects):
    return [algorithm.process_slide(e) for e in slides_for_query(objects, algorithm.query)]


class TestExactness:
    def test_matches_brute_force_uniform(self):
        query = TopKQuery(n=100, k=5, s=10)
        objects = make_objects(random_scores(600, seed=1))
        assert results_agree(_run(KSkybandTopK(query), objects), _run(BruteForceTopK(query), objects))

    def test_matches_brute_force_decreasing(self, decreasing_stream):
        query = TopKQuery(n=100, k=5, s=10)
        assert results_agree(
            _run(KSkybandTopK(query), decreasing_stream),
            _run(BruteForceTopK(query), decreasing_stream),
        )

    def test_matches_brute_force_slide_one(self):
        query = TopKQuery(n=50, k=3, s=1)
        objects = make_objects(random_scores(200, seed=2))
        assert results_agree(_run(KSkybandTopK(query), objects), _run(BruteForceTopK(query), objects))


class TestCandidateSet:
    def test_candidate_set_is_exactly_the_window_skyband(self):
        query = TopKQuery(n=80, k=4, s=8)
        objects = make_objects(random_scores(400, seed=3))
        algorithm = KSkybandTopK(query)
        window = []
        for event in slides_for_query(objects, query):
            expired = {o.t for o in event.expirations}
            window = [o for o in window if o.t not in expired] + list(event.arrivals)
            algorithm.process_slide(event)
            expected = {o.rank_key for o in k_skyband(window, query.k)}
            maintained = {
                entry.obj.rank_key for _, entry in algorithm._candidates.items()
            }
            assert maintained == expected

    def test_decreasing_stream_keeps_whole_window(self, decreasing_stream):
        """Anti-correlated scores are the worst case: every window object is
        a k-skyband object (Figure 1(a) of the paper)."""
        query = TopKQuery(n=100, k=5, s=10)
        algorithm = KSkybandTopK(query)
        for event in slides_for_query(decreasing_stream, query):
            algorithm.process_slide(event)
        assert algorithm.candidate_count() == query.n

    def test_increasing_stream_keeps_few_candidates(self, increasing_stream):
        """Correlated scores are the best case: only the newest k objects
        survive the dominance pruning."""
        query = TopKQuery(n=100, k=5, s=10)
        algorithm = KSkybandTopK(query)
        for event in slides_for_query(increasing_stream, query):
            algorithm.process_slide(event)
        assert algorithm.candidate_count() <= 2 * query.k

    def test_candidate_count_larger_than_sap(self):
        from repro.core.framework import SAPTopK

        query = TopKQuery(n=200, k=5, s=10)
        objects = make_objects(random_scores(1000, seed=4))
        skyband = KSkybandTopK(query)
        sap = SAPTopK(query)
        skyband_avg, sap_avg, slides = 0.0, 0.0, 0
        for event in slides_for_query(objects, query):
            skyband.process_slide(event)
            sap.process_slide(event)
            skyband_avg += skyband.candidate_count()
            sap_avg += sap.candidate_count()
            slides += 1
        assert skyband_avg / slides > sap_avg / slides
