"""Property-based tests for the candidate set's merge-and-refine procedure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateSet
from repro.core.object import StreamObject

from ..conftest import make_objects


partition_stream = st.lists(
    st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=8
    ),
    min_size=1,
    max_size=8,
)


def _merge_all(partition_scores, k):
    """Merge successive partitions' top-k lists and mirror the bookkeeping
    with a brute-force dominance count."""
    candidates = CandidateSet()
    all_objects = []  # (partition_id, StreamObject)
    t = 0
    for partition_id, scores in enumerate(partition_scores):
        objects = make_objects(scores, start_t=t)
        t += len(objects)
        topk = sorted(objects, key=lambda o: o.rank_key, reverse=True)[:k]
        candidates.merge_partition_topk(topk, partition_id=partition_id, k=k)
        all_objects.extend((partition_id, obj) for obj in topk)
    return candidates, all_objects


@settings(max_examples=120, deadline=None)
@given(partition_scores=partition_stream, k=st.integers(min_value=1, max_value=4))
def test_merge_refine_matches_brute_force_dominance(partition_scores, k):
    """The merge counters mirror Figure 4: each candidate's counter equals
    the number of *later-partition* candidates that outrank it, and the
    candidate disappears once that count reaches k."""
    candidates, merged_objects = _merge_all(partition_scores, k)

    for partition_id, obj in merged_objects:
        dominators = sum(
            1
            for other_partition, other in merged_objects
            if other_partition > partition_id and other.rank_key > obj.rank_key
        )
        entry = candidates.get(obj.rank_key)
        if dominators >= k:
            assert entry is None, "a dominated candidate must have been refined away"
        else:
            assert entry is not None, "a non-dominated candidate must survive"
            assert entry.dominance == dominators


@settings(max_examples=80, deadline=None)
@given(partition_scores=partition_stream, k=st.integers(min_value=1, max_value=4))
def test_merge_never_loses_the_global_topk(partition_scores, k):
    candidates, merged_objects = _merge_all(partition_scores, k)
    objects_only = [obj for _, obj in merged_objects]
    global_topk = sorted(objects_only, key=lambda o: o.rank_key, reverse=True)[:k]
    surviving = {entry.obj.rank_key for entry in candidates.iter_descending()}
    assert all(obj.rank_key in surviving for obj in global_topk)


@settings(max_examples=80, deadline=None)
@given(partition_scores=partition_stream, k=st.integers(min_value=1, max_value=4))
def test_candidate_set_queries_consistent(partition_scores, k):
    candidates, _ = _merge_all(partition_scores, k)
    entries = list(candidates.iter_descending())
    keys = [entry.rank_key for entry in entries]
    assert keys == sorted(keys, reverse=True)
    assert len(candidates) == len(entries)
    if entries:
        weakest = entries[-1]
        rho = candidates.group_dominance(weakest.rank_key, weakest.partition_id, k)
        brute = sum(
            1
            for entry in entries
            if entry.rank_key > weakest.rank_key
            and entry.partition_id != weakest.partition_id
        )
        assert rho == min(brute, k)
