"""Property-based equivalence of the shared multi-query plane.

The acceptance property of the query-group refactor: for *any* mix of
queries sharing a window shape ``(n, s)`` — arbitrary result sizes ``k``,
arbitrary member counts, arbitrary streams — the shared plane produces
result sequences identical to running every query on its own independent
engine.  Checked for SAP (whose members share one sealing pipeline) and
the two baselines with shared candidate cores (k-skyband, MinTopK).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import StreamEngine, TopKQuery
from repro.engine import group_key_for
from repro.registry import create_algorithm

from ..conftest import make_objects

SHARING_ALGORITHMS = ("SAP", "k-skyband", "MinTopK")

scores_strategy = st.lists(
    st.one_of(
        st.integers(min_value=-50, max_value=50).map(float),
        st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    ),
    min_size=40,
    max_size=160,
)

shape_strategy = st.tuples(
    st.integers(min_value=5, max_value=30),   # n
    st.integers(min_value=1, max_value=10),   # s
)

#: 2–5 queries per mix, each with its own k.
k_mix_strategy = st.lists(
    st.integers(min_value=1, max_value=12), min_size=2, max_size=5
)


def _identical(left, right):
    """Byte-identical result sequences: same windows, same ordered answers."""
    if len(left) != len(right):
        return False
    return all(
        a.slide_index == b.slide_index
        and a.window_end == b.window_end
        and a.identity() == b.identity()
        for a, b in zip(left, right)
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scores=scores_strategy, shape=shape_strategy, k_mix=k_mix_strategy)
def test_shared_plane_equals_independent_engines(scores, shape, k_mix):
    n, s = shape
    s = min(s, n)
    objects = make_objects(scores)
    queries = [TopKQuery(n=n, k=min(k, n), s=s) for k in k_mix]

    for algorithm in SHARING_ALGORITHMS:
        shared_engine = StreamEngine()
        for index, query in enumerate(queries):
            shared_engine.subscribe(f"q{index}", query, algorithm=algorithm)
        shared_engine.push_many(objects)
        shared_engine.flush()

        # One group, one plan: the mix genuinely went through the plane.
        groups = shared_engine.groups()
        assert len(groups) == 1
        assert [plan["kind"] for plan in groups[0]["plans"]] == [algorithm]

        for index, query in enumerate(queries):
            independent = StreamEngine()
            independent.subscribe("solo", query, algorithm=algorithm)
            independent.push_many(objects)
            independent.flush()
            assert _identical(
                shared_engine.results(f"q{index}"), independent.results("solo")
            ), (algorithm, query.describe())


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scores=scores_strategy, shape=shape_strategy, k_mix=k_mix_strategy)
def test_mixed_algorithm_group_stays_exact(scores, shape, k_mix):
    """All three sharing algorithms in one group agree with brute force."""
    n, s = shape
    s = min(s, n)
    objects = make_objects(scores)
    ks = [min(k, n) for k in k_mix]

    engine = StreamEngine()
    for index, k in enumerate(ks):
        algorithm = SHARING_ALGORITHMS[index % len(SHARING_ALGORITHMS)]
        engine.subscribe(f"q{index}", TopKQuery(n=n, k=k, s=s), algorithm=algorithm)
    engine.push_many(objects)

    assert len({group_key_for(TopKQuery(n=n, k=k, s=s)) for k in ks}) == 1
    for index, k in enumerate(ks):
        reference = create_algorithm("brute-force", TopKQuery(n=n, k=k, s=s)).run(objects)
        assert _identical(engine.results(f"q{index}"), reference), (index, k)
