"""Property-based tests: exactness of every algorithm on arbitrary streams."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BruteForceTopK,
    KSkybandTopK,
    MinTopK,
    SAPTopK,
    SMATopK,
    TopKQuery,
    compare_algorithms,
)
from repro.partitioning import EnhancedDynamicPartitioner, EqualPartitioner

from ..conftest import make_objects

# A compact but adversarial universe: short windows, small slides, scores
# with plenty of ties and both signs.
scores_strategy = st.lists(
    st.one_of(
        st.integers(min_value=-50, max_value=50).map(float),
        st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    ),
    min_size=30,
    max_size=160,
)

query_strategy = st.tuples(
    st.integers(min_value=5, max_value=30),   # n
    st.integers(min_value=1, max_value=8),    # k
    st.integers(min_value=1, max_value=10),   # s
)


def _valid_query(params):
    n, k, s = params
    return TopKQuery(n=n, k=min(k, n), s=min(s, n))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scores=scores_strategy, params=query_strategy)
def test_sap_variants_match_brute_force(scores, params):
    query = _valid_query(params)
    objects = make_objects(scores)
    outcome = compare_algorithms(
        [
            BruteForceTopK,
            lambda q: SAPTopK(q, partitioner=EqualPartitioner()),
            lambda q: SAPTopK(q, partitioner=EnhancedDynamicPartitioner()),
            lambda q: SAPTopK(q, meaningful_policy="eager"),
            lambda q: SAPTopK(q, use_savl=False),
        ],
        objects,
        query,
    )
    assert outcome.agree, outcome.disagreement


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scores=scores_strategy, params=query_strategy)
def test_baselines_match_brute_force(scores, params):
    query = _valid_query(params)
    objects = make_objects(scores)
    outcome = compare_algorithms(
        [BruteForceTopK, MinTopK, KSkybandTopK, SMATopK], objects, query
    )
    assert outcome.agree, outcome.disagreement


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scores=scores_strategy, params=query_strategy)
def test_results_are_sorted_and_distinct(scores, params):
    query = _valid_query(params)
    objects = make_objects(scores)
    sap = SAPTopK(query)
    for result in sap.run(objects):
        keys = [o.rank_key for o in result]
        assert keys == sorted(keys, reverse=True)
        assert len(set(keys)) == len(keys)
        assert len(result) <= query.k
