"""Property test: a controlled engine without load shedding is exact.

The acceptance property of the control plane: for any stream and any
policy whose tactics are exact (load shedding disabled), an engine run
under the controller produces *byte-identical* answers to an uncontrolled
engine on the same stream — no matter which tactics fire, because every
rebuild replays the live window into an exact algorithm at a slide
boundary.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import AdaptiveController, Policy
from repro.core.query import TopKQuery
from repro.engine import StreamEngine
from repro.streams import DriftingStream

#: An aggressive exact-tactic policy: tiny windows, no cooldown, so that
#: tactics actually fire inside hypothesis-sized streams.
AGGRESSIVE = {
    "cooldown_slides": 0,
    "analysis_interval_slides": 1,
    "analyzers": {
        "candidates": {"factor": 1.5, "window": 10, "min_samples": 20},
        "drift": {"alpha": 0.05, "window": 10},
    },
    "rules": [
        {"when": "score-drift", "tactic": "swap-partitioner", "to": "equal"},
        {"when": "score-drift", "tactic": "swap-algorithm", "to": "MinTopK"},
        {"when": "candidate-blowup", "tactic": "retune-eta", "scale": 2.0},
    ],
}


def answers(engine, subscription):
    return [r.identity() for r in subscription.results()]


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    phase=st.integers(min_value=120, max_value=400),
    n=st.sampled_from([120, 200, 300]),
    k=st.integers(min_value=2, max_value=12),
    algorithm=st.sampled_from(["SAP", "SAP-equal", "SAP-dynamic"]),
)
def test_controlled_engine_is_exact_without_shedding(seed, phase, n, k, algorithm):
    query = TopKQuery(n=n, k=k, s=20)
    stream = DriftingStream(phase=phase, seed=seed).take(6 * phase + n)

    def run(controlled):
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe("q", query, algorithm=algorithm)
        controller = None
        if controlled:
            controller = AdaptiveController(Policy.from_dict(AGGRESSIVE))
            engine.attach_controller(controller)
        engine.push_many(stream)
        engine.flush()
        return answers(engine, subscription), controller

    uncontrolled, _ = run(False)
    controlled, controller = run(True)
    assert controlled == uncontrolled
    # The controller must stay exact by its own accounting, too.
    assert controller.accuracy_report()["exact"] is True


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_multi_query_group_stays_exact_under_control(seed):
    """Shared-plan groups: tactics rebuild every plan member exactly."""
    stream = DriftingStream(phase=200, seed=seed).take(1_600)

    def run(controlled):
        engine = StreamEngine(return_results=False)
        subs = [
            engine.subscribe(f"q{k}", TopKQuery(n=200, k=k, s=20), algorithm="SAP")
            for k in (3, 6, 12)
        ]
        if controlled:
            engine.attach_controller(AdaptiveController(Policy.from_dict(AGGRESSIVE)))
        engine.push_many(stream)
        engine.flush()
        return {s.name: answers(engine, s) for s in subs}

    assert run(True) == run(False)
