"""Property-based tests on the core data structures and statistics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.object import top_k
from repro.savl.savl import SAVL
from repro.stats.dominance import k_skyband, k_skyband_brute_force
from repro.stats.mannwhitney import rank_sum, rank_sum_test
from repro.stats.selection import kth_largest, median, select
from repro.structures.avl import AVLTree

from ..conftest import make_objects


# ----------------------------------------------------------------------
# AVL tree
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=60))))
def test_avl_behaves_like_a_sorted_dict(operations):
    tree = AVLTree()
    mirror = {}
    for insert, key in operations:
        if insert:
            tree.insert(key, key)
            mirror[key] = key
        else:
            assert tree.remove(key) == (key in mirror)
            mirror.pop(key, None)
    tree.check_invariants()
    assert tree.keys() == sorted(mirror)
    if mirror:
        assert tree.min_item()[0] == min(mirror)
        assert tree.max_item()[0] == max(mirror)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), unique=True, min_size=1),
       st.integers(min_value=-1000, max_value=1000))
def test_avl_order_statistics(keys, probe):
    tree = AVLTree()
    for key in keys:
        tree.insert(key)
    assert tree.count_greater(probe) == sum(1 for key in keys if key > probe)
    assert tree.count_less(probe) == sum(1 for key in keys if key < probe)
    ordered = sorted(keys, reverse=True)
    for rank in range(1, len(keys) + 1):
        assert tree.kth_largest(rank)[0] == ordered[rank - 1]


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1),
       st.data())
def test_select_equals_sorting(values, data):
    rank = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    assert select(values, rank) == sorted(values)[rank]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
def test_median_and_kth_largest_consistent(values):
    assert median(values) == sorted(values)[(len(values) - 1) // 2]
    assert kth_largest(values, 1) == max(values)
    assert kth_largest(values, len(values)) == min(values)


# ----------------------------------------------------------------------
# Dominance / k-skyband
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=40).map(float), min_size=1, max_size=60),
       st.integers(min_value=1, max_value=6))
def test_k_skyband_matches_brute_force(scores, k):
    objects = make_objects(scores)
    fast = {o.t for o in k_skyband(objects, k)}
    slow = {o.t for o in k_skyband_brute_force(objects, k)}
    assert fast == slow


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=80),
       st.integers(min_value=1, max_value=6))
def test_k_skyband_contains_topk(scores, k):
    objects = make_objects(scores)
    skyband = {o.t for o in k_skyband(objects, k)}
    assert all(o.t in skyband for o in top_k(objects, k))


# ----------------------------------------------------------------------
# S-AVL
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=80),
       st.integers(min_value=1, max_value=5))
def test_savl_is_a_superset_of_the_local_skyband(scores, k):
    objects = make_objects(scores)
    savl = SAVL.build(objects, num_stacks=k)
    savl.check_invariants()
    stored = {o.rank_key for o in savl.contents()}
    assert {o.rank_key for o in k_skyband(objects, k)} <= stored


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=80),
       st.integers(min_value=1, max_value=5))
def test_savl_pop_best_is_monotone_decreasing(scores, k):
    objects = make_objects(scores)
    savl = SAVL.build(objects, num_stacks=k)
    keys = []
    while True:
        obj = savl.pop_best(0)
        if obj is None:
            break
        keys.append(obj.rank_key)
    assert keys == sorted(keys, reverse=True)


# ----------------------------------------------------------------------
# Mann-Whitney
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=20),
    st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=20),
)
def test_rank_sums_partition_the_total(sample1, sample2):
    r1, r2 = rank_sum(sample1, sample2)
    total = len(sample1) + len(sample2)
    assert abs((r1 + r2) - total * (total + 1) / 2) < 1e-6


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=900, max_value=1000), min_size=11, max_size=20),
    st.lists(st.floats(min_value=0, max_value=10), min_size=11, max_size=30),
)
def test_rank_sum_test_flags_clearly_separated_samples(high, low):
    assert rank_sum_test(high, low).first_is_larger
    assert not rank_sum_test(low, high).first_is_larger
