"""Property tests of the serialization layer's round-trip guarantee.

The contract of :mod:`repro.core.state`: every algorithm's captured state
(a) pickles, (b) crosses a *real* process boundary, and (c) restores to an
engine whose subsequent answers are byte-identical to an uninterrupted
run.  The process-crossing half runs once per registered algorithm (a
forked child restores the payload and finishes the stream); the
hypothesis half explores arbitrary streams, window shapes, and capture
points with in-process pickle round-trips of the same bytes.
"""

import multiprocessing as mp
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import StreamEngine, TopKQuery
from repro.core.state import dumps, loads
from repro.registry import algorithm_names, get_algorithm

from ..conftest import make_objects, random_scores

#: Every score-ordered algorithm must satisfy the round-trip contract.
#: Preference algorithms ("clustered") need a per-user vector and rank
#: attribute payloads, so the plain scored streams here do not apply;
#: their exactness is covered by tests/property/test_property_clustering.py.
ALL_ALGORITHMS = tuple(
    name for name in algorithm_names() if not get_algorithm(name).example_options
)

QUERY = TopKQuery(n=60, k=5, s=10)


def _identical(left, right):
    if len(left) != len(right):
        return False
    return all(
        a.slide_index == b.slide_index
        and a.window_end == b.window_end
        and a.identity() == b.identity()
        for a, b in zip(left, right)
    )


def _uninterrupted(algorithm_name, query, objects):
    engine = StreamEngine()
    engine.subscribe("watch", query, algorithm=algorithm_name)
    engine.push_many(objects)
    return engine.results("watch")


def _resume_in_child(payload, tail, connection):
    """Child-process half of the boundary crossing: restore and finish."""
    engine = StreamEngine()
    subscription = engine.restore_subscription(payload)
    engine.push_many(tail)
    connection.send(pickle.dumps(engine.results(subscription.name)))
    connection.close()


@pytest.mark.parametrize("algorithm_name", ALL_ALGORITHMS)
def test_state_crosses_a_process_boundary(algorithm_name):
    """Capture mid-stream, restore in a forked child, compare everything."""
    objects = make_objects(random_scores(300, seed=11))
    expected = _uninterrupted(algorithm_name, QUERY, objects)

    engine = StreamEngine()
    engine.subscribe("watch", QUERY, algorithm=algorithm_name)
    engine.push_many(objects[:150], chunk_size=50)
    payload = dumps(engine.capture_subscription("watch"))

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else methods[0])
    parent, child = ctx.Pipe()
    process = ctx.Process(
        target=_resume_in_child, args=(payload, objects[150:], child)
    )
    process.start()
    try:
        got = pickle.loads(parent.recv())
    finally:
        process.join(timeout=30)
    assert process.exitcode == 0
    assert _identical(got, expected)


@pytest.mark.parametrize("algorithm_name", ALL_ALGORITHMS)
@given(
    data=st.data(),
    scores=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
        min_size=30,
        max_size=120,
    ),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_pickled_state_restores_byte_identical(algorithm_name, data, scores):
    """For arbitrary streams/shapes/capture points: dumps → loads → resume
    produces the uninterrupted result sequence, and retained answers plus
    the delivery counter survive the round trip."""
    n = data.draw(st.integers(min_value=5, max_value=25), label="n")
    s = data.draw(st.integers(min_value=1, max_value=n), label="s")
    k = data.draw(st.integers(min_value=1, max_value=n), label="k")
    query = TopKQuery(n=n, k=k, s=s)
    objects = make_objects(scores)
    # Cut at an exact slide boundary: the fill point plus a whole number
    # of slides (or before any push at all, when the stream is too short).
    if len(objects) < n:
        cut = 0
    else:
        max_extra = (len(objects) - n) // s
        extra_slides = data.draw(
            st.integers(min_value=0, max_value=max_extra), label="slides"
        )
        cut = n + extra_slides * s

    expected = _uninterrupted(algorithm_name, query, objects)

    engine = StreamEngine()
    engine.subscribe("watch", query, algorithm=algorithm_name)
    engine.push_many(objects[:cut], chunk_size=max(1, cut))
    state = loads(dumps(engine.capture_subscription("watch")))

    resumed = StreamEngine()
    subscription = resumed.restore_subscription(state)
    assert subscription.results_delivered == engine.subscription("watch").results_delivered
    if objects[cut:]:
        resumed.push_many(objects[cut:])
    assert _identical(resumed.results("watch"), expected)
