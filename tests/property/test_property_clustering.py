"""Property-based exactness of the preference-clustering plane.

The acceptance property of the cross-function sharing tentpole: for
*any* cluster of preference vectors, any attribute stream, and any
window shape, a member answered through the padded-k shared plan is
byte-identical to an independent engine fed the stream pre-scored with
that member's own vector — whenever the exactness guard holds the
answer came from the shared candidate re-rank, and when it does not the
fallback scan restores exactness, so the equality holds *unconditionally*
(the counters just say which path paid for it).  Checked over both
shipped inner cores (SAP and MinTopK), including mid-stream vector
drift past the cluster envelope.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import StreamEngine, TopKQuery
from repro.core.clustering import linear_scores
from repro.core.object import StreamObject

INNER_CORES = ("SAP", "MinTopK")

DIM = 3

attribute_stream = st.lists(
    st.tuples(
        *[
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
            for _ in range(DIM)
        ]
    ),
    min_size=40,
    max_size=110,
)

#: A cluster of similar tastes: one base direction, small member bumps.
cluster_vectors = st.tuples(
    st.tuples(
        *[st.floats(min_value=0.1, max_value=2.0, allow_nan=False) for _ in range(DIM)]
    ),
    st.lists(
        st.tuples(
            *[
                st.floats(min_value=0.8, max_value=1.2, allow_nan=False)
                for _ in range(DIM)
            ]
        ),
        min_size=2,
        max_size=4,
    ),
).map(
    lambda base_bumps: [
        tuple(w * b for w, b in zip(base_bumps[0], bumps))
        for bumps in base_bumps[1]
    ]
)

shape_strategy = st.tuples(
    st.integers(min_value=6, max_value=24),  # n
    st.integers(min_value=1, max_value=8),   # s
    st.integers(min_value=1, max_value=6),   # k
)


def _attribute_objects(rows, start_t=0):
    return [
        StreamObject(score=0.0, t=start_t + index, payload={"attributes": list(row)})
        for index, row in enumerate(rows)
    ]


def _prescored_objects(vector, rows, start_t=0):
    """The independent-engine view: the stream scored with one vector."""
    scores = linear_scores(vector, [tuple(row) for row in rows])
    return [
        StreamObject(score=score, t=start_t + index, payload={"attributes": list(row)})
        for index, (row, score) in enumerate(zip(rows, scores))
    ]


def _identical(left, right):
    if len(left) != len(right):
        return False
    return all(
        a.slide_index == b.slide_index
        and a.window_end == b.window_end
        and a.identity() == b.identity()
        for a, b in zip(left, right)
    )


def _reference_results(vector, rows, query, inner):
    engine = StreamEngine()
    engine.subscribe("solo", query, algorithm=inner)
    engine.push_many(_prescored_objects(vector, rows))
    results = engine.results("solo")
    engine.close()
    return results


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rows=attribute_stream, vectors=cluster_vectors, shape=shape_strategy)
def test_clustered_members_equal_independent_engines(rows, vectors, shape):
    n, s, k = shape
    s = min(s, n)
    query = TopKQuery(n=n, k=min(k, n), s=s)

    for inner in INNER_CORES:
        engine = StreamEngine()
        for index, vector in enumerate(vectors):
            # Pinned cluster id: the property is about the shared plan's
            # exactness, not the assignment heuristic.
            engine.subscribe_preference(
                f"m{index}", query, vector, algorithm=inner, cluster_id=0
            )
        engine.push_many(_attribute_objects(rows))

        # The members really did share one cluster plan.
        plans = [plan for group in engine.groups() for plan in group["plans"]]
        assert [plan["kind"] for plan in plans] == ["cluster"], plans
        assert plans[0]["inner"] == inner

        for index, vector in enumerate(vectors):
            assert _identical(
                engine.results(f"m{index}"),
                _reference_results(vector, rows, query, inner),
            ), (inner, index, vector)
        engine.close()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rows=attribute_stream,
    vectors=cluster_vectors,
    shape=shape_strategy,
    scale=st.floats(min_value=2.0, max_value=5.0, allow_nan=False),
    split=st.floats(min_value=0.2, max_value=0.8),
)
def test_drifted_member_falls_back_exactly(rows, vectors, shape, scale, split):
    """A mid-stream update past the envelope stays exact via the scan.

    The drifted member's expected output is the old vector's reference
    up to the update boundary and the new vector's reference after it —
    slide boundaries are deterministic, so the two reference runs line
    up by slide index.
    """
    n, s, k = shape
    s = min(s, n)
    query = TopKQuery(n=n, k=min(k, n), s=s)
    cut = max(1, int(len(rows) * split))
    # Scaling one member far above the others guarantees the new vector
    # escapes the envelope (elementwise max of the originals).
    drifted_vector = tuple(w * scale for w in vectors[0])

    for inner in INNER_CORES:
        engine = StreamEngine()
        for index, vector in enumerate(vectors):
            engine.subscribe_preference(
                f"m{index}", query, vector, algorithm=inner, cluster_id=0
            )
        objects = _attribute_objects(rows)
        engine.push_many(objects[:cut])
        results_before = len(engine.results("m0"))
        record = engine.update_preference("m0", drifted_vector)
        assert record["drifted"], record
        assert record["mode"] == "drifted"
        engine.push_many(objects[cut:])

        old_reference = _reference_results(vectors[0], rows, query, inner)
        new_reference = _reference_results(drifted_vector, rows, query, inner)
        expected = old_reference[:results_before] + new_reference[results_before:]
        assert _identical(engine.results("m0"), expected), (inner, results_before)

        # The divergence is *counted*, not silent: once drifted, every
        # answer of that member is a fallback.
        plans = [plan for group in engine.groups() for plan in group["plans"]]
        answers_after = len(engine.results("m0")) - results_before
        if answers_after:
            assert plans[0]["fallbacks"] >= answers_after

        # The other members stay exact through the shared plan.
        for index, vector in enumerate(vectors[1:], start=1):
            assert _identical(
                engine.results(f"m{index}"),
                _reference_results(vector, rows, query, inner),
            ), (inner, index)
        engine.close()
