"""Property-based tests for the sliding-window substrate and MinTopK's
window-membership arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mintopk import MinTopK
from repro.core.query import TopKQuery
from repro.core.window import SlideBatcher, count_based_slides

from ..conftest import make_objects


window_params = st.tuples(
    st.integers(min_value=2, max_value=40),   # n
    st.integers(min_value=1, max_value=15),   # s
    st.integers(min_value=0, max_value=120),  # extra objects beyond n
)


@settings(max_examples=120, deadline=None)
@given(params=window_params)
def test_count_based_slides_partition_the_stream(params):
    n, s, extra = params
    s = min(s, n)
    query = TopKQuery(n=n, k=1, s=s)
    objects = make_objects(range(n + extra))
    events = list(count_based_slides(objects, query))

    # Exactly one event per full slide after the window fills.
    assert len(events) == 1 + extra // s

    live = []
    arrived = set()
    for event in events:
        for obj in event.expirations:
            assert obj.t in arrived, "expired objects must have arrived before"
        expired_ids = {o.t for o in event.expirations}
        live = [o for o in live if o.t not in expired_ids] + list(event.arrivals)
        arrived.update(o.t for o in event.arrivals)
        # The live set is always exactly the last n arrived objects.
        assert len(live) == n
        assert [o.t for o in live] == list(range(live[0].t, live[0].t + n))


@settings(max_examples=120, deadline=None)
@given(params=window_params)
def test_slide_batcher_equivalent_to_generator(params):
    n, s, extra = params
    s = min(s, n)
    query = TopKQuery(n=n, k=1, s=s)
    objects = make_objects(range(n + extra))

    generated = list(count_based_slides(objects, query))
    batcher = SlideBatcher(query)
    incremental = []
    for obj in objects:
        incremental.extend(batcher.push(obj))
    incremental.extend(batcher.flush())

    assert len(generated) == len(incremental)
    for a, b in zip(generated, incremental):
        assert [o.t for o in a.arrivals] == [o.t for o in b.arrivals]
        assert [o.t for o in a.expirations] == [o.t for o in b.expirations]


@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=50),
    s=st.integers(min_value=1, max_value=20),
    t=st.integers(min_value=0, max_value=500),
)
def test_mintopk_window_membership_matches_definition(n, s, t):
    s = min(s, n)
    query = TopKQuery(n=n, k=1, s=s)
    algorithm = MinTopK(query)
    member_windows = set(algorithm._windows_of(t))
    # Window i covers arrival orders [i*s, i*s + n - 1].
    for window_index in range(0, t // s + 2):
        covered = window_index * s <= t <= window_index * s + n - 1
        assert (window_index in member_windows) == covered
