"""Property-based tests of the columnar data plane.

The :class:`~repro.core.columnar.SlideBlock` round trip is the exactness
foundation of the zero-copy transport: whatever objects go in — NaN and
infinite scores, empty slides, payload-bearing and payload-free batches —
the same objects must come back out, bit for bit, under both the numpy
and the stdlib backend.  The vectorized ordering helpers must likewise be
indistinguishable from the per-object ``top_k``.
"""

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import (
    BACKENDS,
    BlockPackError,
    SlideBlock,
    decode_chunk,
    encode_chunk,
    topk_objects,
)
from repro.core.object import StreamObject, top_k

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into the image
    HAVE_NUMPY = False

#: Backends actually runnable in this environment.
RUNNABLE_BACKENDS = [b for b in BACKENDS if b != "numpy" or HAVE_NUMPY]

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: float64 scores including NaN, the infinities, and subnormals.
scores_strategy = st.floats(width=64, allow_nan=True, allow_infinity=True)

payload_strategy = st.one_of(
    st.none(),
    st.text(max_size=8),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
)


@st.composite
def stream_objects(draw, max_size=40):
    """A batch of stream objects with unique int64 arrival orders and a
    random mix of absent/present timestamps and payloads."""
    count = draw(st.integers(min_value=0, max_value=max_size))
    ts = draw(
        st.lists(
            st.integers(min_value=_INT64_MIN, max_value=_INT64_MAX),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    objects = []
    for t in ts:
        objects.append(
            StreamObject(
                score=draw(scores_strategy),
                t=t,
                payload=draw(payload_strategy),
                timestamp=draw(
                    st.one_of(
                        st.none(),
                        st.integers(min_value=_INT64_MIN, max_value=_INT64_MAX),
                    )
                ),
            )
        )
    return objects


def same_object(left: StreamObject, right: StreamObject) -> bool:
    """Bit-exact equality, treating NaN scores as equal to themselves."""
    scores_equal = (
        left.score == right.score
        or (
            isinstance(left.score, float)
            and isinstance(right.score, float)
            and math.isnan(left.score)
            and math.isnan(right.score)
        )
    )
    return (
        scores_equal
        and left.t == right.t
        and left.payload == right.payload
        and left.timestamp == right.timestamp
    )


def assert_same_objects(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert same_object(a, b), f"{a} != {b}"


@pytest.mark.parametrize("backend", RUNNABLE_BACKENDS)
@settings(max_examples=120, deadline=None)
@given(objects=stream_objects())
def test_block_roundtrip(backend, objects):
    """from_objects -> to_objects is the identity, on either backend."""
    block = SlideBlock.from_objects(objects, backend=backend)
    assert len(block) == len(objects)
    assert_same_objects(block.to_objects(), objects)


@pytest.mark.parametrize("backend", RUNNABLE_BACKENDS)
@settings(max_examples=100, deadline=None)
@given(objects=stream_objects())
def test_wire_roundtrip(backend, objects):
    """to_bytes -> from_bytes is the identity; the payload flag only
    appears when at least one object actually carries a payload."""
    block = SlideBlock.from_objects(objects, backend=backend)
    data = block.to_bytes()
    if all(obj.payload is None for obj in objects):
        assert block.payloads is None  # payloads ride out-of-band only when present
    for decode_backend in RUNNABLE_BACKENDS:
        decoded = SlideBlock.from_bytes(data, backend=decode_backend)
        assert_same_objects(decoded.to_objects(), objects)


@pytest.mark.parametrize("backend", RUNNABLE_BACKENDS)
@settings(max_examples=100, deadline=None)
@given(objects=stream_objects())
def test_chunk_codec_roundtrip(backend, objects):
    data = encode_chunk(objects, backend=backend)
    decoded, block = decode_chunk(data)
    assert_same_objects(decoded, objects)
    assert block is not None  # packable inputs take the columnar format


@settings(max_examples=60, deadline=None)
@given(objects=stream_objects(max_size=20), data=st.data())
def test_slice_matches_object_slice(objects, data):
    block = SlideBlock.from_objects(objects)
    start = data.draw(st.integers(min_value=0, max_value=len(objects)))
    stop = data.draw(st.integers(min_value=start, max_value=len(objects)))
    assert_same_objects(block.slice(start, stop).to_objects(), objects[start:stop])


def test_empty_block_roundtrips():
    for backend in RUNNABLE_BACKENDS:
        block = SlideBlock.from_objects([], backend=backend)
        assert len(block) == 0
        assert block.to_objects() == []
        decoded, wire_block = decode_chunk(encode_chunk([], backend=backend))
        assert decoded == []
        assert wire_block is not None


def test_unpackable_chunks_take_the_pickle_fallback():
    """Objects the columns cannot represent still round-trip — through the
    whole-chunk pickle format, signalled by ``block is None``."""
    beyond_int64 = [StreamObject(score=1.0, t=2**63)]
    from fractions import Fraction

    lossy_score = [StreamObject(score=Fraction(1, 3), t=0)]
    for objects in (beyond_int64, lossy_score):
        with pytest.raises(BlockPackError):
            SlideBlock.from_objects(objects)
        decoded, block = decode_chunk(encode_chunk(objects))
        assert block is None
        assert decoded[0].t == objects[0].t
        assert decoded[0].score == objects[0].score


@settings(max_examples=120, deadline=None)
@given(
    scores=st.lists(
        st.floats(width=64, allow_nan=True, allow_infinity=True),
        min_size=0,
        max_size=80,
    ),
    k=st.integers(min_value=0, max_value=20),
)
def test_topk_objects_matches_per_object_sort(scores, k):
    """The vectorized top-k realises the library's total order exactly —
    including the NaN fallback, duplicate scores broken by arrival order,
    and k past the input size."""
    objects = [StreamObject(score=s, t=i) for i, s in enumerate(scores)]
    assert topk_objects(objects, k) == top_k(objects, k)


@pytest.mark.parametrize("backend", RUNNABLE_BACKENDS)
def test_nan_and_inf_bit_patterns_survive_the_wire(backend):
    values = [float("nan"), float("inf"), float("-inf"), -0.0, 5e-324]
    objects = [StreamObject(score=v, t=i) for i, v in enumerate(values)]
    data = encode_chunk(objects, backend=backend)
    decoded, _ = decode_chunk(data)
    assert [pickle.dumps(o.score) for o in decoded] == [
        pickle.dumps(o.score) for o in objects
    ]
