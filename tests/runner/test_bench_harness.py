"""Unit tests for the benchmark harness (workloads, experiments, reporting)."""

import json
import os

import pytest

from repro.bench.experiments import (
    ALGORITHM_FACTORIES,
    PARTITIONER_FACTORIES,
    equal_partition_sweep,
    measure_algorithms,
    measure_one,
    partitioner_comparison,
    sweep_parameter,
)
from repro.bench.reporting import format_table, write_results
from repro.bench.workloads import (
    ALL_DATASETS,
    FULL_SCALE,
    QUICK_SCALE,
    BenchScale,
    dataset_stream,
    scale_from_env,
)
from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery

#: A deliberately tiny scale so harness tests finish in milliseconds.
TINY = BenchScale(
    name="tiny",
    stream_length=400,
    default_n=80,
    default_k=4,
    default_s=8,
    n_values=(40, 80),
    k_values=(2, 4),
    s_values=(8, 16),
    m_values=(1, 3),
    highspeed_n=120,
    highspeed_k=12,
    highspeed_s=40,
)


class TestWorkloads:
    def test_scale_from_env_defaults_to_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert scale_from_env() is QUICK_SCALE

    def test_scale_from_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert scale_from_env() is FULL_SCALE

    def test_dataset_stream_cached_and_correct_length(self):
        first = dataset_stream("TIMEU", 300)
        second = dataset_stream("TIMEU", 300)
        assert len(first) == 300
        assert [o.t for o in first] == [o.t for o in second]

    def test_all_datasets_constant(self):
        assert set(ALL_DATASETS) == {"STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"}

    def test_default_query_params(self):
        assert TINY.default_query_params() == (80, 4, 8)


class TestExperiments:
    def test_measure_one_is_memoised(self):
        query = TopKQuery(n=TINY.default_n, k=TINY.default_k, s=TINY.default_s)
        first = measure_one("TIMEU", query, "SAP", SAPTopK, TINY.stream_length)
        second = measure_one("TIMEU", query, "SAP", SAPTopK, TINY.stream_length)
        assert first == second
        assert first["slides"] > 0

    def test_measure_algorithms_returns_all_metrics(self):
        query = TopKQuery(n=TINY.default_n, k=TINY.default_k, s=TINY.default_s)
        measurements = measure_algorithms(
            "TIMEU", query, ALGORITHM_FACTORIES, TINY.stream_length
        )
        assert set(measurements) == set(ALGORITHM_FACTORIES)
        for metrics in measurements.values():
            assert {"seconds", "candidates", "memory_kb", "slides"} <= set(metrics)

    def test_sweep_parameter_rows(self):
        rows = sweep_parameter("TIMEU", TINY, "n", TINY.n_values, ALGORITHM_FACTORIES)
        assert len(rows) == len(TINY.n_values) * len(ALGORITHM_FACTORIES)
        assert {row["value"] for row in rows} == set(TINY.n_values)

    def test_sweep_parameter_rejects_unknown_parameter(self):
        with pytest.raises(ValueError):
            sweep_parameter("TIMEU", TINY, "q", (1,), ALGORITHM_FACTORIES)

    def test_equal_partition_sweep_covers_variants(self):
        rows = equal_partition_sweep("TIMEU", TINY, m_values=(1, 2))
        assert {row["variant"] for row in rows} == {"non-delay", "Algo1", "Algo1+S-AVL"}
        assert {row["m"] for row in rows} == {1, 2}

    def test_partitioner_comparison_covers_partitioners(self):
        rows = partitioner_comparison("TIMEU", TINY, "k", TINY.k_values)
        assert {row["algorithm"] for row in rows} == set(PARTITIONER_FACTORIES)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table("Title", ["a", "bbbb"], [[1, 2.34567], [10, 0.5]])
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bbbb" in lines[2]
        assert "2.3457" in table  # default float format

    def test_format_table_empty_rows(self):
        table = format_table("Empty", ["col"], [])
        assert "Empty" in table and "col" in table

    def test_write_results_creates_files(self, tmp_path):
        path = write_results(
            "unit_test_table", "hello", raw={"rows": [1, 2]}, directory=str(tmp_path)
        )
        assert os.path.exists(path)
        with open(os.path.join(tmp_path, "unit_test_table.json")) as handle:
            assert json.load(handle) == {"rows": [1, 2]}

    def test_write_results_tolerates_unwritable_directory(self):
        path = write_results("x", "y", directory="/proc/definitely/not/writable")
        assert path == ""
