"""Unit tests for the cross-algorithm comparison helper."""

from repro.baselines.brute_force import BruteForceTopK
from repro.baselines.kskyband import KSkybandTopK
from repro.core.framework import SAPTopK
from repro.core.interface import ContinuousTopKAlgorithm
from repro.core.query import TopKQuery
from repro.core.result import TopKResult
from repro.runner.comparison import compare_algorithms

from ..conftest import make_objects, random_scores


class _DeliberatelyWrong(ContinuousTopKAlgorithm):
    """Returns the bottom-k instead of the top-k (for negative testing)."""

    name = "wrong"

    def __init__(self, query):
        super().__init__(query)
        self._window = []

    def process_slide(self, event):
        expired = {o.t for o in event.expirations}
        self._window = [o for o in self._window if o.t not in expired]
        self._window.extend(event.arrivals)
        worst = sorted(self._window, key=lambda o: o.rank_key)[: self.query.k]
        return TopKResult.from_objects(event.index, event.window_end, worst)


class TestCompareAlgorithms:
    def test_exact_algorithms_agree(self):
        query = TopKQuery(n=60, k=4, s=6)
        objects = make_objects(random_scores(360, seed=1))
        outcome = compare_algorithms(
            [BruteForceTopK, SAPTopK, KSkybandTopK], objects, query
        )
        assert outcome.agree
        assert outcome.disagreement is None
        assert set(outcome.names()) == {"brute-force", "SAP[enhanced-dynamic]", "k-skyband"}

    def test_detects_disagreement(self):
        query = TopKQuery(n=60, k=4, s=6)
        objects = make_objects(random_scores(360, seed=2))
        outcome = compare_algorithms([BruteForceTopK, _DeliberatelyWrong], objects, query)
        assert not outcome.agree
        assert "wrong" in outcome.disagreement

    def test_without_results_no_agreement_check(self):
        query = TopKQuery(n=60, k=4, s=6)
        objects = make_objects(random_scores(360, seed=3))
        outcome = compare_algorithms(
            [BruteForceTopK, _DeliberatelyWrong], objects, query, keep_results=False
        )
        assert outcome.agree  # nothing to compare
        assert outcome.report("brute-force").results == []

    def test_single_algorithm(self):
        query = TopKQuery(n=60, k=4, s=6)
        objects = make_objects(random_scores(200, seed=4))
        outcome = compare_algorithms([BruteForceTopK], objects, query)
        assert outcome.agree and len(outcome.names()) == 1


class TestDuplicateDisplayNames:
    def test_same_named_configurations_both_reported_and_checked(self):
        query = TopKQuery(n=60, k=4, s=6)
        objects = make_objects(random_scores(240, seed=5))

        def same(q):
            return SAPTopK(q)

        outcome = compare_algorithms([same, same], objects, query)
        # Both runs keep their own report (the second gets a "#2" suffix),
        # so the agreement check actually compares them.
        assert len(outcome.names()) == 2
        assert outcome.agree

    def test_duplicate_wrong_algorithm_detected(self):
        query = TopKQuery(n=60, k=4, s=6)
        objects = make_objects(random_scores(240, seed=6))
        outcome = compare_algorithms(
            [_DeliberatelyWrong, _DeliberatelyWrong, SAPTopK], objects, query
        )
        assert not outcome.agree
