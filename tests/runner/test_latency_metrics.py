"""Unit tests for the per-slide latency metrics."""

import pytest

from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery
from repro.runner.engine import run_algorithm
from repro.runner.metrics import MetricsCollector, percentile

from ..conftest import make_objects, random_scores


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencyCollection:
    def test_collector_tracks_latency_distribution(self):
        metrics = MetricsCollector()
        for latency in [0.001, 0.002, 0.010]:
            metrics.record(candidate_count=1, memory_bytes=1, latency_seconds=latency)
        assert metrics.median_latency == 0.002
        assert metrics.max_latency == 0.010
        assert metrics.p95_latency <= metrics.max_latency

    def test_latency_optional(self):
        metrics = MetricsCollector()
        metrics.record(candidate_count=1, memory_bytes=1)
        assert metrics.latencies == []
        assert metrics.median_latency == 0.0
        assert metrics.max_latency == 0.0

    def test_run_algorithm_records_one_latency_per_slide(self):
        query = TopKQuery(n=60, k=3, s=6)
        objects = make_objects(random_scores(300, seed=1))
        report = run_algorithm(SAPTopK(query), objects)
        assert len(report.metrics.latencies) == report.slides
        assert all(latency >= 0.0 for latency in report.metrics.latencies)
        assert sum(report.metrics.latencies) <= report.elapsed_seconds + 1e-6
        assert report.metrics.p95_latency >= report.metrics.median_latency


class TestBoundedLatencySample:
    def test_sample_is_decimated_but_totals_stay_exact(self):
        from repro.core.metrics import LATENCY_SAMPLE_CAP

        metrics = MetricsCollector()
        count = 3 * LATENCY_SAMPLE_CAP
        for i in range(count):
            metrics.record(candidate_count=1, memory_bytes=1, latency_seconds=1.0)
        # The retained sample stays bounded on unbounded streams ...
        assert len(metrics.latencies) < LATENCY_SAMPLE_CAP
        # ... while totals and maxima remain exact.
        assert metrics.latency_total == pytest.approx(float(count))
        assert metrics.max_latency == 1.0
        assert metrics.median_latency == 1.0
