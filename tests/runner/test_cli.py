"""Unit tests for the command-line interface."""

import pytest

from repro.cli import CLI_ALGORITHMS, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.algorithm == "SAP"
        assert args.dataset == "TIMEU"

    def test_compare_algorithm_list(self):
        args = build_parser().parse_args(
            ["compare", "--algorithms", "SAP", "MinTopK", "--k", "5"]
        )
        assert args.algorithms == ["SAP", "MinTopK"]
        assert args.k == 5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_registered_algorithm_has_a_factory(self):
        from repro.core.query import TopKQuery
        from repro.registry import get_algorithm

        query = TopKQuery(n=50, k=3, s=5)
        for name, factory in CLI_ALGORITHMS.items():
            # Entries with required options ("clustered" needs vector=...)
            # build through their registry example options.
            algorithm = factory(query, **get_algorithm(name).example_options)
            assert algorithm.query is query, name


class TestCommands:
    def test_run_command_prints_summary(self, capsys):
        exit_code = main(
            ["run", "--dataset", "TIMEU", "--objects", "600", "--n", "100", "--k", "5",
             "--s", "20", "--algorithm", "SAP"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "top-5 over a count-based window of 100" in captured
        assert "final window top-5 scores" in captured

    def test_run_command_other_algorithm(self, capsys):
        exit_code = main(
            ["run", "--dataset", "STOCK", "--objects", "500", "--n", "100", "--k", "3",
             "--s", "25", "--algorithm", "MinTopK"]
        )
        assert exit_code == 0
        assert "MinTopK" in capsys.readouterr().out

    def test_compare_command_agreement(self, capsys):
        exit_code = main(
            ["compare", "--dataset", "TIMER", "--objects", "800", "--n", "150", "--k", "5",
             "--s", "30", "--algorithms", "SAP", "MinTopK", "k-skyband"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "agreement : True" in captured
        assert "MinTopK" in captured and "k-skyband" in captured

    def test_multi_command_reports_shared_plan(self, capsys):
        exit_code = main(
            ["multi", "--dataset", "STOCK", "--objects", "900", "--n", "150",
             "--s", "30", "--k", "3", "6", "9", "--algorithm", "SAP"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "SAP at k_max=9 shared by 3 queries" in captured
        assert "top-3" in captured and "top-9" in captured

    def test_multi_command_baseline_speedup(self, capsys):
        exit_code = main(
            ["multi", "--dataset", "TIMEU", "--objects", "600", "--n", "100",
             "--s", "20", "--k", "2", "5", "--algorithm", "k-skyband", "--baseline"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "k-skyband at k_max=5 shared by 2 queries" in captured
        assert "speedup from sharing" in captured

    def test_multi_command_deduplicates_clamped_k(self, capsys):
        # Both --k values clamp to n=20: the subscriptions must still get
        # unique names instead of crashing on a duplicate.
        exit_code = main(
            ["multi", "--dataset", "TIMEU", "--objects", "200", "--n", "20",
             "--s", "10", "--k", "30", "40"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "top-20" in captured and "top-20#2" in captured

    def test_multi_parser_defaults(self):
        args = build_parser().parse_args(["multi"])
        assert args.command == "multi"
        assert args.k == [5, 10, 20, 50]
        assert args.algorithm == "SAP"
        assert not args.baseline


class TestShardCommand:
    def test_shard_parser_defaults(self):
        args = build_parser().parse_args(["shard"])
        assert args.command == "shard"
        assert args.shards == 4
        assert args.queries == 8
        assert args.placement == "least-loaded"
        assert not args.baseline

    def test_shard_command_runs_small_cluster(self, capsys):
        exit_code = main(
            ["shard", "--dataset", "STOCK", "--objects", "800", "--n", "100",
             "--s", "20", "--k", "3", "6", "--shards", "2", "--queries", "4",
             "--baseline"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "4 queries on 2 shards" in captured
        assert "shard 0" in captured and "shard 1" in captured
        assert "merged from" in captured
        assert "speedup from 2 shards" in captured

    def test_shard_command_least_loaded_placement(self, capsys):
        exit_code = main(
            ["shard", "--dataset", "TIMEU", "--objects", "400", "--n", "50",
             "--s", "10", "--k", "3", "--shards", "2", "--queries", "2",
             "--placement", "least-loaded"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "least-loaded placement" in captured


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.engine == "local"
        assert args.shards == 2
        assert args.max_subscriptions == 1024
        assert args.client_queue == 256
        assert args.slow_client == "drop-oldest"
        assert args.dedupe_window == 65_536
        assert args.linger_ms == 50

    def test_serve_rejects_unknown_policy_and_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--slow-client", "drop-newest"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--engine", "distributed"])


class TestVersion:
    def test_version_flag_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["--version"])
        assert exit_info.value.code == 0
        printed = capsys.readouterr().out.strip()
        from repro.cli import package_version

        assert printed == f"repro {package_version()}"

    def test_package_version_matches_source_tree(self):
        # Installed or not, the reported version must agree with the
        # package's own __version__ (pyproject and source are kept equal).
        import repro
        from repro.cli import package_version

        assert package_version() == repro.__version__


class TestGeneratedDocstring:
    def test_docstring_lists_every_registered_command(self):
        import repro.cli as cli

        doc = cli.__doc__
        assert f"{len(cli.COMMANDS)} subcommands are provided" in doc
        for command in cli.COMMANDS:
            assert f"``{command.name}``" in doc

    def test_docstring_matches_parser_surface(self):
        import repro.cli as cli

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, __import__("argparse")._SubParsersAction)
        )
        assert sorted(subparsers.choices) == sorted(c.name for c in cli.COMMANDS)


class TestObservabilityCommands:
    def test_top_parser_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.url.endswith("/metrics.json")
        assert args.interval == 1.0
        assert args.iterations is None

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.shards == 2
        assert args.output == "trace.json"

    def test_top_command_renders_frames(self, capsys, monkeypatch):
        documents = iter(
            [
                {"ts": 1000.0, "metrics": []},
                {"ts": 1001.0, "metrics": []},
            ]
        )
        monkeypatch.setattr(
            "repro.obs.top.fetch_snapshot", lambda url, timeout=5.0: next(documents)
        )
        code = main(
            ["top", "--iterations", "2", "--interval", "0", "--no-color"]
        )
        assert code == 0
        assert capsys.readouterr().out.count("repro top") == 2

    def test_top_command_fails_cleanly_when_unreachable(self, capsys):
        code = main(
            ["top", "--url", "http://127.0.0.1:9/metrics.json", "--iterations", "1"]
        )
        assert code == 1
        assert "cannot reach" in capsys.readouterr().out

    def test_trace_command_writes_chrome_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--objects", "2000",
                "--n", "200",
                "--s", "20",
                "--queries", "2",
                "--shards", "2",
                "-o", str(path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "spans" in printed
        document = json.loads(path.read_text())
        stages = {
            event["cat"] for event in document["traceEvents"] if event["ph"] == "X"
        }
        assert {"encode", "send", "decode", "push", "deliver"} <= stages
