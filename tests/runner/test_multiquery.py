"""Unit tests for the shared-stream multi-query engine."""

import pytest

from repro.baselines.brute_force import BruteForceTopK
from repro.baselines.mintopk import MinTopK
from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery
from repro.core.result import results_agree
from repro.runner.engine import run_algorithm
from repro.runner.multiquery import MultiQueryEngine

from ..conftest import make_objects, random_scores

# The class is deprecated (see TestDeprecation); the behavioural tests
# below silence the construction warning they necessarily trigger.
pytestmark = pytest.mark.filterwarnings(
    "ignore:MultiQueryEngine is deprecated:DeprecationWarning"
)


class TestDeprecation:
    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_construction_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="MultiQueryEngine is deprecated"):
            MultiQueryEngine()

    @pytest.mark.filterwarnings("error::DeprecationWarning")
    def test_warning_names_the_replacement(self):
        with pytest.warns(DeprecationWarning, match="StreamEngine"):
            MultiQueryEngine(keep_results=False)


class TestRegistration:
    def test_duplicate_names_rejected(self):
        engine = MultiQueryEngine()
        engine.register("q1", SAPTopK(TopKQuery(n=50, k=3, s=5)))
        with pytest.raises(ValueError):
            engine.register("q1", SAPTopK(TopKQuery(n=60, k=3, s=5)))

    def test_push_without_queries_rejected(self):
        with pytest.raises(ValueError):
            MultiQueryEngine().push(make_objects([1])[0])

    def test_names_and_algorithm_access(self):
        engine = MultiQueryEngine()
        algorithm = SAPTopK(TopKQuery(n=50, k=3, s=5))
        engine.register("mine", algorithm)
        assert engine.names() == ["mine"]
        assert engine.algorithm("mine") is algorithm


class TestSharedStreamExecution:
    def test_each_query_matches_standalone_run(self):
        objects = make_objects(random_scores(500, seed=3))
        queries = {
            "small": TopKQuery(n=60, k=3, s=6),
            "large": TopKQuery(n=200, k=10, s=20),
            "tumbling": TopKQuery(n=100, k=5, s=100),
        }
        engine = MultiQueryEngine()
        for name, query in queries.items():
            engine.register(name, SAPTopK(query))
        combined = engine.run(objects)

        for name, query in queries.items():
            standalone = run_algorithm(SAPTopK(query), objects).results
            assert results_agree(combined[name], standalone), name

    def test_mixed_algorithms_agree_with_each_other(self):
        objects = make_objects(random_scores(400, seed=4))
        query = TopKQuery(n=80, k=4, s=8)
        engine = MultiQueryEngine()
        engine.register("sap", SAPTopK(query))
        engine.register("mintopk", MinTopK(query))
        engine.register("oracle", BruteForceTopK(query))
        combined = engine.run(objects)
        assert results_agree(combined["sap"], combined["oracle"])
        assert results_agree(combined["mintopk"], combined["oracle"])

    def test_push_reports_results_when_windows_complete(self):
        query = TopKQuery(n=10, k=2, s=5)
        engine = MultiQueryEngine()
        engine.register("q", SAPTopK(query))
        produced_at = []
        for obj in make_objects(range(25)):
            produced = engine.push(obj)
            if produced:
                produced_at.append(obj.t)
        # First answer when the window fills (t=9), then every 5 objects.
        assert produced_at == [9, 14, 19, 24]

    def test_results_accessor(self):
        query = TopKQuery(n=20, k=2, s=10)
        engine = MultiQueryEngine()
        engine.register("q", SAPTopK(query))
        engine.run(make_objects(random_scores(100, seed=5)))
        assert len(engine.results("q")) == 1 + (100 - 20) // 10
