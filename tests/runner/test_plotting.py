"""Unit tests for the text chart rendering used by the figure benchmarks."""

from repro.bench.plotting import render_series_chart, render_sweep, series_from_rows


ROWS = [
    {"algorithm": "SAP", "value": 100, "seconds": 0.1},
    {"algorithm": "MinTopK", "value": 100, "seconds": 0.4},
    {"algorithm": "SAP", "value": 200, "seconds": 0.2},
    {"algorithm": "MinTopK", "value": 200, "seconds": 0.3},
]


class TestSeriesGrouping:
    def test_group_by_algorithm_and_value(self):
        series = series_from_rows(ROWS)
        assert series == {
            "SAP": {100: 0.1, 200: 0.2},
            "MinTopK": {100: 0.4, 200: 0.3},
        }

    def test_alternative_metric(self):
        rows = [dict(row, candidates=row["seconds"] * 10) for row in ROWS]
        series = series_from_rows(rows, value_key="candidates")
        assert series["SAP"][100] == 1.0


class TestRendering:
    def test_chart_contains_all_algorithms_and_values(self):
        chart = render_sweep("Fig X", ROWS)
        assert "Fig X" in chart
        assert "parameter value = 100" in chart and "parameter value = 200" in chart
        assert chart.count("SAP") == 2 and chart.count("MinTopK") == 2

    def test_bars_scaled_to_worst_per_value(self):
        chart = render_sweep("Fig X", ROWS)
        lines = chart.splitlines()
        first_block = lines[lines.index("parameter value = 100") : lines.index("parameter value = 100") + 3]
        sap_bar = next(line for line in first_block if "SAP" in line)
        mintopk_bar = next(line for line in first_block if "MinTopK" in line)
        assert sap_bar.count("#") < mintopk_bar.count("#")

    def test_empty_series(self):
        assert render_series_chart("nothing", {}) == "nothing"

    def test_values_printed_with_unit(self):
        chart = render_sweep("Fig X", ROWS, unit="s")
        assert "0.4000s" in chart
