"""Unit tests for the execution engine and metrics collection."""

from repro.baselines.brute_force import BruteForceTopK
from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery
from repro.runner.engine import run_algorithm
from repro.runner.metrics import MetricsCollector, bytes_to_kb

from ..conftest import make_objects, random_scores


class TestMetricsCollector:
    def test_averages(self):
        metrics = MetricsCollector()
        metrics.record(candidate_count=10, memory_bytes=1024)
        metrics.record(candidate_count=20, memory_bytes=3072)
        assert metrics.slides == 2
        assert metrics.average_candidates == 15
        assert metrics.candidate_max == 20
        assert metrics.average_memory_kb == 2.0

    def test_empty_collector(self):
        metrics = MetricsCollector()
        assert metrics.average_candidates == 0.0
        assert metrics.average_memory_bytes == 0.0

    def test_bytes_to_kb(self):
        assert bytes_to_kb(2048) == 2.0


class TestRunAlgorithm:
    def test_report_contains_results_and_metrics(self):
        query = TopKQuery(n=50, k=3, s=5)
        objects = make_objects(random_scores(300, seed=1))
        report = run_algorithm(SAPTopK(query), objects)
        expected_slides = 1 + (300 - 50) // 5
        assert report.slides == expected_slides
        assert len(report.results) == expected_slides
        assert report.elapsed_seconds >= 0
        assert report.average_candidates > 0
        assert "SAP" in report.summary()

    def test_keep_results_false_drops_results(self):
        query = TopKQuery(n=50, k=3, s=5)
        objects = make_objects(random_scores(200, seed=2))
        report = run_algorithm(SAPTopK(query), objects, keep_results=False)
        assert report.results == []
        assert report.slides > 0

    def test_metrics_disabled_still_counts_slides(self):
        query = TopKQuery(n=50, k=3, s=5)
        objects = make_objects(random_scores(200, seed=3))
        report = run_algorithm(BruteForceTopK(query), objects, collect_metrics=False)
        assert report.slides == 1 + (200 - 50) // 5
        assert report.average_candidates == 0.0

    def test_every_result_has_k_objects(self):
        query = TopKQuery(n=50, k=3, s=5)
        objects = make_objects(random_scores(200, seed=4))
        report = run_algorithm(SAPTopK(query), objects)
        assert all(len(result) == query.k for result in report.results)
