"""Regression tests pinning the one stats schema (:data:`STATS_KEYS`).

Three surfaces report per-subscription/cluster statistics: the embedded
engine's :meth:`Subscription.stats`, the engine-wide
:meth:`StreamEngine.aggregate_stats`, and the sharded plane's
:func:`merged_latency_stats` (fed by worker telemetry).  They drifted
apart once — sharded reports missing candidate/memory aggregates — so
these tests assert key parity across all of them against the declared
schema.
"""

from repro.cluster.merge import merged_latency_stats
from repro.core.query import TopKQuery
from repro.engine import StreamEngine
from repro.engine.subscription import STATS_KEYS
from repro.streams import make_dataset


def run_local_engine(objects=600):
    engine = StreamEngine(keep_results=False, return_results=False)
    subscription = engine.subscribe("watch", TopKQuery(n=200, k=5, s=20))
    engine.push_many(make_dataset("STOCK").take(objects))
    engine.flush()
    return engine, subscription


class TestSchemaParity:
    def test_subscription_stats_emits_exactly_the_schema(self):
        _, subscription = run_local_engine()
        assert tuple(subscription.stats()) == STATS_KEYS

    def test_engine_aggregate_stats_matches_schema(self):
        engine, _ = run_local_engine()
        assert set(engine.aggregate_stats()) == set(STATS_KEYS)

    def test_merged_latency_stats_matches_schema(self):
        _, subscription = run_local_engine()
        telemetry = {
            "watch": {
                "stats": subscription.stats(),
                "latencies": list(subscription.metrics.latencies),
                "shard": 0,
            }
        }
        merged = merged_latency_stats([telemetry])
        assert set(merged) == set(STATS_KEYS)

    def test_merged_stats_agree_with_the_single_subscription(self):
        # With exactly one subscription and an undecimated sample, the
        # cluster merge must reproduce the local report.
        _, subscription = run_local_engine()
        stats = subscription.stats()
        telemetry = {
            "watch": {
                "stats": stats,
                "latencies": list(subscription.metrics.latencies),
                "shard": 0,
            }
        }
        merged = merged_latency_stats([telemetry])
        assert merged["slides"] == stats["slides"]
        assert merged["results_delivered"] == stats["results_delivered"]
        assert merged["average_candidates"] == stats["average_candidates"]
        assert merged["candidate_max"] == stats["candidate_max"]
        assert merged["average_memory_kb"] == stats["average_memory_kb"]
        assert merged["max_latency"] == stats["max_latency"]

    def test_merge_tolerates_legacy_partial_stats(self):
        # Older workers (or a crashed one's cached report) may ship only
        # the core keys; the merge must still emit the full schema.
        telemetry = {
            "old": {
                "stats": {
                    "slides": 10,
                    "results_delivered": 10,
                    "max_latency": 0.5,
                },
                "latencies": [0.1] * 10,
            }
        }
        merged = merged_latency_stats([telemetry])
        assert set(merged) == set(STATS_KEYS)
        assert merged["average_candidates"] == 0.0

    def test_empty_cluster_emits_zeroed_schema(self):
        merged = merged_latency_stats([{}])
        assert set(merged) == set(STATS_KEYS)
        assert all(value == 0.0 for value in merged.values())
