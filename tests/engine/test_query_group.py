"""Tests of the query-group plane: grouping, plans, and batched ingestion."""

import pytest

from repro.core.exceptions import AlgorithmStateError
from repro.core.query import TopKQuery
from repro.core.result import results_agree
from repro.core.window import SlideBatcher
from repro.engine import QueryGroup, StreamEngine, group_key_for
from repro.registry import create_algorithm

from ..conftest import make_objects, random_scores


class TestGrouping:
    def test_same_shape_queries_share_one_group(self):
        engine = StreamEngine()
        engine.subscribe("a", TopKQuery(n=50, k=3, s=5))
        engine.subscribe("b", TopKQuery(n=50, k=9, s=5))
        engine.subscribe("c", TopKQuery(n=60, k=3, s=5))  # different shape
        groups = engine.groups()
        assert len(groups) == 2
        assert groups[0]["members"] == ["a", "b"]
        assert groups[1]["members"] == ["c"]

    def test_group_key_ignores_k_and_preference(self):
        base = group_key_for(TopKQuery(n=50, k=3, s=5))
        assert base == group_key_for(TopKQuery(n=50, k=20, s=5, preference=abs))
        assert base != group_key_for(TopKQuery(n=50, k=3, s=5, time_based=True))
        assert base != group_key_for(TopKQuery(n=51, k=3, s=5))

    def test_late_subscriber_gets_fresh_group(self):
        objects = make_objects(random_scores(200, seed=1))
        engine = StreamEngine()
        engine.subscribe("early", TopKQuery(n=40, k=3, s=4))
        engine.push_many(objects[:100])
        late = engine.subscribe("late", TopKQuery(n=40, k=3, s=4))
        engine.push_many(objects[100:])
        assert len(engine.groups()) == 2
        # The late window starts empty at its subscription point.
        reference = create_algorithm("SAP", late.query).run(objects[100:])
        assert results_agree(late.results(), reference)

    def test_started_group_rejects_new_members(self):
        group = QueryGroup(10, 2, False)
        group.start()
        with pytest.raises(AlgorithmStateError):
            engine = StreamEngine()
            subscription = engine.subscribe("q", TopKQuery(n=10, k=2, s=2))
            group.add(subscription)

    def test_unsubscribe_drops_empty_group(self):
        engine = StreamEngine()
        engine.subscribe("a", TopKQuery(n=50, k=3, s=5))
        engine.subscribe("b", TopKQuery(n=50, k=9, s=5))
        engine.unsubscribe("a")
        assert len(engine.groups()) == 1
        engine.unsubscribe("b")
        assert engine.groups() == []
        # A fresh subscription of the shape works again.
        engine.subscribe("c", TopKQuery(n=50, k=3, s=5))
        assert len(engine.groups()) == 1


class TestPlanFormation:
    def test_sap_queries_form_one_plan_at_k_max(self):
        engine = StreamEngine()
        for name, k in [("a", 3), ("b", 12), ("c", 7)]:
            engine.subscribe(name, TopKQuery(n=60, k=k, s=6), algorithm="SAP")
        engine.push(make_objects([1.0])[0])  # plans form on first push
        (group,) = engine.groups()
        (plan,) = group["plans"]
        assert plan["kind"] == "SAP"
        assert plan["k_max"] == 12
        assert plan["members"] == ["a", "b", "c"]

    def test_single_member_buckets_stay_independent(self):
        engine = StreamEngine()
        engine.subscribe("sap", TopKQuery(n=60, k=3, s=6), algorithm="SAP")
        engine.subscribe("sky", TopKQuery(n=60, k=3, s=6), algorithm="k-skyband")
        engine.subscribe("oracle", TopKQuery(n=60, k=3, s=6), algorithm="brute-force")
        engine.push(make_objects([1.0])[0])
        (group,) = engine.groups()
        assert group["plans"] == []

    def test_different_partitioner_configs_do_not_share(self):
        engine = StreamEngine()
        for name, algo in [("e1", "SAP-equal"), ("e2", "SAP-equal"),
                           ("d1", "SAP-dynamic"), ("d2", "SAP-dynamic")]:
            engine.subscribe(name, TopKQuery(n=60, k=4, s=6), algorithm=algo)
        engine.push(make_objects([1.0])[0])
        (group,) = engine.groups()
        kinds = sorted(
            (plan["kind"], tuple(plan["members"])) for plan in group["plans"]
        )
        assert kinds == [("SAP", ("d1", "d2")), ("SAP", ("e1", "e2"))]

    def test_mixed_algorithms_form_separate_plans(self):
        engine = StreamEngine()
        for index in range(2):
            engine.subscribe(f"sap{index}", TopKQuery(n=60, k=4, s=6), algorithm="SAP")
            engine.subscribe(f"sky{index}", TopKQuery(n=60, k=4, s=6), algorithm="k-skyband")
            engine.subscribe(f"min{index}", TopKQuery(n=60, k=4, s=6), algorithm="MinTopK")
        engine.push(make_objects([1.0])[0])
        (group,) = engine.groups()
        assert sorted(plan["kind"] for plan in group["plans"]) == [
            "MinTopK", "SAP", "k-skyband",
        ]

    def test_shared_members_report_plan_candidates(self):
        objects = make_objects(random_scores(300, seed=2))
        engine = StreamEngine()
        small = engine.subscribe("small", TopKQuery(n=60, k=2, s=6), algorithm="k-skyband")
        big = engine.subscribe("big", TopKQuery(n=60, k=10, s=6), algorithm="k-skyband")
        engine.push_many(objects)
        # Both report the shared core (sized for k_max), so the paper's
        # candidate bookkeeping stays visible per query.
        assert small.algorithm.candidate_count() == big.algorithm.candidate_count() > 0


class TestBatchedIngestion:
    def test_slide_batcher_push_batch_matches_push(self):
        objects = make_objects(random_scores(137, seed=3))
        query = TopKQuery(n=40, k=4, s=7)
        one_by_one = SlideBatcher(query)
        expected = [event for obj in objects for event in one_by_one.push(obj)]
        batched = SlideBatcher(query)
        actual = []
        for start in range(0, len(objects), 13):
            actual.extend(batched.push_batch(objects[start : start + 13]))
        assert actual == expected

    def test_push_many_chunked_matches_push(self):
        objects = make_objects(random_scores(250, seed=4))
        per_object = StreamEngine()
        a = per_object.subscribe("q", TopKQuery(n=50, k=5, s=10))
        for obj in objects:
            per_object.push(obj)
        chunked = StreamEngine()
        b = chunked.subscribe("q", TopKQuery(n=50, k=5, s=10))
        assert chunked.push_many(objects, chunk_size=17) == len(objects)
        assert results_agree(a.results(), b.results())

    def test_push_many_rejects_bad_chunk_size(self):
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=10, k=2, s=2))
        with pytest.raises(ValueError, match="chunk_size"):
            engine.push_many(iter([]), chunk_size=0)


class TestCallbackUnsubscribe:
    def test_unsubscribe_from_callback_keeps_siblings_in_sync(self):
        objects = make_objects(random_scores(300, seed=8))
        engine = StreamEngine()
        query = TopKQuery(n=50, k=3, s=10)

        def drop_a(name, result):
            if "a" in engine:
                engine.unsubscribe("a")

        engine.subscribe("a", query, algorithm="SAP", on_result=drop_a)
        b = engine.subscribe("b", query, algorithm="SAP")
        c = engine.subscribe("c", query, algorithm="SAP")
        engine.push_many(objects)
        # "a" unsubscribed itself on the first answer; b and c must have
        # received every slide and stayed exact.
        assert "a" not in engine
        reference = create_algorithm("SAP", query).run(objects)
        assert results_agree(b.results(), reference)
        assert results_agree(c.results(), reference)

    def test_unsubscribing_a_sibling_from_callback(self):
        objects = make_objects(random_scores(200, seed=9))
        engine = StreamEngine()
        query = TopKQuery(n=40, k=2, s=8)

        def drop_victim(name, result):
            if "victim" in engine:
                engine.unsubscribe("victim")

        engine.subscribe("trigger", query, on_result=drop_victim)
        engine.subscribe("victim", query)
        survivor = engine.subscribe("survivor", query)
        engine.push_many(objects)
        reference = create_algorithm("SAP", query).run(objects)
        assert results_agree(survivor.results(), reference)


class TestLazyPushResults:
    def test_return_results_false_skips_result_mapping(self):
        objects = make_objects(random_scores(60, seed=5))
        delivered = []
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe(
            "q", TopKQuery(n=20, k=3, s=5), on_result=lambda n, r: delivered.append(r)
        )
        produced = [engine.push(obj) for obj in objects]
        assert all(p == {} for p in produced)
        # Callbacks and retention are unaffected by the lazy return.
        assert delivered == subscription.results()
        assert len(delivered) == 1 + (60 - 20) // 5

    def test_flush_respects_return_results_opt_out(self):
        objects = make_objects(random_scores(120, seed=6))
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe("q", TopKQuery(n=40, k=3, s=10, time_based=True))
        engine.push_many(objects)
        before = subscription.results_delivered
        assert engine.flush() == {}
        assert subscription.results_delivered == before + 1

    def test_default_push_still_returns_results(self):
        objects = make_objects(random_scores(30, seed=7))
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=10, k=2, s=5))
        produced = [engine.push(obj) for obj in objects]
        assert [i for i, p in enumerate(produced) if p] == [9, 14, 19, 24, 29]
