"""Tests of the push-based StreamEngine facade and the unified registry."""
