"""O(window) memory on streams much longer than the window.

The acceptance criterion of the StreamEngine redesign: pushing a stream far
longer than ``n`` must not materialise it — the engine's working state is
one window of objects plus whatever answers the caller retains.
"""

import random
import tracemalloc
from typing import Iterator

from repro.core.object import StreamObject
from repro.core.query import TopKQuery
from repro.engine import StreamEngine

WINDOW = 200
STREAM_LENGTH = 50 * WINDOW  # 10,000 objects — 50 windows' worth


def endless_scores(count: int, seed: int = 0) -> Iterator[StreamObject]:
    """A generator (no ``__len__``) standing in for an unbounded feed."""
    rng = random.Random(seed)
    for t in range(count):
        yield StreamObject(score=rng.uniform(0.0, 100.0), t=t)


class TestUnboundedStreams:
    def test_engine_state_stays_bounded_by_window(self):
        query = TopKQuery(n=WINDOW, k=10, s=50)
        engine = StreamEngine()
        subscription = engine.subscribe("q", query, result_buffer=4)

        high_water = 0
        for obj in endless_scores(STREAM_LENGTH, seed=1):
            engine.push(obj)
            high_water = max(high_water, subscription.window_size())
            assert len(subscription.results()) <= 4

        # Between slides the batcher buffers at most one extra (partial)
        # slide on top of the window — still O(window), never O(stream).
        assert high_water <= WINDOW + query.s
        assert subscription.results_delivered == 1 + (STREAM_LENGTH - WINDOW) // 50
        # The buffer retained only the most recent answers.
        retained = subscription.results()
        assert len(retained) == 4
        assert retained[-1].slide_index == subscription.results_delivered - 1

    def test_push_many_consumes_generators_lazily(self):
        query = TopKQuery(n=WINDOW, k=5, s=50)
        engine = StreamEngine()
        exhausted = [False]
        first_result_saw_exhausted = []

        def feed() -> Iterator[StreamObject]:
            yield from endless_scores(STREAM_LENGTH, seed=2)
            exhausted[0] = True

        engine.subscribe(
            "q",
            query,
            keep_results=False,
            on_result=lambda name, r: first_result_saw_exhausted.append(exhausted[0]),
        )
        pushed = engine.push_many(feed())
        assert pushed == STREAM_LENGTH
        # Answers were delivered while the generator was still producing —
        # the stream was processed incrementally, not materialised first.
        assert first_result_saw_exhausted[0] is False

    def test_peak_memory_does_not_scale_with_stream_length(self):
        """Doubling the stream 5x leaves peak allocation roughly flat."""
        query = TopKQuery(n=WINDOW, k=5, s=50)

        def peak_for(length: int) -> int:
            engine = StreamEngine()
            engine.subscribe("q", query, keep_results=False)
            tracemalloc.start()
            engine.push_many(endless_scores(length, seed=3))
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        short_peak = peak_for(2 * WINDOW)
        long_peak = peak_for(10 * WINDOW)
        # O(window) behaviour: a 5x longer stream must not need 3x the
        # memory (a materialising implementation needs ~5x).
        assert long_peak < 3 * short_peak


class TestAlgorithmPushLifecycle:
    """The core interface's own push/finish bridge (used without an engine)."""

    def test_push_matches_pull_run(self):
        from repro.core.result import results_agree
        from repro.registry import create_algorithm

        objects = list(endless_scores(600, seed=4))
        query = TopKQuery(n=100, k=5, s=20)
        reference = create_algorithm("SAP", query).run(objects)

        algorithm = create_algorithm("SAP", query)
        pushed = []
        for obj in objects:
            pushed.extend(algorithm.push(obj))
        pushed.extend(algorithm.finish())

        assert results_agree(pushed, reference)

    def test_snapshot_and_close_hooks(self):
        from repro.registry import create_algorithm

        query = TopKQuery(n=50, k=3, s=10)
        algorithm = create_algorithm("SAP", query)
        for obj in endless_scores(120, seed=5):
            algorithm.push(obj)
        snap = algorithm.snapshot()
        assert snap["algorithm"].startswith("SAP")
        assert snap["candidate_count"] == algorithm.candidate_count()
        algorithm.close()  # default hook is a no-op
