"""Unit tests for the fluent QuerySpec builder."""

import pytest

from repro.core.exceptions import InvalidQueryError
from repro.core.query import TopKQuery
from repro.engine.spec import QuerySpec, resolve_query


class TestBuild:
    def test_fluent_chain_builds_query(self):
        query = QuerySpec().window(100).top(5).slide(10).build()
        assert (query.n, query.k, query.s) == (100, 5, 10)
        assert not query.time_based

    def test_constructor_arguments_equivalent_to_fluent(self):
        assert QuerySpec(n=100, k=5, s=10).build() == QuerySpec().window(100).top(5).slide(10).build()

    def test_default_slide_is_one(self):
        assert QuerySpec(n=10, k=2).build().s == 1

    def test_scored_by_sets_preference(self):
        query = QuerySpec(n=10, k=2).scored_by(lambda record: record["value"]).build()
        assert query.score({"value": 3.5}) == 3.5

    def test_over_time_marks_time_based(self):
        assert QuerySpec(n=600, k=10, s=60).over_time().build().time_based
        assert not QuerySpec(n=600, k=10, s=60).over_time().over_count().build().time_based

    def test_missing_window_rejected(self):
        with pytest.raises(InvalidQueryError, match="window"):
            QuerySpec().top(5).build()

    def test_missing_k_rejected(self):
        with pytest.raises(InvalidQueryError, match="result size"):
            QuerySpec().window(100).build()

    def test_invalid_combination_rejected_at_build(self):
        with pytest.raises(InvalidQueryError):
            QuerySpec(n=10, k=2, s=50).build()  # s > n

    def test_from_query_round_trip(self):
        query = TopKQuery(n=80, k=4, s=8)
        assert QuerySpec.from_query(query).build() == query


class TestResolveQuery:
    def test_accepts_query_and_spec(self):
        query = TopKQuery(n=50, k=3, s=5)
        assert resolve_query(query) is query
        assert resolve_query(QuerySpec(n=50, k=3, s=5)) == query

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_query({"n": 50, "k": 3})


class TestExecutionPlan:
    def test_plain_spec_defaults_to_sap(self):
        assert QuerySpec(n=10, k=2).execution_plan() == ("SAP", {})

    def test_using_carries_algorithm_and_options(self):
        algorithm, options = (
            QuerySpec(n=10, k=2).using("MinTopK", prune=True).execution_plan()
        )
        assert algorithm == "MinTopK"
        assert options == {"prune": True}

    def test_preferring_folds_into_clustered_wrapper(self):
        algorithm, options = (
            QuerySpec(n=10, k=2)
            .using("MinTopK")
            .preferring((2.0, 1.0), cluster_id=3, pad_factor=1.5)
            .execution_plan()
        )
        assert algorithm == "clustered"
        assert options["vector"] == (2.0, 1.0)
        assert options["inner"] == "MinTopK"
        assert options["cluster_id"] == 3
        assert options["pad_factor"] == 1.5

    def test_unpinned_cluster_id_left_to_the_engine(self):
        _, options = QuerySpec(n=10, k=2).preferring((1.0, 1.0)).execution_plan()
        assert "cluster_id" not in options

    def test_carries_execution(self):
        assert not QuerySpec(n=10, k=2).carries_execution()
        assert QuerySpec(n=10, k=2).using("SAP").carries_execution()
        assert QuerySpec(n=10, k=2).preferring((1.0,)).carries_execution()


class TestValidate:
    def _pref_error(self):
        from repro.streams.preference import PreferenceError

        return PreferenceError

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(InvalidQueryError, match="unknown algorithm"):
            QuerySpec(n=10, k=2).using("NotAnAlgorithm").validate()

    def test_clustered_without_vector_rejected(self):
        with pytest.raises(self._pref_error(), match="preference vector"):
            QuerySpec(n=10, k=2).using("clustered").validate()

    def test_clustered_with_vector_rejected(self):
        # "clustered" is the wrapper itself, never a valid inner name
        with pytest.raises(self._pref_error(), match="inner"):
            QuerySpec(n=10, k=2).using("clustered").preferring((1.0,)).validate()

    def test_cluster_id_without_vector_rejected(self):
        with pytest.raises(self._pref_error(), match="cluster_id"):
            QuerySpec(n=10, k=2, cluster_id=1).validate()

    def test_scored_by_conflicts_with_vector(self):
        spec = QuerySpec(n=10, k=2).scored_by(lambda r: r[0]).preferring((1.0,))
        with pytest.raises(self._pref_error(), match="vector is the preference"):
            spec.validate()


class TestWireForm:
    """from_dict is the single REST body validator behind
    ``POST /v1/subscriptions``; to_dict is its inverse."""

    def test_minimal_body(self):
        spec = QuerySpec.from_dict({"n": 100, "k": 5})
        query = spec.build()
        assert (query.n, query.k, query.s) == (100, 5, 1)

    def test_name_key_tolerated(self):
        # the serving layer passes the whole body; "name" is its key
        QuerySpec.from_dict({"name": "x", "n": 10, "k": 2})

    def test_unknown_keys_rejected(self):
        with pytest.raises(InvalidQueryError, match="bogus"):
            QuerySpec.from_dict({"n": 10, "k": 2, "bogus": 1})

    def test_missing_required_key_rejected(self):
        with pytest.raises(InvalidQueryError, match="'k'"):
            QuerySpec.from_dict({"n": 10})

    def test_non_numeric_shape_rejected(self):
        with pytest.raises(InvalidQueryError):
            QuerySpec.from_dict({"n": "ten", "k": 2})

    def test_default_algorithm_applies(self):
        spec = QuerySpec.from_dict({"n": 10, "k": 2}, default_algorithm="MinTopK")
        assert spec.execution_plan()[0] == "MinTopK"

    def test_preference_must_be_an_array(self):
        from repro.streams.preference import PreferenceError

        with pytest.raises(PreferenceError, match="array of weights"):
            QuerySpec.from_dict({"n": 10, "k": 2, "preference": "nope"})

    def test_clustered_wire_algorithm_names_default_inner(self):
        # legacy wire behaviour: algorithm "clustered" + a preference
        # means "the sharing wrapper around the default inner core"
        spec = QuerySpec.from_dict(
            {"n": 10, "k": 2, "preference": [1.0, 0.5], "algorithm": "clustered"},
            default_algorithm="MinTopK",
        )
        algorithm, options = spec.execution_plan()
        assert algorithm == "clustered"
        assert options["inner"] == "MinTopK"

    def test_to_dict_from_dict_round_trip(self):
        spec = QuerySpec.from_dict(
            {
                "n": 40,
                "k": 4,
                "s": 8,
                "algorithm": "MinTopK",
                "preference": [1.0, 0.25],
                "pad_factor": 1.2,
            }
        )
        assert QuerySpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()


class TestLegacyShims:
    def test_subscribe_preference_emits_deprecation_warning(self):
        from repro.engine import StreamEngine

        engine = StreamEngine()
        with pytest.warns(DeprecationWarning, match="subscribe_preference"):
            engine.subscribe_preference(
                "p", QuerySpec(n=10, k=2, s=5), (1.0, 0.5)
            )
        assert "p" in engine.subscriptions()

    def test_spec_with_execution_rejects_algorithm_argument(self):
        from repro.engine import StreamEngine

        engine = StreamEngine()
        with pytest.raises(ValueError, match="already declares its execution"):
            engine.subscribe(
                "q", QuerySpec(n=10, k=2).using("MinTopK"), "SMA"
            )
