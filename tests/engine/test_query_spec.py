"""Unit tests for the fluent QuerySpec builder."""

import pytest

from repro.core.exceptions import InvalidQueryError
from repro.core.query import TopKQuery
from repro.engine.spec import QuerySpec, resolve_query


class TestBuild:
    def test_fluent_chain_builds_query(self):
        query = QuerySpec().window(100).top(5).slide(10).build()
        assert (query.n, query.k, query.s) == (100, 5, 10)
        assert not query.time_based

    def test_constructor_arguments_equivalent_to_fluent(self):
        assert QuerySpec(n=100, k=5, s=10).build() == QuerySpec().window(100).top(5).slide(10).build()

    def test_default_slide_is_one(self):
        assert QuerySpec(n=10, k=2).build().s == 1

    def test_scored_by_sets_preference(self):
        query = QuerySpec(n=10, k=2).scored_by(lambda record: record["value"]).build()
        assert query.score({"value": 3.5}) == 3.5

    def test_over_time_marks_time_based(self):
        assert QuerySpec(n=600, k=10, s=60).over_time().build().time_based
        assert not QuerySpec(n=600, k=10, s=60).over_time().over_count().build().time_based

    def test_missing_window_rejected(self):
        with pytest.raises(InvalidQueryError, match="window"):
            QuerySpec().top(5).build()

    def test_missing_k_rejected(self):
        with pytest.raises(InvalidQueryError, match="result size"):
            QuerySpec().window(100).build()

    def test_invalid_combination_rejected_at_build(self):
        with pytest.raises(InvalidQueryError):
            QuerySpec(n=10, k=2, s=50).build()  # s > n

    def test_from_query_round_trip(self):
        query = TopKQuery(n=80, k=4, s=8)
        assert QuerySpec.from_query(query).build() == query


class TestResolveQuery:
    def test_accepts_query_and_spec(self):
        query = TopKQuery(n=50, k=3, s=5)
        assert resolve_query(query) is query
        assert resolve_query(QuerySpec(n=50, k=3, s=5)) == query

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_query({"n": 50, "k": 3})
