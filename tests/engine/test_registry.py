"""Unit tests for the unified algorithm registry."""

import pytest

from repro import algorithm_registry
from repro.cli import CLI_ALGORITHMS
from repro.core.framework import SAPTopK
from repro.core.interface import ContinuousTopKAlgorithm
from repro.core.query import TopKQuery
from repro.core.result import TopKResult
from repro.registry import (
    algorithm_factories,
    algorithm_names,
    create_algorithm,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)


class TestBuiltins:
    def test_paper_algorithms_registered(self):
        assert {
            "SAP",
            "SAP-equal",
            "SAP-dynamic",
            "SAP-enhanced",
            "MinTopK",
            "k-skyband",
            "SMA",
            "brute-force",
        } <= set(algorithm_names())

    def test_create_builds_algorithm_for_query(self):
        # Every entry is constructible through its own example options —
        # empty for the classic algorithms, vector=... for "clustered".
        query = TopKQuery(n=50, k=3, s=5)
        for name in algorithm_names():
            algorithm = get_algorithm(name).create_example(query)
            assert algorithm.query is query, name

    def test_classic_entries_need_no_options(self):
        query = TopKQuery(n=50, k=3, s=5)
        for name in algorithm_names():
            if get_algorithm(name).example_options:
                continue
            algorithm = create_algorithm(name, query)
            assert algorithm.query is query, name

    def test_clustered_requires_a_vector(self):
        from repro.core.clustering import ClusteredTopK
        from repro.core.exceptions import InvalidQueryError

        query = TopKQuery(n=50, k=3, s=5)
        info = get_algorithm("clustered")
        assert "vector" in info.example_options
        assert isinstance(info.create_example(query), ClusteredTopK)
        with pytest.raises(InvalidQueryError, match="vector"):
            create_algorithm("clustered", query)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="SAP"):
            create_algorithm("nope", TopKQuery(n=50, k=3, s=5))

    def test_entries_have_descriptions(self):
        for name in algorithm_names():
            assert get_algorithm(name).description, name


class TestSingleSourceOfTruth:
    def test_cli_algorithms_backed_by_registry(self):
        assert set(CLI_ALGORITHMS) == set(algorithm_names())

    def test_legacy_algorithm_registry_backed_by_registry(self):
        assert set(algorithm_registry()) == set(algorithm_names())

    def test_factories_subset_selection(self):
        subset = algorithm_factories("SAP", "MinTopK")
        assert list(subset) == ["SAP", "MinTopK"]


class TestRegistration:
    def test_decorator_on_factory_function(self):
        @register_algorithm("test-sap-eager", description="eager policy")
        def _factory(query, **options):
            return SAPTopK(query, meaningful_policy="eager", **options)

        try:
            algorithm = create_algorithm("test-sap-eager", TopKQuery(n=50, k=3, s=5))
            assert isinstance(algorithm, SAPTopK)
        finally:
            unregister_algorithm("test-sap-eager")

    def test_decorator_on_algorithm_class(self):
        @register_algorithm("test-null")
        class _NullTopK(ContinuousTopKAlgorithm):
            name = "null"

            def process_slide(self, event):
                return TopKResult.from_objects(event.index, event.window_end, [])

        try:
            query = TopKQuery(n=50, k=3, s=5)
            assert isinstance(create_algorithm("test-null", query), _NullTopK)
        finally:
            unregister_algorithm("test-null")

    def test_duplicate_rejected_unless_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("SAP")(lambda query: SAPTopK(query))

    def test_replace_and_unregister(self):
        def sentinel(query):
            return SAPTopK(query)

        register_algorithm("test-tmp")(sentinel)
        register_algorithm("test-tmp", replace=True)(sentinel)
        unregister_algorithm("test-tmp")
        assert "test-tmp" not in algorithm_names()
        unregister_algorithm("test-tmp")  # idempotent

    def test_non_callable_factory_rejected(self):
        from repro.registry import register_factory

        with pytest.raises(TypeError):
            register_factory("test-bad", factory=42)
