"""Tests of the push-based StreamEngine facade.

The central contract (the PR's acceptance criterion): driving any
registered algorithm through ``StreamEngine.push`` produces answers
identical to the legacy pull-based path on every registry dataset, while
the engine's working state stays O(window) even on streams far longer than
the window.
"""

import pytest

from repro.core.exceptions import AlgorithmStateError
from repro.core.query import TopKQuery
from repro.core.result import results_agree
from repro.engine import QuerySpec, StreamEngine
from repro.registry import algorithm_names, create_algorithm
from repro.runner.engine import run_algorithm
from repro.streams import dataset_names, make_dataset

from ..conftest import make_objects, random_scores

PARITY_QUERY = TopKQuery(n=100, k=5, s=20)
PARITY_LENGTH = 600


def _skip_preference_algorithms(algorithm):
    # Preference algorithms ("clustered") rank by their own vector, not the
    # stream's score, so the score-order parity contract does not apply;
    # their engine parity against independent per-user engines is covered
    # by tests/property/test_property_clustering.py.
    from repro.registry import get_algorithm

    if get_algorithm(algorithm).example_options:
        pytest.skip("preference algorithms are parity-tested in tests/property/")


@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("algorithm", algorithm_names())
class TestPushParity:
    """Push-based answers match the legacy paths, per algorithm × dataset."""

    def test_matches_pull_based_run(self, algorithm, dataset):
        _skip_preference_algorithms(algorithm)
        objects = make_dataset(dataset).take(PARITY_LENGTH)
        reference = create_algorithm(algorithm, PARITY_QUERY).run(objects)

        engine = StreamEngine()
        subscription = engine.subscribe("q", PARITY_QUERY, algorithm=algorithm)
        engine.push_many(objects)
        engine.flush()

        assert results_agree(subscription.results(), reference)

    def test_matches_run_algorithm_report(self, algorithm, dataset):
        _skip_preference_algorithms(algorithm)
        objects = make_dataset(dataset).take(PARITY_LENGTH)
        report = run_algorithm(create_algorithm(algorithm, PARITY_QUERY), objects)

        engine = StreamEngine()
        subscription = engine.subscribe("q", PARITY_QUERY, algorithm=algorithm)
        engine.push_many(objects)
        engine.flush()

        assert results_agree(subscription.results(), report.results)
        assert subscription.metrics.slides == report.slides


class TestTimeBasedParity:
    def test_time_based_window_matches_pull_run(self):
        objects = make_objects(random_scores(500, seed=9))
        query = QuerySpec().window(120).top(5).slide(30).over_time().build()
        reference = create_algorithm("SAP", query).run(objects)

        engine = StreamEngine()
        subscription = engine.subscribe("q", query)
        engine.push_many(objects)
        engine.flush()

        assert results_agree(subscription.results(), reference)

    def test_flush_is_required_for_final_time_based_report(self):
        objects = make_objects(random_scores(400, seed=10))
        query = TopKQuery(n=100, k=4, s=25, time_based=True)
        engine = StreamEngine()
        subscription = engine.subscribe("q", query)
        engine.push_many(objects)
        before = len(subscription.results())
        engine.flush()
        assert len(subscription.results()) == before + 1


class TestSubscribe:
    def test_accepts_spec_builder_and_query(self):
        engine = StreamEngine()
        engine.subscribe("spec", QuerySpec(n=50, k=3, s=5))
        engine.subscribe("query", TopKQuery(n=50, k=3, s=5))
        assert engine.subscriptions() == ["spec", "query"]

    def test_accepts_algorithm_instance_without_spec(self):
        algorithm = create_algorithm("MinTopK", TopKQuery(n=50, k=3, s=5))
        subscription = StreamEngine().subscribe("q", algorithm=algorithm)
        assert subscription.algorithm is algorithm
        assert subscription.query is algorithm.query

    def test_instance_with_disagreeing_spec_rejected(self):
        algorithm = create_algorithm("SAP", TopKQuery(n=50, k=3, s=5))
        with pytest.raises(ValueError, match="disagrees"):
            StreamEngine().subscribe("q", TopKQuery(n=60, k=3, s=5), algorithm=algorithm)

    def test_accepts_factory_callable(self):
        from repro.baselines.brute_force import BruteForceTopK

        subscription = StreamEngine().subscribe(
            "q", TopKQuery(n=50, k=3, s=5), algorithm=BruteForceTopK
        )
        assert subscription.algorithm.name == "brute-force"

    def test_algorithm_options_forwarded_to_registry_factory(self):
        subscription = StreamEngine().subscribe(
            "q", TopKQuery(n=50, k=3, s=5), algorithm="SAP", meaningful_policy="eager"
        )
        assert subscription.algorithm._policy == "eager"

    def test_duplicate_name_rejected(self):
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=50, k=3, s=5))
        with pytest.raises(ValueError, match="already subscribed"):
            engine.subscribe("q", TopKQuery(n=60, k=3, s=5))

    def test_spec_required_without_instance(self):
        with pytest.raises(ValueError, match="QuerySpec"):
            StreamEngine().subscribe("q", algorithm="SAP")

    def test_push_without_subscriptions_rejected(self):
        with pytest.raises(ValueError, match="no queries"):
            StreamEngine().push(make_objects([1.0])[0])


class TestCallbacksAndResults:
    def test_callback_sees_every_answer_in_order(self):
        objects = make_objects(random_scores(300, seed=5))
        seen = []
        engine = StreamEngine()
        subscription = engine.subscribe(
            "q",
            TopKQuery(n=60, k=3, s=6),
            on_result=lambda name, result: seen.append((name, result)),
        )
        engine.push_many(objects)
        assert [r for _, r in seen] == subscription.results()
        assert {name for name, _ in seen} == {"q"}

    def test_on_result_after_subscribe_and_multiple_callbacks(self):
        objects = make_objects(random_scores(200, seed=6))
        first, second = [], []
        engine = StreamEngine()
        subscription = engine.subscribe("q", TopKQuery(n=50, k=3, s=10))
        subscription.on_result(lambda name, r: first.append(r)).on_result(
            lambda name, r: second.append(r)
        )
        engine.push_many(objects)
        assert first == second == subscription.results()

    def test_push_returns_completed_answers(self):
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=10, k=2, s=5))
        produced = [engine.push(obj) for obj in make_objects(random_scores(20, seed=7))]
        # The window first fills at object 10, then slides at 15 and 20.
        non_empty = [i for i, p in enumerate(produced) if p]
        assert non_empty == [9, 14, 19]
        assert all(len(p["q"]) == 1 for i, p in enumerate(produced) if i in non_empty)

    def test_keep_results_false_retains_nothing_but_fires_callbacks(self):
        objects = make_objects(random_scores(200, seed=8))
        delivered = []
        engine = StreamEngine()
        subscription = engine.subscribe(
            "q",
            TopKQuery(n=50, k=3, s=10),
            keep_results=False,
            on_result=lambda name, r: delivered.append(r),
        )
        engine.push_many(objects)
        assert subscription.results() == []
        assert subscription.latest() is None
        assert len(delivered) == subscription.results_delivered > 0

    def test_drain_consumes_retained_results(self):
        objects = make_objects(random_scores(200, seed=9))
        engine = StreamEngine()
        subscription = engine.subscribe("q", TopKQuery(n=50, k=3, s=10))
        engine.push_many(objects)
        drained = list(subscription.drain())
        assert len(drained) == subscription.results_delivered
        assert subscription.results() == []


class TestSnapshotAndStats:
    def test_snapshot_reports_live_state(self):
        objects = make_objects(random_scores(250, seed=11))
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=100, k=5, s=25))
        engine.push_many(objects)
        snap = engine.snapshot()["q"]
        assert snap["algorithm"].startswith("SAP")
        assert snap["slides"] == 1 + (250 - 100) // 25
        assert snap["window_size"] == 100
        assert snap["candidate_count"] > 0
        assert len(snap["latest_scores"]) == 5
        assert not snap["closed"]

    def test_stats_expose_the_papers_measures(self):
        objects = make_objects(random_scores(250, seed=12))
        engine = StreamEngine()
        subscription = engine.subscribe("q", TopKQuery(n=100, k=5, s=25))
        engine.push_many(objects)
        stats = subscription.stats()
        assert stats["slides"] == subscription.metrics.slides
        assert stats["average_candidates"] > 0
        assert stats["average_memory_kb"] > 0
        assert stats["max_latency"] >= stats["median_latency"] >= 0

    def test_collect_metrics_false_still_counts_slides(self):
        objects = make_objects(random_scores(200, seed=13))
        engine = StreamEngine()
        subscription = engine.subscribe(
            "q", TopKQuery(n=50, k=3, s=10), collect_metrics=False
        )
        engine.push_many(objects)
        assert subscription.metrics.slides > 0
        assert subscription.metrics.average_candidates == 0.0


class TestLifecycle:
    def test_closed_subscription_stops_consuming(self):
        objects = make_objects(random_scores(300, seed=14))
        engine = StreamEngine()
        keep = engine.subscribe("keep", TopKQuery(n=50, k=3, s=10))
        stop = engine.subscribe("stop", TopKQuery(n=50, k=3, s=10))
        engine.push_many(objects[:150])
        stop.close()
        engine.push_many(objects[150:])
        assert stop.closed
        assert len(keep.results()) > len(stop.results())
        assert stop.snapshot()["closed"]

    def test_unsubscribe_removes_and_closes(self):
        engine = StreamEngine()
        subscription = engine.subscribe("q", TopKQuery(n=50, k=3, s=10))
        engine.unsubscribe("q")
        assert subscription.closed
        assert "q" not in engine
        with pytest.raises(KeyError):
            engine.unsubscribe("q")

    def test_engine_close_is_final(self):
        engine = StreamEngine()
        subscription = engine.subscribe("q", TopKQuery(n=50, k=3, s=10))
        engine.close()
        assert engine.closed and subscription.closed
        assert engine.close() == {}  # idempotent
        with pytest.raises(AlgorithmStateError):
            engine.push(make_objects([1.0])[0])
        with pytest.raises(AlgorithmStateError):
            engine.subscribe("other", TopKQuery(n=50, k=3, s=10))

    def test_close_flushes_time_based_report(self):
        objects = make_objects(random_scores(400, seed=15))
        query = TopKQuery(n=100, k=4, s=25, time_based=True)
        engine = StreamEngine()
        engine.subscribe("q", query)
        engine.push_many(objects)
        produced = engine.close()
        assert "q" in produced and len(produced["q"]) == 1

    def test_context_manager_closes(self):
        with StreamEngine() as engine:
            engine.subscribe("q", TopKQuery(n=50, k=3, s=10))
        assert engine.closed

    def test_drain_results_consumes_every_subscription(self):
        objects = make_objects(random_scores(200, seed=16))
        engine = StreamEngine(keep_results=True)
        engine.subscribe("a", TopKQuery(n=50, k=3, s=10))
        engine.subscribe("b", TopKQuery(n=40, k=2, s=20))
        engine.push_many(objects)
        produced = engine.drain_results()
        assert set(produced) == {"a", "b"}
        assert all(results for results in produced.values())
        # Drained means drained: a second call finds nothing new...
        assert engine.drain_results() == {}
        engine.push_many(make_objects(random_scores(50, seed=17), start_t=200))
        # ...until new slides complete, and empty subscriptions are omitted.
        assert set(engine.drain_results()) == {"a", "b"}

    def test_drain_results_readable_after_close(self):
        engine = StreamEngine(keep_results=True)
        engine.subscribe("q", TopKQuery(n=50, k=3, s=10))
        engine.push_many(make_objects(random_scores(120, seed=18)))
        engine.close()
        # Reading retained answers off a closed engine is allowed — the
        # serving layer drains one final time during shutdown.
        assert engine.drain_results()["q"]


class TestMultiQuery:
    def test_each_subscription_matches_standalone_run(self):
        objects = make_objects(random_scores(500, seed=16))
        queries = {
            "small": TopKQuery(n=60, k=3, s=6),
            "large": TopKQuery(n=200, k=10, s=20),
            "tumbling": TopKQuery(n=100, k=5, s=100),
        }
        engine = StreamEngine()
        for name, query in queries.items():
            engine.subscribe(name, query, algorithm="SAP")
        engine.push_many(objects)
        engine.flush()

        for name, query in queries.items():
            standalone = create_algorithm("SAP", query).run(objects)
            assert results_agree(engine.results(name), standalone), name

    def test_mixed_algorithms_share_one_pass_and_agree(self):
        objects = make_objects(random_scores(400, seed=17))
        query = TopKQuery(n=80, k=4, s=8)
        engine = StreamEngine()
        for algorithm in ("SAP", "MinTopK", "brute-force"):
            engine.subscribe(algorithm, query, algorithm=algorithm)
        engine.push_many(objects)
        assert results_agree(engine.results("SAP"), engine.results("brute-force"))
        assert results_agree(engine.results("MinTopK"), engine.results("brute-force"))


class TestStreamSourceFeed:
    def test_feed_pushes_and_flushes(self):
        from repro.streams import UncorrelatedStream

        engine = StreamEngine()
        subscription = engine.subscribe("q", TopKQuery(n=100, k=5, s=25))
        pushed = UncorrelatedStream(seed=3).feed(engine, 600)
        assert pushed == 600
        assert len(subscription.results()) == 1 + (600 - 100) // 25

        reference = create_algorithm("SAP", subscription.query).run(
            UncorrelatedStream(seed=3).take(600)
        )
        assert results_agree(subscription.results(), reference)
