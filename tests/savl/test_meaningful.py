"""Unit tests for the list-based and empty meaningful-object sets."""

from repro.savl.meaningful import EmptyMeaningfulSet, SortedMeaningfulSet

from ..conftest import make_objects


class TestSortedMeaningfulSet:
    def test_pop_best_in_rank_order(self):
        objects = make_objects([3, 9, 5])
        meaningful = SortedMeaningfulSet(objects)
        assert meaningful.pop_best(0).score == 9.0
        assert meaningful.pop_best(0).score == 5.0
        assert meaningful.pop_best(0).score == 3.0
        assert meaningful.pop_best(0) is None

    def test_pop_best_skips_expired(self):
        objects = make_objects([9, 5, 3])  # t = 0, 1, 2
        meaningful = SortedMeaningfulSet(objects)
        best = meaningful.pop_best(watermark_t=1)
        assert best.t >= 1

    def test_prune_expired(self):
        objects = make_objects([9, 5, 3])
        meaningful = SortedMeaningfulSet(objects)
        meaningful.prune_expired(watermark_t=2)
        assert len(meaningful) == 1

    def test_len(self):
        assert len(SortedMeaningfulSet(make_objects([1, 2]))) == 2
        assert len(SortedMeaningfulSet([])) == 0

    def test_advance_is_noop(self):
        meaningful = SortedMeaningfulSet(make_objects([1]))
        meaningful.advance(5)
        assert len(meaningful) == 1


class TestEmptyMeaningfulSet:
    def test_always_empty(self):
        empty = EmptyMeaningfulSet()
        assert len(empty) == 0
        assert empty.pop_best(0) is None
        empty.prune_expired(0)
        empty.advance(3)
        assert len(empty) == 0
