"""Unit tests for the slide-aware S-AVL construction (Appendix C)."""

import pytest

from repro.core.object import top_k
from repro.savl.savl import SAVL

from ..conftest import make_objects, random_scores


class TestBuildBatched:
    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            SAVL.build_batched(make_objects([1, 2]), batch_size=0, num_stacks=1)

    def test_keeps_only_per_batch_top_objects(self):
        # Two batches of 5; only the top-2 of each batch may be stored.
        objects = make_objects([1, 2, 3, 4, 5, 10, 20, 30, 40, 50])
        savl = SAVL.build_batched(objects, batch_size=5, num_stacks=2)
        stored = {o.score for o in savl.contents()}
        assert stored <= {4.0, 5.0, 40.0, 50.0}
        assert {40.0, 50.0} <= stored

    def test_subset_of_plain_build(self):
        objects = make_objects(random_scores(100, seed=1))
        plain = {o.rank_key for o in SAVL.build(objects, num_stacks=3).contents()}
        batched = {
            o.rank_key
            for o in SAVL.build_batched(objects, batch_size=10, num_stacks=3).contents()
        }
        assert batched <= plain

    def test_covers_per_batch_skyband_needs(self):
        """Every object that could still become a result (not dominated by k
        same-batch objects) must be stored."""
        k = 3
        objects = make_objects(random_scores(90, seed=2))
        savl = SAVL.build_batched(objects, batch_size=9, num_stacks=k)
        stored = {o.rank_key for o in savl.contents()}
        for start in range(0, 90, 9):
            batch = objects[start : start + 9]
            for obj in top_k(batch, k):
                # The batch's top-k survive local pruning unless pruned by
                # the (absent) global threshold or deeper stack pruning that
                # only removes objects dominated by k later objects.
                dominated_by_later = sum(
                    1 for other in objects if obj.dominated_by(other)
                )
                if dominated_by_later < k:
                    assert obj.rank_key in stored

    def test_respects_exclusions_and_threshold(self):
        objects = make_objects([5, 50, 7, 70])
        savl = SAVL.build_batched(
            objects,
            batch_size=2,
            num_stacks=2,
            global_threshold=(6.0, 10_000),
            exclude_keys={(70.0, 3)},
        )
        stored = {o.score for o in savl.contents()}
        assert 70.0 not in stored  # excluded (it is a partition candidate)
        assert 5.0 not in stored  # below the global threshold
        assert 50.0 in stored

    def test_misaligned_arrival_orders_grouped_by_slide(self):
        # Objects start at t=7 with slide 5: groups are t in [7..9], [10..14].
        objects = make_objects(random_scores(8, seed=3), start_t=7)
        savl = SAVL.build_batched(objects, batch_size=5, num_stacks=1)
        stored = {o.rank_key for o in savl.contents()}
        first_group = [o for o in objects if o.t // 5 == 1]
        second_group = [o for o in objects if o.t // 5 == 2]
        # Only per-group best objects may be stored (grouping by t // s, not
        # by position), and the newest group's best always survives.
        allowed = {top_k(first_group, 1)[0].rank_key, top_k(second_group, 1)[0].rank_key}
        assert stored <= allowed
        assert top_k(second_group, 1)[0].rank_key in stored

    def test_framework_with_appendix_c_is_exact(self, small_uniform_stream):
        from repro.baselines.brute_force import BruteForceTopK
        from repro.core.framework import SAPTopK
        from repro.core.query import TopKQuery
        from repro.core.result import results_agree

        # s > 1 activates the batched construction inside the framework.
        query = TopKQuery(n=180, k=9, s=12)
        assert results_agree(
            SAPTopK(query).run(small_uniform_stream),
            BruteForceTopK(query).run(small_uniform_stream),
        )
