"""Unit tests for the UBSA segmented S-AVL construction."""

import pytest

from repro.core.object import top_k
from repro.core.partition import UnitSummary, build_partition
from repro.savl.segmented import SegmentedSAVL
from repro.stats.dominance import k_skyband

from ..conftest import make_objects, random_scores


def _partition_with_units(scores, unit_size, k, k_unit_flags=None):
    objects = make_objects(scores)
    units = []
    index = 0
    for start in range(0, len(objects), unit_size):
        chunk = objects[start : start + unit_size]
        is_k_unit = True if k_unit_flags is None else k_unit_flags[index]
        summary = top_k(chunk, k) if is_k_unit else top_k(chunk, 1)
        units.append(
            UnitSummary(start=start, end=start + len(chunk), is_k_unit=is_k_unit, summary=summary)
        )
        index += 1
    return build_partition(0, objects, k=k, units=units)


class TestConstruction:
    def test_requires_unit_metadata(self):
        partition = build_partition(0, make_objects([1, 2, 3]), k=1)
        with pytest.raises(ValueError):
            SegmentedSAVL(partition, num_stacks=1, threshold_provider=lambda: None)

    def test_k_units_are_deferred(self):
        partition = _partition_with_units(random_scores(40, seed=0), unit_size=10, k=2)
        segmented = SegmentedSAVL(partition, num_stacks=2, threshold_provider=lambda: None)
        assert segmented.deferred_unit_count == 4
        assert segmented.scanned_unit_count == 0

    def test_non_k_units_below_threshold_are_skipped(self):
        scores = [1.0] * 10 + [50.0 + i for i in range(10)]
        partition = _partition_with_units(
            scores, unit_size=10, k=2, k_unit_flags=[False, False]
        )
        segmented = SegmentedSAVL(
            partition, num_stacks=2, threshold_provider=lambda: (10.0, 10_000)
        )
        # The first unit's maximum (1.0) falls below the threshold.
        assert segmented.skipped_units >= 1

    def test_phase_one_contains_k_unit_summaries(self):
        partition = _partition_with_units(random_scores(30, seed=1), unit_size=10, k=3)
        exclude = {o.rank_key for o in partition.topk}
        segmented = SegmentedSAVL(
            partition, num_stacks=3, threshold_provider=lambda: None, exclude_keys=exclude
        )
        stored = set()
        while True:
            obj = segmented.pop_best(0)
            if obj is None:
                break
            stored.add(obj.rank_key)
        for unit in partition.units:
            for obj in unit.summary:
                if obj.rank_key not in exclude:
                    assert obj.rank_key in stored


class TestPhaseTwo:
    def test_advance_triggers_deferred_scans(self):
        partition = _partition_with_units(random_scores(40, seed=2), unit_size=10, k=2)
        segmented = SegmentedSAVL(partition, num_stacks=2, threshold_provider=lambda: None)
        # Units 0 and 1 are scanned immediately on the first advance.
        segmented.advance(0)
        assert segmented.scanned_unit_count >= 2
        segmented.advance(25)
        assert segmented.scanned_unit_count >= 3
        segmented.advance(35)
        assert segmented.scanned_unit_count == 4

    def test_unit_scanned_before_it_starts_expiring(self):
        partition = _partition_with_units(random_scores(50, seed=3), unit_size=10, k=2)
        segmented = SegmentedSAVL(partition, num_stacks=2, threshold_provider=lambda: None)
        for expired in range(0, 50, 5):
            segmented.advance(expired)
            for deferred_index in range(segmented.deferred_unit_count):
                unit = partition.units[deferred_index]
                if expired >= unit.start:
                    # If the unit has started expiring it must be scanned.
                    assert segmented._deferred[deferred_index].scanned

    def test_full_coverage_after_all_scans(self):
        scores = random_scores(60, seed=4)
        k = 3
        partition = _partition_with_units(scores, unit_size=20, k=k)
        exclude = {o.rank_key for o in partition.topk}
        segmented = SegmentedSAVL(
            partition, num_stacks=k, threshold_provider=lambda: None, exclude_keys=exclude
        )
        segmented.advance(len(scores))
        stored = set()
        while True:
            obj = segmented.pop_best(0)
            if obj is None:
                break
            stored.add(obj.rank_key)
        skyband = {
            o.rank_key
            for o in k_skyband(partition.objects, k)
            if o.rank_key not in exclude
        }
        assert skyband <= stored


class TestPromotion:
    def test_pop_best_across_containers_is_monotone(self):
        partition = _partition_with_units(random_scores(40, seed=5), unit_size=10, k=2)
        segmented = SegmentedSAVL(partition, num_stacks=2, threshold_provider=lambda: None)
        segmented.advance(40)
        keys = []
        while True:
            obj = segmented.pop_best(0)
            if obj is None:
                break
            keys.append(obj.rank_key)
        assert keys == sorted(keys, reverse=True)

    def test_prune_expired(self):
        partition = _partition_with_units(random_scores(40, seed=6), unit_size=10, k=2)
        segmented = SegmentedSAVL(partition, num_stacks=2, threshold_provider=lambda: None)
        segmented.advance(40)
        segmented.prune_expired(watermark_t=20)
        obj = segmented.pop_best(watermark_t=20)
        assert obj is None or obj.t >= 20
