"""Unit tests for the baseline S-AVL structure."""


import pytest

from repro.core.object import StreamObject, top_k
from repro.savl.savl import SAVL
from repro.stats.dominance import k_skyband

from ..conftest import make_objects, random_scores


class TestConstruction:
    def test_needs_at_least_one_stack(self):
        with pytest.raises(ValueError):
            SAVL(num_stacks=0)

    def test_first_objects_form_new_stacks(self):
        savl = SAVL(num_stacks=3)
        # Reverse arrival order: later objects pushed first.
        for obj in reversed(make_objects([5, 6, 7])):
            assert savl.push(obj)
        assert savl.stack_count == 3
        savl.check_invariants()

    def test_object_below_all_tops_is_pruned(self):
        savl = SAVL(num_stacks=2)
        objects = make_objects([1, 8, 9])  # t=0 is the weakest and oldest
        for obj in reversed(objects):
            savl.push(obj)
        # 1 (t=0) ranks below both stack tops (8, 9) -> pruned.
        assert len(savl) == 2
        assert savl.pruned_count == 1

    def test_global_threshold_prunes(self):
        savl = SAVL(num_stacks=3, global_threshold=(5.0, 100))
        kept = savl.push(StreamObject(score=6.0, t=1))
        dropped = savl.push(StreamObject(score=4.0, t=0))
        assert kept and not dropped
        assert len(savl) == 1

    def test_build_excludes_requested_keys(self):
        objects = make_objects([5, 9, 1, 7])
        exclude = {(9.0, 1)}
        savl = SAVL.build(objects, num_stacks=2, exclude_keys=exclude)
        assert (9.0, 1) not in {o.rank_key for o in savl.contents()}

    def test_stack_invariants_on_random_input(self):
        for seed in range(5):
            objects = make_objects(random_scores(200, seed=seed))
            savl = SAVL.build(objects, num_stacks=4)
            savl.check_invariants()


class TestSkybandCoverage:
    """S-AVL must keep every local k-skyband object (false positives allowed)."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_contains_all_k_skyband_objects(self, seed, k):
        objects = make_objects(random_scores(120, seed=seed))
        exclude = {o.rank_key for o in top_k(objects, k)}
        savl = SAVL.build(objects, num_stacks=k, exclude_keys=exclude)
        stored = {o.rank_key for o in savl.contents()}
        skyband = {
            o.rank_key for o in k_skyband(objects, k) if o.rank_key not in exclude
        }
        assert skyband <= stored

    def test_decreasing_stream_keeps_everything(self):
        objects = make_objects([100 - i for i in range(50)])
        savl = SAVL.build(objects, num_stacks=3)
        # On a decreasing stream nothing is locally dominated.
        assert len(savl) == 50


class TestPromotion:
    def test_pop_best_returns_objects_in_rank_order(self):
        objects = make_objects(random_scores(60, seed=3))
        savl = SAVL.build(objects, num_stacks=4)
        popped = []
        while True:
            obj = savl.pop_best(watermark_t=0)
            if obj is None:
                break
            popped.append(obj)
        keys = [o.rank_key for o in popped]
        assert keys == sorted(keys, reverse=True)
        assert len(savl) == 0

    def test_pop_best_skips_expired_entries(self):
        objects = make_objects([10, 1, 2, 3])
        savl = SAVL.build(objects, num_stacks=2)
        # Expire the first object (t=0, the highest score).
        best = savl.pop_best(watermark_t=1)
        assert best is not None and best.t != 0

    def test_pop_best_empty(self):
        savl = SAVL(num_stacks=2)
        assert savl.pop_best(watermark_t=0) is None

    def test_peek_best_does_not_remove(self):
        objects = make_objects([4, 9, 2])
        savl = SAVL.build(objects, num_stacks=2)
        key = savl.peek_best(watermark_t=0)
        assert key is not None
        assert savl.peek_best(watermark_t=0) == key
        popped = savl.pop_best(watermark_t=0)
        assert popped.rank_key == key

    def test_peek_best_discards_expired_tops(self):
        objects = make_objects([10, 1, 2])
        savl = SAVL.build(objects, num_stacks=2)
        key = savl.peek_best(watermark_t=1)
        assert key is None or key[1] >= 1


class TestExpiry:
    def test_prune_expired_removes_only_expired(self):
        objects = make_objects(random_scores(80, seed=4))
        savl = SAVL.build(objects, num_stacks=3)
        before = {o.rank_key for o in savl.contents()}
        savl.prune_expired(watermark_t=40)
        after = {o.rank_key for o in savl.contents()}
        assert all(key[1] >= 40 for key in after)
        assert after <= before
        savl.check_invariants()

    def test_prune_expired_everything(self):
        objects = make_objects([3, 2, 1])
        savl = SAVL.build(objects, num_stacks=2)
        savl.prune_expired(watermark_t=100)
        assert len(savl) == 0
