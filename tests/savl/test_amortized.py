"""Unit tests for the amortized proactive S-AVL formation."""

import pytest

from repro.core.partition import build_partition
from repro.savl.amortized import AmortizedSAVLBuilder
from repro.savl.savl import SAVL
from repro.stats.dominance import k_skyband

from ..conftest import make_objects, random_scores


def _partition(scores, k):
    return build_partition(0, make_objects(scores), k=k)


class TestBuilder:
    def test_requires_positive_stacks(self):
        with pytest.raises(ValueError):
            AmortizedSAVLBuilder(_partition([1, 2, 3], 1), num_stacks=0)

    def test_step_consumes_requested_count(self):
        partition = _partition(random_scores(50, seed=1), k=3)
        builder = AmortizedSAVLBuilder(partition, num_stacks=3)
        assert builder.remaining == 50
        assert builder.step(10) == 10
        assert builder.scanned == 10
        assert builder.remaining == 40
        assert not builder.done

    def test_step_beyond_end(self):
        partition = _partition(random_scores(10, seed=2), k=2)
        builder = AmortizedSAVLBuilder(partition, num_stacks=2)
        assert builder.step(100) == 10
        assert builder.done
        assert builder.step(5) == 0

    def test_step_zero_is_noop(self):
        partition = _partition(random_scores(10, seed=3), k=2)
        builder = AmortizedSAVLBuilder(partition, num_stacks=2)
        assert builder.step(0) == 0
        assert builder.scanned == 0

    def test_finish_completes_construction(self):
        partition = _partition(random_scores(30, seed=4), k=2)
        builder = AmortizedSAVLBuilder(partition, num_stacks=2)
        builder.step(7)
        savl = builder.finish()
        assert builder.done
        assert isinstance(savl, SAVL)

    def test_incremental_build_matches_one_shot_build(self):
        """Building in many small steps must store exactly the same objects
        as the one-shot SAVL.build used by the lazy policy."""
        scores = random_scores(80, seed=5)
        k = 4
        partition = _partition(scores, k=k)
        exclude = {o.rank_key for o in partition.topk}

        builder = AmortizedSAVLBuilder(partition, num_stacks=k, exclude_keys=exclude)
        while not builder.done:
            builder.step(7)
        incremental = {o.rank_key for o in builder.finish().contents()}

        one_shot = SAVL.build(partition.objects, num_stacks=k, exclude_keys=exclude)
        assert incremental == {o.rank_key for o in one_shot.contents()}

    def test_result_covers_local_skyband(self):
        scores = random_scores(60, seed=6)
        k = 3
        partition = _partition(scores, k=k)
        exclude = {o.rank_key for o in partition.topk}
        builder = AmortizedSAVLBuilder(partition, num_stacks=k, exclude_keys=exclude)
        builder.step(20)
        savl = builder.finish()
        stored = {o.rank_key for o in savl.contents()}
        skyband = {
            o.rank_key for o in k_skyband(partition.objects, k) if o.rank_key not in exclude
        }
        assert skyband <= stored

    def test_global_threshold_applied(self):
        partition = _partition([1.0, 50.0, 2.0, 60.0, 3.0], k=1)
        builder = AmortizedSAVLBuilder(
            partition, num_stacks=2, global_threshold=(10.0, 10_000)
        )
        savl = builder.finish()
        assert all(o.score >= 10.0 for o in savl.contents())


class TestFrameworkAmortizedPolicy:
    def test_amortized_policy_is_exact(self, small_uniform_stream):
        from repro.baselines.brute_force import BruteForceTopK
        from repro.core.framework import SAPTopK
        from repro.core.query import TopKQuery
        from repro.core.result import results_agree

        query = TopKQuery(n=150, k=7, s=10)
        sap = SAPTopK(query, meaningful_policy="amortized")
        reference = BruteForceTopK(query)
        assert results_agree(sap.run(small_uniform_stream), reference.run(small_uniform_stream))

    def test_amortized_policy_is_exact_on_decreasing_stream(self, decreasing_stream):
        from repro.baselines.brute_force import BruteForceTopK
        from repro.core.framework import SAPTopK
        from repro.core.query import TopKQuery
        from repro.core.result import results_agree

        query = TopKQuery(n=120, k=6, s=6)
        sap = SAPTopK(query, meaningful_policy="amortized")
        reference = BruteForceTopK(query)
        assert results_agree(sap.run(decreasing_stream), reference.run(decreasing_stream))

    def test_builder_progress_spread_over_slides(self, small_uniform_stream):
        """While the front partition expires, the next partition's S-AVL is
        built incrementally rather than in one final burst."""
        from repro.core.framework import SAPTopK
        from repro.core.query import TopKQuery
        from repro.core.window import slides_for_query
        from repro.partitioning import EqualPartitioner

        query = TopKQuery(n=200, k=5, s=10)
        sap = SAPTopK(
            query, partitioner=EqualPartitioner(m=2), meaningful_policy="amortized"
        )
        progress_seen = False
        for event in slides_for_query(small_uniform_stream, query):
            sap.process_slide(event)
            builder = sap._amortized_builder
            if builder is not None and 0 < builder.scanned < len(builder.partition):
                progress_seen = True
        assert progress_seen
