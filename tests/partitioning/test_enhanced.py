"""Unit tests for the enhanced dynamic partitioner (TBUI + unit summaries)."""

from repro.core.object import top_k
from repro.core.query import TopKQuery
from repro.partitioning.base import PartitionContext
from repro.partitioning.enhanced import EnhancedDynamicPartitioner

from ..conftest import make_objects, random_scores


def _bind(partitioner, query, reference_scores=None):
    scores = list(reference_scores or [])

    def provider(count):
        return sorted(scores, reverse=True)[:count]

    partitioner.bind(query, PartitionContext(provider))
    return partitioner


def _drive(partitioner, stream, s):
    specs = []
    for start in range(0, len(stream), s):
        specs.extend(partitioner.observe(stream[start : start + s]))
    return specs


class TestUnitSummaries:
    def test_every_sealed_partition_carries_units(self):
        query = TopKQuery(n=400, k=4, s=4)
        partitioner = _bind(
            EnhancedDynamicPartitioner(), query, reference_scores=[0.0] * 40
        )
        stream = make_objects([10.0 + s for s in random_scores(1200, seed=1)])
        specs = _drive(partitioner, stream, query.s)
        assert specs
        for spec in specs:
            assert spec.units is not None
            assert sum(unit.size for unit in spec.units) == spec.size

    def test_unit_ranges_tile_the_partition(self):
        query = TopKQuery(n=400, k=4, s=4)
        partitioner = _bind(
            EnhancedDynamicPartitioner(), query, reference_scores=[1000.0] * 40
        )
        stream = make_objects(random_scores(1600, seed=2))
        specs = _drive(partitioner, stream, query.s)
        for spec in specs:
            offset = 0
            for unit in spec.units:
                assert unit.start == offset
                offset = unit.end
            assert offset == spec.size

    def test_k_unit_summary_is_true_topk_of_the_unit(self):
        query = TopKQuery(n=400, k=4, s=4)
        partitioner = _bind(
            EnhancedDynamicPartitioner(), query, reference_scores=[1000.0] * 40
        )
        stream = make_objects(random_scores(1600, seed=3))
        specs = _drive(partitioner, stream, query.s)
        for spec in specs:
            for unit in spec.units:
                chunk = spec.objects[unit.start : unit.end]
                if unit.is_k_unit:
                    assert unit.summary == top_k(chunk, query.k)
                else:
                    assert unit.summary == top_k(chunk, 1)

    def test_uniform_stream_demotes_most_units(self):
        """On a stable uniform stream Theorem 2 applies to almost every unit:
        the following unit always has >= k objects above the threshold, so
        interior units end up labelled non-k-units."""
        query = TopKQuery(n=900, k=3, s=3)
        partitioner = _bind(
            EnhancedDynamicPartitioner(), query, reference_scores=[1000.0] * 30
        )
        stream = make_objects(random_scores(4000, seed=4))
        specs = _drive(partitioner, stream, query.s)
        units = [unit for spec in specs for unit in spec.units]
        assert len(units) >= 4
        non_k = sum(1 for unit in units if not unit.is_k_unit)
        assert non_k >= len(units) // 2

    def test_downtrend_keeps_k_units(self):
        """A steadily decreasing stream never demotes units (the next unit
        never has k objects above the previous threshold), mirroring the
        paper's Figure 7 narrative."""
        query = TopKQuery(n=400, k=4, s=4)
        partitioner = _bind(
            EnhancedDynamicPartitioner(), query, reference_scores=[10_000.0] * 40
        )
        stream = make_objects([100_000.0 - 10.0 * i for i in range(1600)])
        specs = _drive(partitioner, stream, query.s)
        units = [unit for spec in specs for unit in spec.units]
        assert units
        assert all(unit.is_k_unit for unit in units)


class TestSealingParity:
    def test_same_partition_sizes_as_dynamic_parent(self):
        """The enhanced partitioner sizes partitions exactly like the plain
        dynamic partitioner; only the attached metadata differs."""
        from repro.partitioning.dynamic import DynamicPartitioner

        query = TopKQuery(n=400, k=4, s=4)
        reference = random_scores(50, seed=5)
        stream = make_objects(random_scores(2000, seed=6))
        enhanced = _bind(EnhancedDynamicPartitioner(), query, reference)
        dynamic = _bind(DynamicPartitioner(), query, reference)
        enhanced_sizes = [spec.size for spec in _drive(enhanced, stream, query.s)]
        dynamic_sizes = [spec.size for spec in _drive(dynamic, stream, query.s)]
        assert enhanced_sizes == dynamic_sizes
