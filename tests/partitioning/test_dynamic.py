"""Unit tests for the WRT-driven dynamic partitioner."""

from repro.core.query import TopKQuery
from repro.partitioning.base import PartitionContext
from repro.partitioning.dynamic import DynamicPartitioner

from ..conftest import make_objects, random_scores


def _bind(partitioner, query, reference_scores=None):
    scores = list(reference_scores or [])

    def provider(count):
        return sorted(scores, reverse=True)[:count]

    partitioner.bind(query, PartitionContext(provider))
    return partitioner


class TestConfiguration:
    def test_unit_size_is_l_min(self):
        query = TopKQuery(n=900, k=9, s=3)
        partitioner = _bind(DynamicPartitioner(), query)
        assert partitioner.unit_size == query.l_min

    def test_l_max_within_window(self):
        query = TopKQuery(n=900, k=9, s=3)
        partitioner = _bind(DynamicPartitioner(), query)
        assert partitioner.unit_size <= partitioner.l_max <= query.n


class TestSealingBehaviour:
    def test_first_unit_never_sealed_alone(self):
        query = TopKQuery(n=400, k=4, s=4)
        partitioner = _bind(DynamicPartitioner(), query)
        unit = partitioner.unit_size
        specs = partitioner.observe(make_objects(random_scores(unit, seed=1)))
        assert specs == []
        assert partitioner.pending_count() == unit

    def test_partitions_grow_when_scores_similar_to_reference(self):
        query = TopKQuery(n=400, k=4, s=4)
        # Reference candidates clearly larger than the stream: the pending
        # partition's top-k never "wins", so units keep merging until l_max.
        partitioner = _bind(
            DynamicPartitioner(), query, reference_scores=[1000.0 - i for i in range(50)]
        )
        unit = partitioner.unit_size
        stream = make_objects(random_scores(6 * unit, seed=2))
        specs = []
        for start in range(0, len(stream), query.s):
            specs.extend(partitioner.observe(stream[start : start + query.s]))
        for spec in specs:
            assert spec.size > unit

    def test_partitions_sealed_small_when_stream_beats_reference(self):
        query = TopKQuery(n=400, k=4, s=4)
        # Reference candidates clearly smaller than the stream: every new
        # unit triggers a seal, so partitions stay one unit long.
        partitioner = _bind(
            DynamicPartitioner(), query, reference_scores=[0.001 * i for i in range(50)]
        )
        unit = partitioner.unit_size
        stream = make_objects([100.0 + s for s in random_scores(6 * unit, seed=3)])
        specs = []
        for start in range(0, len(stream), query.s):
            specs.extend(partitioner.observe(stream[start : start + query.s]))
        assert specs, "expected at least one sealed partition"
        assert all(spec.size == unit for spec in specs)

    def test_partition_never_exceeds_l_max(self):
        query = TopKQuery(n=400, k=4, s=4)
        partitioner = _bind(
            DynamicPartitioner(), query, reference_scores=[1000.0] * 50
        )
        stream = make_objects(random_scores(1200, seed=4))
        specs = []
        for start in range(0, len(stream), query.s):
            specs.extend(partitioner.observe(stream[start : start + query.s]))
        for spec in specs:
            assert spec.size <= partitioner.l_max

    def test_partition_sizes_are_unit_multiples(self):
        query = TopKQuery(n=300, k=3, s=3)
        partitioner = _bind(DynamicPartitioner(), query, reference_scores=random_scores(60, 5))
        stream = make_objects(random_scores(900, seed=6))
        specs = []
        for start in range(0, len(stream), query.s):
            specs.extend(partitioner.observe(stream[start : start + query.s]))
        unit = partitioner.unit_size
        assert all(spec.size % unit == 0 for spec in specs)

    def test_sealed_objects_preserve_stream_order(self):
        query = TopKQuery(n=300, k=3, s=3)
        partitioner = _bind(DynamicPartitioner(), query, reference_scores=random_scores(60, 7))
        stream = make_objects(random_scores(900, seed=8))
        sealed_ids = []
        for start in range(0, len(stream), query.s):
            for spec in partitioner.observe(stream[start : start + query.s]):
                sealed_ids.extend(o.t for o in spec.objects)
        assert sealed_ids == sorted(sealed_ids)
        assert sealed_ids == list(range(len(sealed_ids)))

    def test_no_unit_metadata_for_plain_dynamic(self):
        query = TopKQuery(n=300, k=3, s=3)
        partitioner = _bind(DynamicPartitioner(), query, reference_scores=[0.0] * 30)
        stream = make_objects([50.0 + s for s in random_scores(900, seed=9)])
        for start in range(0, len(stream), query.s):
            for spec in partitioner.observe(stream[start : start + query.s]):
                assert spec.units is None

    def test_force_seal_includes_partial_unit(self):
        query = TopKQuery(n=300, k=3, s=3)
        partitioner = _bind(DynamicPartitioner(), query)
        partitioner.observe(make_objects(random_scores(100, seed=10)))
        pending_before = partitioner.pending_count()
        spec = partitioner.force_seal()
        assert spec is not None and spec.size == pending_before
        assert partitioner.pending_count() == 0
