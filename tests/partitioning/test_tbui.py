"""Unit tests for the TBUI threshold / k-unit identification state machine."""

import math
import random

import pytest

from repro.partitioning.tbui import TBUIState
from repro.stats.solvers import zeta_star


class TestInitialisation:
    def test_initial_state(self):
        state = TBUIState(k=5)
        assert state.tau == -math.inf
        assert state.initializing
        assert state.above_count == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TBUIState(k=0)

    def test_threshold_set_after_enough_observations(self):
        state = TBUIState(k=3)
        needed = 2 * state.zeta_star
        for i in range(needed):
            state.observe(float(i))
        assert state.tau > -math.inf
        # Only the scores above the new threshold remain buffered.
        assert state.above_count <= state.zeta_star


class TestUnitCompletion:
    def test_unit_with_many_high_scores_reports_count_at_least_k(self):
        state = TBUIState(k=3)
        for i in range(3 * state.zeta_star):
            state.observe(100.0 + i)
        count = state.complete_unit()
        assert count >= state.k
        assert not state.initializing

    def test_downtrend_resets_threshold(self):
        state = TBUIState(k=3)
        # First unit: high scores establish a high threshold.
        for i in range(3 * state.zeta_star):
            state.observe(100.0 + i)
        state.complete_unit()
        tau_after_first = state.tau
        assert tau_after_first > -math.inf
        # Second unit: scores collapse, almost nothing exceeds tau.
        for i in range(50):
            state.observe(1.0 + 0.01 * i)
        count = state.complete_unit()
        assert count < state.k
        assert state.initializing
        assert state.tau == -math.inf

    def test_buffer_resets_between_units(self):
        state = TBUIState(k=2)
        for i in range(10):
            state.observe(float(i))
        state.complete_unit()
        assert state.above_count == 0

    def test_uptrend_refreshes_threshold_mid_unit(self):
        state = TBUIState(k=2)
        # Establish the threshold with a first unit.
        for i in range(2 * state.zeta_star):
            state.observe(10.0 + i)
        state.complete_unit()
        refreshes_before = state.refresh_count
        # A strong uptrend floods the buffer past max(2ζ*, ζ_max).
        for i in range(3 * max(2 * state.zeta_star, state.zeta_max)):
            state.observe(1000.0 + i)
        assert state.refresh_count > refreshes_before


class TestStatisticalBehaviour:
    def test_stable_distribution_keeps_units_above_k(self):
        """Theorem 3: with similar score distributions, each unit has at
        least k (and fewer than ζ_max) objects above the threshold with very
        high probability."""
        rng = random.Random(5)
        state = TBUIState(k=5)
        unit_size = 500
        counts = []
        for _ in range(8):
            for _ in range(unit_size):
                state.observe(rng.uniform(0, 100))
            counts.append(state.complete_unit())
        # Skip the first unit (threshold initialisation happens inside it).
        assert all(count >= state.k for count in counts[1:])
        assert all(count <= 3 * state.zeta_max for count in counts[1:])

    def test_zeta_star_consistency(self):
        state = TBUIState(k=10)
        assert state.zeta_star == zeta_star(10)
        assert state.zeta_max > state.zeta_star
