"""Unit tests for the equal partitioner."""

import pytest

from repro.core.exceptions import InvalidPartitionError
from repro.core.query import TopKQuery
from repro.partitioning.base import PartitionContext
from repro.partitioning.equal import EqualPartitioner

from ..conftest import make_objects


def _bind(partitioner, query):
    partitioner.bind(query, PartitionContext(lambda count: []))
    return partitioner


class TestConfiguration:
    def test_default_resolution_is_m_star(self):
        query = TopKQuery(n=10_000, k=100, s=10)
        partitioner = _bind(EqualPartitioner(), query)
        assert partitioner.partition_size == pytest.approx(
            query.n / query.m_star, abs=query.s
        )

    def test_partition_size_multiple_of_slide(self):
        query = TopKQuery(n=1_000, k=7, s=13)
        partitioner = _bind(EqualPartitioner(m=9), query)
        assert partitioner.partition_size % query.s == 0

    def test_partition_size_at_least_max_s_k(self):
        query = TopKQuery(n=1_000, k=300, s=10)
        partitioner = _bind(EqualPartitioner(m=50), query)
        assert partitioner.partition_size >= max(query.s, query.k)

    def test_negative_resolution_rejected(self):
        with pytest.raises(InvalidPartitionError):
            EqualPartitioner(m=-1)

    def test_name_reflects_resolution(self):
        query = TopKQuery(n=100, k=5, s=5)
        partitioner = _bind(EqualPartitioner(m=4), query)
        assert "m=4" in partitioner.name


class TestSealing:
    def test_seals_fixed_size_partitions(self):
        query = TopKQuery(n=100, k=5, s=10)
        partitioner = _bind(EqualPartitioner(m=5), query)
        specs = partitioner.observe(make_objects(range(100)))
        assert len(specs) == 100 // partitioner.partition_size
        assert all(spec.size == partitioner.partition_size for spec in specs)

    def test_pending_objects_keep_arrival_order(self):
        query = TopKQuery(n=100, k=5, s=10)
        partitioner = _bind(EqualPartitioner(m=5), query)
        partitioner.observe(make_objects(range(25)))
        pending = partitioner.pending_objects()
        assert [o.t for o in pending] == sorted(o.t for o in pending)

    def test_incremental_batches_accumulate(self):
        query = TopKQuery(n=100, k=5, s=10)
        partitioner = _bind(EqualPartitioner(m=5), query)
        size = partitioner.partition_size
        sealed = []
        objects = make_objects(range(200))
        for start in range(0, 200, 10):
            sealed.extend(partitioner.observe(objects[start : start + 10]))
        assert len(sealed) == 200 // size
        # Sealed objects plus pending objects equal the full stream.
        total = sum(spec.size for spec in sealed) + partitioner.pending_count()
        assert total == 200

    def test_force_seal_drains_pending(self):
        query = TopKQuery(n=100, k=5, s=10)
        partitioner = _bind(EqualPartitioner(m=5), query)
        partitioner.observe(make_objects(range(15)))
        spec = partitioner.force_seal()
        assert spec is not None and spec.size == 15
        assert partitioner.pending_count() == 0
        assert partitioner.force_seal() is None

    def test_no_unit_metadata(self):
        query = TopKQuery(n=40, k=2, s=10)
        partitioner = _bind(EqualPartitioner(m=2), query)
        specs = partitioner.observe(make_objects(range(40)))
        assert all(spec.units is None for spec in specs)
