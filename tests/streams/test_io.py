"""Unit tests for the CSV stream loader."""

import pytest

from repro.core.query import TopKQuery
from repro.core.framework import SAPTopK
from repro.baselines.brute_force import BruteForceTopK
from repro.core.result import results_agree
from repro.streams.io import CSVStream


@pytest.fixture
def trades_csv(tmp_path):
    path = tmp_path / "trades.csv"
    lines = ["time,price,volume"]
    for t in range(120):
        lines.append(f"{t * 2},{10 + (t % 7)},{100 + t}")
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestCSVStream:
    def test_requires_exactly_one_score_source(self, trades_csv):
        with pytest.raises(ValueError):
            CSVStream(trades_csv)
        with pytest.raises(ValueError):
            CSVStream(trades_csv, score_column="price", preference=lambda row: 1.0)

    def test_score_column(self, trades_csv):
        stream = CSVStream(trades_csv, score_column="price")
        objects = stream.take(5)
        assert [o.score for o in objects] == [10.0, 11.0, 12.0, 13.0, 14.0]
        assert [o.t for o in objects] == [0, 1, 2, 3, 4]

    def test_preference_function(self, trades_csv):
        stream = CSVStream(
            trades_csv, preference=lambda row: float(row["price"]) * float(row["volume"])
        )
        first = stream.take(1)[0]
        assert first.score == 10.0 * 100.0
        assert first.payload["volume"] == "100"

    def test_timestamp_column(self, trades_csv):
        stream = CSVStream(trades_csv, score_column="price", timestamp_column="time")
        objects = stream.take(3)
        assert [o.timestamp for o in objects] == [0, 2, 4]
        assert [o.arrival_time for o in objects] == [0, 2, 4]

    def test_missing_score_column(self, trades_csv):
        stream = CSVStream(trades_csv, score_column="nope")
        with pytest.raises(KeyError):
            stream.take(1)

    def test_take_without_count_reads_everything(self, trades_csv):
        assert len(CSVStream(trades_csv, score_column="price").take()) == 120

    def test_end_to_end_query_over_csv(self, trades_csv):
        stream = CSVStream(
            trades_csv, preference=lambda row: float(row["price"]) * float(row["volume"])
        )
        objects = stream.take()
        query = TopKQuery(n=40, k=3, s=10)
        assert results_agree(
            SAPTopK(query).run(objects), BruteForceTopK(query).run(objects)
        )
