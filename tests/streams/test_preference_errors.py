"""Regression tests: unscorable records are dropped, never stream-fatal.

The original bug: a zero-duration taxi trip arriving mid-stream made
``trip_preference`` raise a bare ValueError out of the source generator,
killing a continuous query that may have been running for days.  The
contract now is drop-with-counter: sources skip records that raise
:class:`PreferenceError`, count them (instance attribute plus the
``repro_preference_dropped_total`` instrument), and keep the admitted
arrival orders contiguous so count-based windows stay well-formed.
"""

import pytest

from repro.obs.registry import get_registry
from repro.streams import (
    CSVStream,
    ListSource,
    PreferenceError,
    TaxiTrip,
    linear_preference,
    trip_preference,
)


def _dropped_total(source_name):
    return sum(
        record["value"]
        for record in get_registry().snapshot()
        if record["name"] == "repro_preference_dropped_total"
        and record.get("labels", {}).get("source") == source_name
    )


def trip(pickup, dropoff, distance=2.0):
    return TaxiTrip(taxi_id=1, pickup_time=pickup, dropoff_time=dropoff, distance=distance)


class TestTripPreference:
    def test_zero_duration_raises_preference_error(self):
        with pytest.raises(PreferenceError):
            trip_preference(trip(10.0, 10.0))

    def test_negative_duration_raises_preference_error(self):
        with pytest.raises(PreferenceError):
            trip_preference(trip(10.0, 9.0))

    def test_preference_error_is_a_value_error(self):
        # Callers that caught the original ValueError keep working.
        with pytest.raises(ValueError):
            trip_preference(trip(10.0, 10.0))

    def test_valid_trip_scores_speed(self):
        assert trip_preference(trip(0.0, 0.5, distance=10.0)) == pytest.approx(20.0)


class TestListSourceDrops:
    def test_bad_records_dropped_mid_stream(self):
        trips = [trip(0.0, 1.0), trip(1.0, 1.0), trip(2.0, 3.0), trip(3.0, 3.0)]
        source = ListSource(trips, preference=trip_preference, name="trips-test")
        objects = source.take(len(trips))
        assert len(objects) == 2
        assert source.dropped == 2

    def test_admitted_arrival_orders_stay_contiguous(self):
        trips = [trip(0.0, 1.0), trip(1.0, 1.0), trip(2.0, 4.0), trip(4.0, 4.0), trip(5.0, 7.0)]
        source = ListSource(trips, preference=trip_preference)
        objects = source.take(len(trips))
        assert [o.t for o in objects] == [0, 1, 2]

    def test_drop_counter_instrument_increments(self):
        name = "drop-counter-probe"
        before = _dropped_total(name)
        source = ListSource([trip(0.0, 0.0)], preference=trip_preference, name=name)
        assert source.take(1) == []
        assert _dropped_total(name) == before + 1

    def test_non_preference_exceptions_still_propagate(self):
        def broken(record):
            raise RuntimeError("a bug, not a bad record")

        source = ListSource([1.0], preference=broken)
        with pytest.raises(RuntimeError):
            source.take(1)


class TestCSVStreamDrops:
    @pytest.fixture()
    def trips_csv(self, tmp_path):
        path = tmp_path / "trips.csv"
        path.write_text(
            "pickup,dropoff,distance\n"
            "0.0,1.0,5.0\n"
            "1.0,1.0,3.0\n"  # zero duration: dropped
            "2.0,4.0,6.0\n"
        )
        return str(path)

    def test_bad_rows_dropped_with_counter(self, trips_csv):
        def row_speed(row):
            return trip_preference(
                trip(float(row["pickup"]), float(row["dropoff"]), float(row["distance"]))
            )

        source = CSVStream(trips_csv, preference=row_speed)
        objects = source.take()
        assert [o.t for o in objects] == [0, 1]
        assert [o.score for o in objects] == [pytest.approx(5.0), pytest.approx(3.0)]
        assert source.dropped == 1


class TestLinearPreference:
    def test_scores_attribute_records(self):
        score = linear_preference([1.0, 0.5])
        assert score({"attributes": [2.0, 4.0]}) == pytest.approx(4.0)

    def test_unattributed_record_raises_preference_error(self):
        score = linear_preference([1.0, 0.5])
        with pytest.raises(PreferenceError):
            score({"attributes": [2.0]})  # wrong dimensionality
        with pytest.raises(PreferenceError):
            score(object())  # no attributes at all

    def test_matches_cluster_plane_scorer(self):
        from repro.core.clustering import linear_score

        weights = (0.3, 0.0, 1.7)
        attrs = (1.5, 9.9, 2.25)
        assert linear_preference(weights)({"attributes": list(attrs)}) == linear_score(
            weights, attrs
        )
