"""Unit tests for stream sources and the dataset registry."""

import pytest

from repro.core.object import StreamObject
from repro.streams import (
    DriftingStream,
    ListSource,
    PlanetStream,
    RandomWalkStream,
    StockStream,
    TimeCorrelatedStream,
    TripStream,
    UncorrelatedStream,
    dataset_names,
    make_dataset,
    materialise,
)


ALL_GENERATORS = [
    StockStream(seed=1),
    TripStream(seed=1),
    PlanetStream(seed=1),
    TimeCorrelatedStream(period=100, seed=1),
    UncorrelatedStream(seed=1),
    RandomWalkStream(seed=1),
    DriftingStream(phase=50, seed=1),
]


class TestCommonContract:
    @pytest.mark.parametrize("source", ALL_GENERATORS, ids=lambda s: s.name)
    def test_produces_requested_count(self, source):
        objects = source.take(250)
        assert len(objects) == 250

    @pytest.mark.parametrize("source", ALL_GENERATORS, ids=lambda s: s.name)
    def test_arrival_orders_sequential(self, source):
        objects = source.take(100)
        assert [o.t for o in objects] == list(range(100))

    @pytest.mark.parametrize("source", ALL_GENERATORS, ids=lambda s: s.name)
    def test_deterministic_for_fixed_seed(self, source):
        first = [o.score for o in source.take(50)]
        second = [o.score for o in source.take(50)]
        assert first == second

    @pytest.mark.parametrize("source", ALL_GENERATORS, ids=lambda s: s.name)
    def test_scores_are_finite_floats(self, source):
        for obj in source.take(200):
            assert isinstance(obj.score, float)
            assert obj.score == obj.score  # not NaN
            assert abs(obj.score) < 1e12


class TestListSourceAndMaterialise:
    def test_list_source_scores(self):
        source = ListSource([3, 1, 2])
        objects = source.take(10)
        assert [o.score for o in objects] == [3.0, 1.0, 2.0]
        assert len(source) == 3

    def test_list_source_with_preference(self):
        source = ListSource([{"v": 2}, {"v": 5}], preference=lambda r: r["v"] * 10)
        assert [o.score for o in source.take(2)] == [20.0, 50.0]

    def test_materialise_assigns_sequential_t(self):
        objects = materialise([1.0, 2.0], start_t=5)
        assert [(o.score, o.t) for o in objects] == [(1.0, 5), (2.0, 6)]


class TestDistributionShapes:
    def test_timer_scores_follow_sine(self):
        import math

        source = TimeCorrelatedStream(period=100, noise=0.0)
        objects = source.take(200)
        assert objects[50].score == pytest.approx(math.sin(math.pi * 0.5))
        assert objects[150].score == pytest.approx(math.sin(math.pi * 1.5))

    def test_timer_contains_monotone_runs(self):
        source = TimeCorrelatedStream(period=400, noise=0.0)
        objects = source.take(400)
        first_quarter = [o.score for o in objects[:100]]
        assert first_quarter == sorted(first_quarter)

    def test_timeu_scores_within_bounds(self):
        source = UncorrelatedStream(low=10.0, high=20.0, seed=2)
        assert all(10.0 <= o.score <= 20.0 for o in source.take(500))

    def test_stock_scores_positive_and_heavy_tailed(self):
        objects = StockStream(seed=3).take(2000)
        scores = sorted(o.score for o in objects)
        assert scores[0] > 0
        # Heavy tail: the max is far above the median.
        assert scores[-1] > 10 * scores[len(scores) // 2]

    def test_trip_scores_are_positive_speeds(self):
        assert all(o.score > 0 for o in TripStream(seed=4).take(1000))

    def test_planet_scores_are_distances(self):
        assert all(o.score >= 0 for o in PlanetStream(seed=5).take(1000))

    def test_payloads_attached(self):
        stock = StockStream(seed=6).take(5)[0]
        assert stock.payload is not None and stock.payload.price > 0
        trip = TripStream(seed=6).take(5)[0]
        assert trip.payload.dropoff_time > trip.payload.pickup_time


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimeCorrelatedStream(period=0)
        with pytest.raises(ValueError):
            UncorrelatedStream(low=1.0, high=1.0)
        with pytest.raises(ValueError):
            RandomWalkStream(low=5.0, high=5.0)
        with pytest.raises(ValueError):
            StockStream(stocks=0)
        with pytest.raises(ValueError):
            TripStream(taxis=0)
        with pytest.raises(ValueError):
            PlanetStream(clusters=0)
        with pytest.raises(ValueError):
            DriftingStream(phase=0)
        with pytest.raises(ValueError):
            DriftingStream(low_mean=0.7, high_mean=0.3)


class TestRegistry:
    def test_names_match_paper(self):
        # The paper's five datasets first, then the library's extensions.
        assert dataset_names() == ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER", "DRIFT"]

    def test_make_dataset_case_insensitive(self):
        assert make_dataset("stock").name == "STOCK"

    def test_make_dataset_unknown(self):
        with pytest.raises(KeyError):
            make_dataset("does-not-exist")

    def test_all_registered_datasets_generate(self):
        for name in dataset_names():
            objects = make_dataset(name).take(50)
            assert len(objects) == 50
            assert all(isinstance(o, StreamObject) for o in objects)
