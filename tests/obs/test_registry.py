"""The metrics registry: instruments, buckets, cardinality, collectors."""

import threading

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS,
    MAX_SERIES_PER_FAMILY,
    NOOP,
    SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
    log_linear_buckets,
    set_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", labels={"x": "1"})
        b = registry.counter("c_total", labels={"x": "1"})
        c = registry.counter("c_total", labels={"x": "2"})
        assert a is b
        assert a is not c

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", labels={"x": "1", "y": "2"})
        b = registry.counter("c_total", labels={"y": "2", "x": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))


class TestBuckets:
    def test_log_linear_125_per_decade(self):
        assert log_linear_buckets(1.0, 100.0) == (
            1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
        )

    def test_boundaries_render_cleanly(self):
        # Built by parsing decimal literals, not multiplying floats, so
        # the exposition prints 5e-06 rather than 4.999...e-06.
        assert 5e-06 in log_linear_buckets(1e-6, 10.0)
        assert all(b == float(f"{b:g}") for b in LATENCY_BUCKETS)

    def test_default_ranges(self):
        assert LATENCY_BUCKETS[0] == 1e-6 and LATENCY_BUCKETS[-1] == 10.0
        assert SIZE_BUCKETS[0] == 1.0 and SIZE_BUCKETS[-1] == 1e9

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            log_linear_buckets(10.0, 1.0)
        with pytest.raises(ValueError):
            log_linear_buckets(0.0, 1.0)

    def test_observation_lands_in_correct_bucket(self):
        # counts[i] holds values <= boundaries[i] (exclusive of the one
        # below); a value on a boundary belongs to that boundary's bucket.
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0, 99.0):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 2, 1]
        assert histogram.count == 7
        assert histogram.sum == pytest.approx(113.0)

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_quantile_interpolates_within_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            histogram.observe(1.5)  # all in the (1, 2] bucket
        assert 1.0 <= histogram.quantile(0.5) <= 2.0
        assert histogram.quantile(0.0) == 1.0

    def test_quantile_of_overflow_clamps_to_top_boundary(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_quantile_empty_is_zero(self):
        assert MetricsRegistry().histogram("h").quantile(0.95) == 0.0


class TestCardinality:
    def test_series_cap_routes_to_overflow(self):
        registry = MetricsRegistry()
        for index in range(MAX_SERIES_PER_FAMILY):
            registry.counter("fam_total", labels={"id": str(index)})
        spill_a = registry.counter("fam_total", labels={"id": "way-too-many"})
        spill_b = registry.counter("fam_total", labels={"id": "another-one"})
        assert spill_a is spill_b
        assert dict(spill_a.labels) == {"overflow": "true"}
        snapshot = registry.snapshot()
        family = [r for r in snapshot if r["name"] == "fam_total"]
        assert len(family) == MAX_SERIES_PER_FAMILY + 1

    def test_existing_series_survive_the_cap(self):
        registry = MetricsRegistry()
        first = registry.counter("fam_total", labels={"id": "0"})
        for index in range(1, MAX_SERIES_PER_FAMILY + 10):
            registry.counter("fam_total", labels={"id": str(index)})
        assert registry.counter("fam_total", labels={"id": "0"}) is first


class TestDisabledRegistry:
    def test_disabled_hands_out_noop(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c_total") is NOOP
        assert registry.gauge("g") is NOOP
        assert registry.histogram("h") is NOOP

    def test_noop_absorbs_everything(self):
        NOOP.inc()
        NOOP.dec()
        NOOP.set(5)
        NOOP.observe(1.0)
        assert NOOP.value == 0.0
        assert NOOP.quantile(0.95) == 0.0

    def test_disabled_snapshot_is_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c_total").inc()
        registry.add_collector(lambda reg: reg.counter("x_total").inc())
        assert registry.snapshot() == []


class TestCollectors:
    def test_collector_runs_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"occupancy": 17}

        def collect(reg):
            reg.gauge("occ").set(state["occupancy"])

        registry.add_collector(collect)
        assert registry.snapshot()[0]["value"] == 17.0
        state["occupancy"] = 3
        records = {r["name"]: r for r in registry.snapshot()}
        assert records["occ"]["value"] == 3.0

    def test_remove_collector(self):
        registry = MetricsRegistry()
        calls = []
        collector = calls.append
        registry.add_collector(collector)
        registry.remove_collector(collector)
        registry.snapshot()
        assert calls == []
        registry.remove_collector(collector)  # idempotent


class TestSnapshotAndDefault:
    def test_snapshot_wire_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts things", {"k": "v"}).inc(2)
        registry.histogram("h_seconds", buckets=(1.0, 2.0)).observe(1.5)
        records = {r["name"]: r for r in registry.snapshot()}
        counter = records["c_total"]
        assert counter["type"] == "counter"
        assert counter["help"] == "counts things"
        assert counter["labels"] == {"k": "v"}
        assert counter["value"] == 2.0
        histogram = records["h_seconds"]
        assert histogram["boundaries"] == [1.0, 2.0]
        assert histogram["buckets"] == [0, 1, 0]
        assert histogram["count"] == 1

    def test_set_registry_swaps_process_default(self):
        replacement = MetricsRegistry(enabled=False)
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_concurrent_creation_is_safe(self):
        registry = MetricsRegistry()
        errors = []

        def worker(tag):
            try:
                for index in range(200):
                    registry.counter("c_total", labels={"i": str(index % 20)}).inc()
            except Exception as error:  # pragma: no cover - failure path
                errors.append((tag, error))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = sum(
            r["value"] for r in registry.snapshot() if r["name"] == "c_total"
        )
        assert total == 4 * 200
