"""Exposition: Prometheus text rendering, cluster merging, snapshot queries."""

import pytest

from repro.obs.exposition import (
    find_series,
    histogram_quantile,
    merge_snapshots,
    render_prometheus,
    snapshot_value,
)
from repro.obs.registry import MetricsRegistry


def make_snapshot(**counters):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.counter(name).inc(value)
    return registry.snapshot()


class TestRenderPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", "Things.", {"kind": "x"}).inc(3)
        registry.gauge("repro_g", "Level.").set(1.5)
        text = render_prometheus(registry.snapshot())
        assert "# HELP repro_c_total Things." in text
        assert "# TYPE repro_c_total counter" in text
        assert 'repro_c_total{kind="x"} 3' in text
        assert "# TYPE repro_g gauge" in text
        assert "repro_g 1.5" in text
        assert text.endswith("\n")

    def test_histogram_expands_to_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_h", "", None, (1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        text = render_prometheus(registry.snapshot())
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 11" in text
        assert "repro_h_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", labels={"q": 'a"b\\c'}).inc()
        text = render_prometheus(registry.snapshot())
        assert 'q="a\\"b\\\\c"' in text

    def test_families_sorted_by_name(self):
        text = render_prometheus(make_snapshot(z_total=1, a_total=1))
        assert text.index("a_total") < text.index("z_total")


class TestMergeSnapshots:
    def test_counters_sum_across_processes(self):
        merged = merge_snapshots([make_snapshot(c_total=2), make_snapshot(c_total=5)])
        assert snapshot_value(merged, "c_total") == 7.0

    def test_extra_labels_keep_series_apart(self):
        merged = merge_snapshots(
            [make_snapshot(c_total=2), make_snapshot(c_total=5)],
            extra_labels=[None, {"shard": "0"}],
        )
        assert snapshot_value(merged, "c_total", {"shard": "0"}) == 5.0
        assert snapshot_value(merged, "c_total") == 7.0  # subset match sums all

    def test_histograms_merge_bucketwise(self):
        snapshots = []
        for values in ((0.5, 1.5), (1.5, 9.0)):
            registry = MetricsRegistry()
            histogram = registry.histogram("h", buckets=(1.0, 2.0))
            for value in values:
                histogram.observe(value)
            snapshots.append(registry.snapshot())
        (record,) = merge_snapshots(snapshots)
        assert record["buckets"] == [1, 2, 1]
        assert record["count"] == 4
        assert record["sum"] == pytest.approx(12.5)

    def test_mismatched_bucket_layouts_raise(self):
        snapshots = []
        for buckets in ((1.0, 2.0), (1.0, 3.0)):
            registry = MetricsRegistry()
            registry.histogram("h", buckets=buckets).observe(1.5)
            snapshots.append(registry.snapshot())
        with pytest.raises(ValueError):
            merge_snapshots(snapshots)

    def test_type_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_gauges_keep_last_writer(self):
        a = MetricsRegistry()
        a.gauge("g").set(1)
        b = MetricsRegistry()
        b.gauge("g").set(9)
        (record,) = merge_snapshots([a.snapshot(), b.snapshot()])
        assert record["value"] == 9.0

    def test_empty_and_none_snapshots_are_tolerated(self):
        merged = merge_snapshots([[], None, make_snapshot(c_total=1)])
        assert snapshot_value(merged, "c_total") == 1.0


class TestSnapshotQueries:
    def test_find_series_subset_match(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"a": "1", "b": "2"}).inc()
        registry.counter("c_total", labels={"a": "2"}).inc()
        snapshot = registry.snapshot()
        assert len(find_series(snapshot, "c_total")) == 2
        assert len(find_series(snapshot, "c_total", {"a": "1"})) == 1
        assert find_series(snapshot, "missing") == []

    def test_snapshot_value_of_histogram_is_its_sum(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.25)
        assert snapshot_value(registry.snapshot(), "h") == 0.25

    def test_histogram_quantile_matches_registry_quantile(self):
        # The snapshot-side estimator must agree with the live
        # instrument's — repro top and stats() may not drift apart.
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1e-5, 3e-4, 2e-3, 2e-3, 0.05, 0.4, 2.0):
            histogram.observe(value)
        (record,) = registry.snapshot()
        for fraction in (0.05, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert histogram_quantile(record, fraction) == pytest.approx(
                histogram.quantile(fraction)
            )

    def test_histogram_quantile_empty_is_none(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        (record,) = registry.snapshot()
        assert histogram_quantile(record, 0.95) is None
