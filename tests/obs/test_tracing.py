"""Pipeline tracing: span buffers, the wire form, and the Chrome export."""

import json

from repro.obs.tracing import (
    SPAN_CAPACITY,
    STAGES,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span_payload,
    spans_from_payload,
    to_chrome_trace,
    write_chrome_trace,
)


class TestTracer:
    def test_off_by_default(self):
        assert Tracer().enabled is False

    def test_record_and_drain(self):
        tracer = Tracer(shard=3)
        tracer.enable()
        tracer.record("push", 7, 100.0, 0.25, "objects=50")
        tracer.record("seal", 8, 101.0, 0.5)
        spans = tracer.drain()
        assert spans == [
            Span("push", 7, 100.0, 0.25, 3, "objects=50"),
            Span("seal", 8, 101.0, 0.5, 3, ""),
        ]
        assert tracer.drain() == []  # drain empties the buffer

    def test_span_context_manager_times_the_block(self):
        tracer = Tracer()
        with tracer.span("merge", 5, "members=2"):
            pass
        (span,) = tracer.drain()
        assert span.stage == "merge"
        assert span.slide == 5
        assert span.shard == -1
        assert span.duration >= 0.0

    def test_buffer_is_bounded_keeping_most_recent(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.record("push", index, float(index), 0.0)
        assert [span.slide for span in tracer.drain()] == [6, 7, 8, 9]

    def test_default_capacity(self):
        assert Tracer()._spans.maxlen == SPAN_CAPACITY

    def test_set_tracer_swaps_process_default(self):
        replacement = Tracer(shard=9)
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestWireForm:
    def test_payload_round_trip(self):
        spans = [
            Span("encode", 1, 10.0, 0.1, -1, "bytes=128"),
            Span("decode", 1, 10.2, 0.05, 2, ""),
        ]
        payload = span_payload(spans)
        assert payload[0] == {
            "stage": "encode",
            "slide": 1,
            "start": 10.0,
            "duration": 0.1,
            "shard": -1,
            "detail": "bytes=128",
        }
        # The payload must survive JSON (it crosses processes and lands
        # in trace files).
        restored = spans_from_payload(json.loads(json.dumps(payload)))
        assert restored == spans


class TestChromeTrace:
    def test_empty_trace(self):
        assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_events_are_rebased_and_labelled(self):
        spans = [
            Span("send", 4, 100.0, 0.001, -1, ""),
            Span("decode", 4, 100.5, 0.002, 1, "bytes=64"),
        ]
        document = to_chrome_trace(spans)
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        first, second = complete
        assert first["ts"] == 0.0  # rebased to the earliest span
        assert second["ts"] == 500000.0  # 0.5s later, in microseconds
        assert second["dur"] == 2000.0
        assert second["pid"] == 1
        assert second["args"] == {"slide": 4, "detail": "bytes=64"}
        # Both correlated events carry the same slide id.
        assert first["args"]["slide"] == second["args"]["slide"]

    def test_metadata_names_processes_and_stages(self):
        spans = [Span("push", 0, 1.0, 0.1, 2, "")]
        metadata = [
            e for e in to_chrome_trace(spans)["traceEvents"] if e["ph"] == "M"
        ]
        process_names = [
            e["args"]["name"] for e in metadata if e["name"] == "process_name"
        ]
        assert process_names == ["shard 2"]
        thread_names = [
            e["args"]["name"] for e in metadata if e["name"] == "thread_name"
        ]
        assert thread_names == list(STAGES)

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        spans = [Span("deliver", 3, 5.0, 0.01, 0, "q")]
        document = write_chrome_trace(spans, str(path))
        assert json.loads(path.read_text()) == document
