"""The shared percentile helpers: the library's one implementation.

Every stat surface (per-subscription collectors, the cluster merge,
serving reports) routes through these helpers, so these tests pin the
convention — nearest rank over the sorted sample — and the equivalences
the call sites rely on.
"""

import pytest

from repro.core.metrics import percentile
from repro.obs.quantiles import (
    STANDARD_FRACTIONS,
    nearest_rank,
    nearest_ranks,
    weighted_nearest_rank,
    weighted_nearest_ranks,
)


class TestNearestRank:
    def test_single_value(self):
        assert nearest_rank([7.0], 0.5) == 7.0
        assert nearest_rank([7.0], 0.0) == 7.0
        assert nearest_rank([7.0], 1.0) == 7.0

    def test_selects_by_rounded_rank(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert nearest_rank(values, 0.0) == 10.0
        assert nearest_rank(values, 0.5) == 30.0
        assert nearest_rank(values, 1.0) == 50.0

    def test_input_order_is_irrelevant(self):
        assert nearest_rank([50.0, 10.0, 30.0, 20.0, 40.0], 0.5) == 30.0

    def test_many_fractions_one_sort(self):
        values = list(range(100, 0, -1))
        assert nearest_ranks(values, STANDARD_FRACTIONS) == [
            nearest_rank(values, f) for f in STANDARD_FRACTIONS
        ]

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)

    def test_matches_core_metrics_percentile(self):
        # repro.core.metrics.percentile delegates here; the surfaces must
        # agree bit-for-bit.
        values = [0.003, 0.001, 0.009, 0.002, 0.004, 0.007]
        for fraction in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            assert percentile(values, fraction) == nearest_rank(values, fraction)


class TestWeightedNearestRank:
    def test_equal_weights_reduce_to_unweighted(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0]
        samples = [(v, 1.0) for v in values]
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert weighted_nearest_rank(samples, fraction) == nearest_rank(
                values, fraction
            )

    def test_weight_shifts_the_rank(self):
        # One heavy slow sample outweighs many light fast ones.
        samples = [(0.001, 1.0)] * 4 + [(1.0, 100.0)]
        assert weighted_nearest_rank(samples, 0.5) == 1.0
        # Unweighted, the median would be the fast value.
        assert nearest_rank([v for v, _ in samples], 0.5) == 0.001

    def test_many_fractions(self):
        samples = [(float(i), float(i)) for i in range(1, 11)]
        assert weighted_nearest_ranks(samples, (0.5, 0.99)) == [
            weighted_nearest_rank(samples, 0.5),
            weighted_nearest_rank(samples, 0.99),
        ]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_nearest_rank([], 0.5)
