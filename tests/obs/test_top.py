"""The ``repro top`` dashboard: pure rendering over snapshot documents."""

import io

from repro.obs.registry import MetricsRegistry
from repro.obs.top import render_dashboard, run_top


def make_document(ts, events=0.0, slides=0.0, shard=None, latencies=()):
    registry = MetricsRegistry()
    labels = {"shard": shard} if shard is not None else None
    registry.counter("repro_events_ingested_total", labels=labels).inc(events)
    registry.counter("repro_slides_total", labels=labels).inc(slides)
    histogram = registry.histogram("repro_deliver_latency_seconds", labels=labels)
    for value in latencies:
        histogram.observe(value)
    return {"ts": ts, "metrics": registry.snapshot()}


class TestRenderDashboard:
    def test_header_and_counters_without_previous(self):
        frame = render_dashboard(make_document(1000.0, events=500), color=False)
        assert frame.startswith("repro top")
        # No previous snapshot: every rate reads 0.
        assert "events/s 0" in frame

    def test_rates_from_two_snapshots(self):
        previous = make_document(1000.0, events=100, slides=10)
        current = make_document(1002.0, events=300, slides=20)
        frame = render_dashboard(current, previous, color=False)
        assert "events/s 100" in frame  # (300-100)/2s
        assert "slides/s 5" in frame

    def test_counter_reset_clamps_to_zero(self):
        previous = make_document(1000.0, events=500)
        current = make_document(1001.0, events=100)  # restarted process
        frame = render_dashboard(current, previous, color=False)
        assert "events/s 0" in frame

    def test_latency_quantiles_from_merged_histogram(self):
        frame = render_dashboard(
            make_document(1000.0, latencies=[0.003] * 20), color=False
        )
        assert "latency p50" in frame
        assert "ms" in frame

    def test_per_shard_table_appears_with_shard_labels(self):
        document = make_document(1000.0, events=40, shard="0")
        frame = render_dashboard(document, color=False)
        assert "shard" in frame
        assert "\n       0 " in frame  # shard row, right-aligned id

    def test_no_shard_table_without_shard_labels(self):
        frame = render_dashboard(make_document(1000.0, events=40), color=False)
        assert "shard" not in frame

    def test_color_frames_carry_ansi(self):
        assert "\x1b[1m" in render_dashboard(make_document(1000.0), color=True)
        assert "\x1b" not in render_dashboard(make_document(1000.0), color=False)

    def test_stage_table_lists_nonempty_stages(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_stage_seconds", labels={"stage": "merge"}
        ).observe(0.001)
        registry.histogram("repro_stage_seconds", labels={"stage": "idle"})
        frame = render_dashboard(
            {"ts": 1000.0, "metrics": registry.snapshot()}, color=False
        )
        assert "merge" in frame
        assert "idle" not in frame  # zero-count stages stay hidden


def make_cluster_document(ts, reranks=0.0, fallbacks=0.0, drifts=0.0, members=0):
    registry = MetricsRegistry()
    labels = {"cluster": "0", "inner": "SAP"}
    registry.counter("repro_cluster_rerank_total", labels=labels).inc(reranks)
    registry.counter("repro_cluster_fallback_total", labels=labels).inc(fallbacks)
    registry.counter("repro_cluster_drift_total", labels=labels).inc(drifts)
    registry.gauge("repro_cluster_members", labels=labels).set(members)
    return {"ts": ts, "metrics": registry.snapshot()}


class TestClusterRows:
    def test_cluster_table_appears_with_cluster_labels(self):
        frame = render_dashboard(
            make_cluster_document(1000.0, reranks=75, fallbacks=25, drifts=2, members=8),
            color=False,
        )
        assert "cluster" in frame
        assert "SAP" in frame
        assert "75.0" in frame  # lifetime hit rate %
        assert "rerank/s" in frame and "fallbk/s" in frame

    def test_cluster_rates_from_two_snapshots(self):
        previous = make_cluster_document(1000.0, reranks=100, fallbacks=0)
        current = make_cluster_document(1002.0, reranks=180, fallbacks=20)
        frame = render_dashboard(current, previous, color=False)
        assert "40" in frame  # (180-100)/2s rerank rate
        assert "10" in frame  # (20-0)/2s fallback rate

    def test_no_cluster_table_without_cluster_labels(self):
        frame = render_dashboard(make_document(1000.0, events=10), color=False)
        assert "cluster" not in frame

    def test_unanswered_cluster_shows_dash_hit_rate(self):
        frame = render_dashboard(make_cluster_document(1000.0, members=3), color=False)
        assert " - " in frame or frame.rstrip().endswith("-") or " -\n" in frame


class TestRunTop:
    def test_polls_and_renders_iterations(self, monkeypatch):
        documents = iter(
            [make_document(1000.0, events=10), make_document(1001.0, events=30)]
        )
        monkeypatch.setattr(
            "repro.obs.top.fetch_snapshot", lambda url, timeout=5.0: next(documents)
        )
        out = io.StringIO()
        frames = run_top(
            "http://x/metrics.json", interval=0.0, iterations=2, stream=out
        )
        assert frames == 2
        text = out.getvalue()
        assert text.count("repro top") == 2
        assert "events/s 20" in text  # second frame sees the delta
