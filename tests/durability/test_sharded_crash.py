"""Crash-injection on the sharded plane: SIGKILL real worker processes.

Two failure shapes the durability plane must absorb:

* one worker dies mid-stream and is revived in place by
  :meth:`ShardedStreamEngine.resurrect_shard` — the journal tail plus
  the router's retention buffer must reproduce its answer stream;
* the whole facade dies (every worker SIGKILLed, the facade abandoned)
  and a new facade boots over the same durability directory — the
  ``cluster.json`` manifest must win over the constructor's ``shards``
  argument and the workers must come back with their subscriptions.

The oracle is the same as everywhere in this suite: an uncrashed twin
ingesting the identical stream, compared answer-for-answer.
"""

import os
import signal
import time

import pytest

from repro.cluster import ShardedStreamEngine
from repro.core.object import StreamObject
from repro.engine import QuerySpec

from ..conftest import make_objects, random_scores

TRANSPORTS = ["queue", "shm"]


def _stream(count=120, seed=11):
    scores = random_scores(count, seed=seed)
    return [
        StreamObject(score=s, t=i, payload=(s / 10.0, float(i % 7)))
        for i, s in enumerate(scores)
    ]


def _subscribe_all(engine):
    engine.subscribe("plain", QuerySpec(n=20, k=3, s=5))
    engine.subscribe("mintopk", QuerySpec(n=30, k=4, s=5).using("MinTopK"))
    engine.subscribe("pref", QuerySpec(n=20, k=3, s=5).preferring((1.0, 0.5)))


def _signature(drained):
    return {
        name: [
            (
                result.slide_index,
                result.window_end,
                tuple((obj.score, obj.t) for obj in result.objects),
            )
            for result in results
        ]
        for name, results in sorted(drained.items())
    }


def _twin_signature(stream):
    with ShardedStreamEngine(2, keep_results=True) as twin:
        _subscribe_all(twin)
        twin.push_many(stream, chunk_size=10)
        twin.synchronize()
        return _signature(twin.drain_results())


def _kill_worker(engine, shard_id):
    process = engine._router._handle(shard_id).process
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=5.0)
    for _ in range(50):
        if not process.is_alive():
            return
        time.sleep(0.05)
    raise AssertionError(f"worker {shard_id} survived SIGKILL")


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_sigkilled_worker_resurrects_byte_identical(tmp_path, transport):
    stream = _stream()
    engine = ShardedStreamEngine(
        2,
        keep_results=True,
        transport=transport,
        durability_dir=str(tmp_path),
    )
    try:
        _subscribe_all(engine)
        engine.push_many(stream[:60], chunk_size=10)
        _kill_worker(engine, 1)
        status = engine.resurrect_shard(1)
        assert int(status["ingested"]) <= 60
        engine.push_many(stream[60:], chunk_size=10)
        engine.synchronize()
        assert _signature(engine.drain_results()) == _twin_signature(stream)
    finally:
        if not engine.closed:
            engine.close()


def test_resurrect_refuses_a_live_worker(tmp_path):
    from repro.cluster import ShardError

    with ShardedStreamEngine(
        2, keep_results=True, durability_dir=str(tmp_path)
    ) as engine:
        _subscribe_all(engine)
        with pytest.raises(ShardError):
            engine.resurrect_shard(0)


def test_facade_crash_manifest_wins_over_shards_argument(tmp_path):
    stream = _stream()
    crashed = ShardedStreamEngine(
        2, keep_results=True, durability_dir=str(tmp_path)
    )
    _subscribe_all(crashed)
    crashed.push_many(stream[:60], chunk_size=10)
    # the barrier guarantees every delivered chunk is journaled before
    # the massacre — chunks still in flight are the *producer's* to
    # retry, which is exactly what the serving layer's resume does
    crashed.synchronize()
    for shard_id in range(2):
        _kill_worker(crashed, shard_id)
    # abandon the facade (no close(): its workers are corpses) and boot a
    # new one with a deliberately wrong width — cluster.json must win
    revived = ShardedStreamEngine(
        1, keep_results=True, durability_dir=str(tmp_path)
    )
    try:
        assert revived.shards == 2
        assert sorted(revived.subscriptions()) == ["mintopk", "plain", "pref"]
        status = revived.durability_status()
        assert [entry["recovered_subscriptions"] for entry in status]
        assert sum(int(entry["ingested"]) for entry in status) == 2 * 60
        revived.push_many(stream[60:], chunk_size=10)
        revived.synchronize()
        assert _signature(revived.drain_results()) == _twin_signature(stream)
    finally:
        revived.close()
