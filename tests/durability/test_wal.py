"""Unit tests of the segmented write-ahead log.

The log's contract is narrow but sharp: global sequence numbers survive
rotation, truncation, and reopening; a torn tail (crash mid-append) is
silently dropped from the *last* segment only; corruption anywhere else
is an error, never silent data loss.
"""

import os

import pytest

from repro.durability.wal import (
    KIND_CHUNK,
    KIND_OP,
    WalCorruptionError,
    WriteAheadLog,
)


def _segments(directory):
    return sorted(
        name for name in os.listdir(directory)
        if name.startswith("wal-") and name.endswith(".log")
    )


class TestAppendReplay:
    def test_roundtrip_preserves_kind_payload_and_order(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        records = [
            (KIND_CHUNK, b"chunk-0"),
            (KIND_OP, b"op-0"),
            (KIND_CHUNK, b"chunk-1"),
        ]
        for kind, payload in records:
            log.append(kind, payload)
        log.close()
        assert list(WriteAheadLog(str(tmp_path)).replay()) == records

    def test_append_returns_dense_global_sequence(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        seqs = [log.append(KIND_CHUNK, b"x") for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert log.next_seq == 5

    def test_unknown_kind_rejected(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        with pytest.raises(ValueError):
            log.append(99, b"payload")

    def test_replay_after_seq_skips_prefix(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        for i in range(6):
            log.append(KIND_CHUNK, b"r%d" % i)
        log.close()
        tail = list(WriteAheadLog(str(tmp_path)).replay(after_seq=4))
        assert tail == [(KIND_CHUNK, b"r4"), (KIND_CHUNK, b"r5")]


class TestRotationAndReopen:
    def test_small_segment_limit_rotates(self, tmp_path):
        log = WriteAheadLog(str(tmp_path), segment_bytes=32)
        for i in range(8):
            log.append(KIND_CHUNK, b"payload-%d" % i)
        log.close()
        assert len(_segments(str(tmp_path))) > 1
        replayed = [p for _, p in WriteAheadLog(str(tmp_path)).replay()]
        assert replayed == [b"payload-%d" % i for i in range(8)]

    def test_reopen_recovers_next_seq_and_starts_fresh_segment(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        for _ in range(3):
            log.append(KIND_OP, b"op")
        log.close()
        before = _segments(str(tmp_path))
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.next_seq == 3
        assert reopened.append(KIND_OP, b"later") == 3
        reopened.close()
        # reopening never appends into an old segment (single-writer "xb")
        assert len(_segments(str(tmp_path))) == len(before) + 1

    def test_segment_names_carry_first_seq(self, tmp_path):
        log = WriteAheadLog(str(tmp_path), segment_bytes=1)
        for _ in range(3):
            log.append(KIND_CHUNK, b"one-record-per-segment")
        log.close()
        assert _segments(str(tmp_path)) == [
            "wal-0000000000000000.log",
            "wal-0000000000000001.log",
            "wal-0000000000000002.log",
        ]


class TestTruncate:
    def test_truncate_removes_only_fully_covered_segments(self, tmp_path):
        log = WriteAheadLog(str(tmp_path), segment_bytes=1)  # 1 record/segment
        for i in range(4):
            log.append(KIND_CHUNK, b"r%d" % i)
        removed = log.truncate(before_seq=2)
        assert removed == 2
        assert [p for _, p in log.replay()] == [b"r2", b"r3"]
        log.close()

    def test_live_segment_survives_truncation(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        for i in range(5):
            log.append(KIND_CHUNK, b"r%d" % i)
        # everything lives in one (live) segment: nothing removable
        assert log.truncate(before_seq=5) == 0
        log.close()

    def test_sequence_stays_global_across_truncate_and_reopen(self, tmp_path):
        log = WriteAheadLog(str(tmp_path), segment_bytes=1)
        for i in range(4):
            log.append(KIND_CHUNK, b"r%d" % i)
        log.truncate(before_seq=3)
        log.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.next_seq == 4
        assert reopened.append(KIND_CHUNK, b"r4") == 4
        reopened.close()


class TestCorruption:
    def test_torn_tail_in_last_segment_is_dropped(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        log.append(KIND_CHUNK, b"intact-0")
        log.append(KIND_CHUNK, b"intact-1")
        log.close()
        (segment,) = _segments(str(tmp_path))
        with open(tmp_path / segment, "ab") as handle:
            handle.write(b"\x01\xff\xff")  # crash mid-append: partial header
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.next_seq == 2
        assert [p for _, p in reopened.replay()] == [b"intact-0", b"intact-1"]
        reopened.close()

    def test_corrupt_payload_in_last_segment_stops_at_tear(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        log.append(KIND_CHUNK, b"good-record")
        log.append(KIND_CHUNK, b"bad--record")
        log.close()
        (segment,) = _segments(str(tmp_path))
        path = tmp_path / segment
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the final record's payload
        path.write_bytes(bytes(data))
        assert [p for _, p in WriteAheadLog(str(tmp_path)).replay()] == [
            b"good-record"
        ]

    def test_corruption_in_earlier_segment_raises(self, tmp_path):
        log = WriteAheadLog(str(tmp_path), segment_bytes=1)
        log.append(KIND_CHUNK, b"first-segment")
        log.append(KIND_CHUNK, b"second-segment")
        log.close()
        first = _segments(str(tmp_path))[0]
        path = tmp_path / first
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog(str(tmp_path)).replay())
