"""Crash-injection and durability-plane tests (checkpoints + WAL)."""
