"""Crash-exact recovery of a local durable engine.

The property under test is the paper's determinism argument turned into
an oracle: answers are a pure function of subscriptions + the object
sequence, so restoring the latest checkpoint and replaying the WAL tail
must reproduce the crashed engine's answer stream *byte-identically* —
checked against an uncrashed twin that ingested the same stream in one
life.  "Crash" here is abandonment: the durable engine is dropped
without ``close()``, exactly what SIGKILL leaves on disk.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import encode_chunk
from repro.core.exceptions import InvalidQueryError
from repro.core.object import StreamObject
from repro.durability.wal import KIND_CHUNK, WriteAheadLog
from repro.engine import QuerySpec, StreamEngine

from ..conftest import make_objects, random_scores

ALGORITHMS = ["SAP", "MinTopK", "k-skyband", "SMA"]


def _signature(drained):
    """A comparable, byte-stable form of a drained answer stream."""
    return {
        name: [
            (
                result.slide_index,
                result.window_end,
                tuple((obj.score, obj.t) for obj in result.objects),
            )
            for result in results
        ]
        for name, results in sorted(drained.items())
    }


def _durable(directory, interval=3):
    return StreamEngine.recover(
        directory, checkpoint_interval=interval, keep_results=True,
        return_results=False,
    )


def _payload_objects(count, seed=7):
    scores = random_scores(count, seed=seed)
    return [
        StreamObject(score=s, t=i, payload=(s / 10.0, float(i % 13)))
        for i, s in enumerate(scores)
    ]


class TestCrashExactProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        algorithm=st.sampled_from(ALGORITHMS),
        seed=st.integers(min_value=0, max_value=2**16),
        crash_after=st.integers(min_value=1, max_value=11),
    )
    def test_recovered_stream_matches_uncrashed_twin(
        self, algorithm, seed, crash_after
    ):
        stream = make_objects(random_scores(120, seed=seed))
        chunks = [stream[i : i + 10] for i in range(0, 120, 10)]
        spec = QuerySpec(n=24, k=4, s=6).using(algorithm)
        directory = tempfile.mkdtemp(prefix="repro-dur-")
        try:
            crashed = _durable(directory)
            crashed.subscribe("q", spec)
            for chunk in chunks[:crash_after]:
                crashed.push_many(chunk)
            # SIGKILL-equivalent: abandon without close(); whatever the
            # WAL/checkpoints already hold is all recovery gets.
            recovered = _durable(directory)
            assert recovered.recovery_report.restored_subscriptions + \
                recovered.recovery_report.replayed_ops >= 1
            for chunk in chunks[crash_after:]:
                recovered.push_many(chunk)
            twin = StreamEngine(keep_results=True, return_results=False)
            twin.subscribe("q", spec)
            for chunk in chunks:
                twin.push_many(chunk)
            assert _signature(recovered.drain_results()) == _signature(
                twin.drain_results()
            )
            recovered.close()
            twin.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestRecoveryMechanics:
    def test_empty_directory_recovers_to_empty_engine(self, tmp_path):
        engine = _durable(str(tmp_path))
        report = engine.recovery_report
        assert report.restored_subscriptions == 0
        assert report.replayed_chunks == 0
        engine.subscribe("q", QuerySpec(n=10, k=2, s=5))
        engine.push_many(make_objects(random_scores(20)))
        engine.close()

    def test_checkpoint_truncates_wal_and_bounds_replay(self, tmp_path):
        engine = _durable(str(tmp_path), interval=2)
        engine.subscribe("q", QuerySpec(n=12, k=3, s=6))
        for i in range(10):
            engine.push_many(make_objects(random_scores(6, seed=i), start_t=i * 6))
        # 10 chunks at interval 2 → several checkpoints; the WAL prefix
        # each one covers must be gone.
        assert os.listdir(tmp_path / "checkpoints")
        recovered = _durable(str(tmp_path), interval=2)
        report = recovered.recovery_report
        assert report.checkpoint_seq is not None
        assert report.replayed_chunks < 10
        assert report.ingested_total == 60
        assert report.last_t == 59
        assert report.next_t == 60
        recovered.close()

    def test_ops_replay_unsubscribe_and_preference_update(self, tmp_path):
        stream = _payload_objects(72)
        chunks = [stream[i : i + 8] for i in range(0, 72, 8)]

        def drive(engine, chunk_list):
            engine.subscribe("plain", QuerySpec(n=16, k=3, s=4))
            engine.subscribe("gone", QuerySpec(n=16, k=2, s=4))
            engine.subscribe(
                "pref", QuerySpec(n=16, k=3, s=4).preferring((1.0, 0.5))
            )
            for chunk in chunk_list[:3]:
                engine.push_many(chunk)
            engine.unsubscribe("gone")
            engine.update_preference("pref", (0.25, 2.0))
            for chunk in chunk_list[3:5]:
                engine.push_many(chunk)

        crashed = _durable(str(tmp_path), interval=100)  # WAL-only recovery
        drive(crashed, chunks)
        recovered = _durable(str(tmp_path), interval=100)
        assert sorted(recovered.subscriptions()) == ["plain", "pref"]
        assert recovered.recovery_report.replayed_ops >= 5
        for chunk in chunks[5:]:
            recovered.push_many(chunk)

        twin = StreamEngine(keep_results=True, return_results=False)
        drive(twin, chunks)
        for chunk in chunks[5:]:
            twin.push_many(chunk)
        assert _signature(recovered.drain_results()) == _signature(
            twin.drain_results()
        )
        recovered.close()
        twin.close()


class TestPoisonChunks:
    """Out-of-order input must neither poison the WAL nor kill replay."""

    def test_rejected_chunk_is_not_journaled(self, tmp_path):
        engine = _durable(str(tmp_path))
        engine.subscribe("q", QuerySpec(n=10, k=2, s=5))
        engine.push_many(make_objects(random_scores(10)))  # t = 0..9
        with pytest.raises(InvalidQueryError):
            engine.push_many(make_objects(random_scores(5), start_t=3))
        # the same rejection the engine gives, but *before* journaling:
        # recovery must not see the bad chunk at all
        recovered = _durable(str(tmp_path))
        assert recovered.recovery_report.skipped_chunks == 0
        assert recovered.recovery_report.last_t == 9
        recovered.push_many(make_objects(random_scores(5), start_t=10))
        recovered.close()

    def test_replay_skips_a_journaled_poison_chunk(self, tmp_path):
        engine = _durable(str(tmp_path), interval=100)
        engine.subscribe("q", QuerySpec(n=10, k=2, s=5))
        engine.push_many(make_objects(random_scores(10)))  # t = 0..9
        engine.close()
        # a pre-fix journal (or torn write-ahead ordering) can hold a
        # chunk the engine then rejected; replay must tolerate it
        log = WriteAheadLog(str(tmp_path))
        log.append(KIND_CHUNK, encode_chunk(make_objects(random_scores(4), start_t=2)))
        log.close()
        recovered = _durable(str(tmp_path), interval=100)
        report = recovered.recovery_report
        assert report.skipped_chunks == 1
        assert report.last_t == 9
        recovered.push_many(make_objects(random_scores(5), start_t=10))
        recovered.close()
