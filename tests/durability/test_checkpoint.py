"""Unit tests of the atomic checkpoint store.

A reader must only ever see a complete checkpoint: the manifest is the
commit point, the CRC guards the payload, and a damaged newest
checkpoint degrades to the previous one instead of failing recovery.
"""

import os

from repro.core.state import STATE_FORMAT_VERSION, EngineCheckpoint
from repro.durability.checkpoint import CheckpointStore


def _checkpoint(seq_hint=0, **overrides):
    fields = dict(
        version=STATE_FORMAT_VERSION,
        wal_records=seq_hint * 10,
        ingested=seq_hint * 100,
        last_t=seq_hint * 100 - 1,
        states=(),
        chunks=seq_hint,
    )
    fields.update(overrides)
    return EngineCheckpoint(**fields)


def _dirs(store):
    return sorted(
        name for name in os.listdir(store.directory)
        if name.startswith("checkpoint-")
    )


class TestRoundtrip:
    def test_fresh_store_has_no_latest(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).latest() is None

    def test_write_then_latest_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(_checkpoint(3))
        seq, restored = store.latest()
        assert seq == 0
        assert restored == _checkpoint(3)

    def test_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(_checkpoint(1))
        store.write(_checkpoint(2))
        seq, restored = store.latest()
        assert seq == 1
        assert restored.ingested == 200

    def test_numbering_continues_across_reopen(self, tmp_path):
        CheckpointStore(str(tmp_path)).write(_checkpoint(1))
        reopened = CheckpointStore(str(tmp_path))
        reopened.write(_checkpoint(2))
        assert reopened.latest()[0] == 1


class TestPruning:
    def test_keeps_only_last_keep_checkpoints(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=2)
        for i in range(4):
            store.write(_checkpoint(i))
        assert _dirs(store) == ["checkpoint-00000002", "checkpoint-00000003"]
        assert store.latest()[0] == 3


class TestDamageTolerance:
    def test_corrupt_newest_state_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(_checkpoint(1))
        store.write(_checkpoint(2))
        newest = os.path.join(store.directory, _dirs(store)[-1], "state.bin")
        data = bytearray(open(newest, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(newest, "wb") as handle:
            handle.write(bytes(data))
        seq, restored = store.latest()
        assert seq == 0
        assert restored == _checkpoint(1)

    def test_missing_manifest_means_uncommitted(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(_checkpoint(1))
        store.write(_checkpoint(2))
        os.remove(os.path.join(store.directory, _dirs(store)[-1], "MANIFEST.json"))
        assert store.latest()[1] == _checkpoint(1)

    def test_all_checkpoints_damaged_yields_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep=1)
        store.write(_checkpoint(1))
        os.remove(os.path.join(store.directory, _dirs(store)[0], "MANIFEST.json"))
        assert store.latest() is None
