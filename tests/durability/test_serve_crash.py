"""SIGKILL the whole serve process between checkpoint and WAL tail.

The serving layer adds its own durable state on top of the engine's —
the ``sessions.json`` sidecar and the server-assigned arrival clock —
so this suite crashes the *entire process* (engine, batcher, sessions)
and asserts the restarted server's answer histories are byte-identical
to a twin that never crashed.  Runs over both engine planes.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

CHILD = """\
import asyncio
import sys

from repro.serve.app import ServeConfig, TopKServer


async def main():
    config = ServeConfig(
        port=0,
        durability_dir=sys.argv[1],
        engine=sys.argv[2],
        shards=2,
        linger_ms=10,
        checkpoint_interval=4,
    )
    server = TopKServer(config)
    await server.start()
    print("READY", server.port, flush=True)
    await server.serve_forever(install_signal_handlers=False)


asyncio.run(main())
"""

SUBSCRIPTIONS = [
    {"name": "plain", "n": 20, "k": 3, "s": 5},
    {"name": "mintopk", "n": 30, "k": 4, "s": 5, "algorithm": "MinTopK"},
    {"name": "pref", "n": 20, "k": 3, "s": 5, "preference": [1.0, 0.5]},
]

EVENTS = [
    {"id": f"e{i}", "score": float((i * 37) % 101), "payload": [0.1 * i, 0.2 * i]}
    for i in range(120)
]


def _call(port, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    if data:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=10) as response:
        raw = response.read()
        return json.loads(raw) if raw else None


class _Server:
    """One serve subprocess; .port is parsed from its READY line."""

    def __init__(self, script, durability_dir, engine):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in ("src", env.get("PYTHONPATH")) if part
        )
        self.process = subprocess.Popen(
            [sys.executable, script, durability_dir, engine],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        line = self.process.stdout.readline()
        assert line.startswith("READY"), f"server failed to boot: {line!r}"
        self.port = int(line.split()[1])

    def sigkill(self):
        os.kill(self.process.pid, signal.SIGKILL)
        self.process.wait(timeout=10)

    def histories(self):
        # linger-flushed batches need a beat to land before reading
        time.sleep(0.3)
        return {
            sub["name"]: _call(
                self.port, "GET", f"/v1/subscriptions/{sub['name']}/results"
            )["results"]
            for sub in SUBSCRIPTIONS
        }


@pytest.fixture()
def child_script(tmp_path):
    script = tmp_path / "serve_child.py"
    script.write_text(CHILD)
    return str(script)


@pytest.mark.parametrize("engine", ["local", "sharded"])
def test_serve_process_sigkill_recovers_byte_identical(
    tmp_path, child_script, engine
):
    crash_dir = str(tmp_path / "crashed")
    twin_dir = str(tmp_path / "twin")

    crashed = _Server(child_script, crash_dir, engine)
    for sub in SUBSCRIPTIONS:
        _call(crashed.port, "POST", "/v1/subscriptions", sub)
    _call(crashed.port, "POST", "/v1/events", {"events": EVENTS[:80]})
    time.sleep(0.3)  # let the batcher flush and the engine checkpoint
    crashed.sigkill()

    restarted = _Server(child_script, crash_dir, engine)
    stats = _call(restarted.port, "GET", "/v1/stats")
    recovery = stats["durability"]["recovery"]
    assert recovery["recovered_subscriptions"] == len(SUBSCRIPTIONS)
    assert recovery["resumed_at_t"] == 80
    _call(restarted.port, "POST", "/v1/events", {"events": EVENTS[80:]})
    recovered_histories = restarted.histories()
    restarted.sigkill()

    twin = _Server(child_script, twin_dir, engine)
    for sub in SUBSCRIPTIONS:
        _call(twin.port, "POST", "/v1/subscriptions", sub)
    _call(twin.port, "POST", "/v1/events", {"events": EVENTS})
    twin_histories = twin.histories()
    twin.sigkill()

    for sub in SUBSCRIPTIONS:
        name = sub["name"]
        assert recovered_histories[name], f"{name}: no recovered answers"
        assert recovered_histories[name] == twin_histories[name], (
            f"{name}: recovered answer stream diverged from the twin"
        )
