"""Unit tests for the Knowledge store (the K of MAPE-K)."""

import pytest

from repro.control.knowledge import (
    AdaptationEvent,
    Knowledge,
    SealSample,
    SlideSample,
)


def sample(name="q", index=0, latency=0.001, candidates=10, top=1.0):
    return SlideSample(
        subscription=name,
        algorithm="SAP",
        slide_index=index,
        latency=latency,
        candidates=candidates,
        memory_bytes=candidates * 32,
        top_score=top,
        window_size=100,
    )


class TestRings:
    def test_capacity_bounds_history(self):
        knowledge = Knowledge(capacity=8)
        for i in range(20):
            knowledge.add_slide(sample(index=i))
        slides = knowledge.slides("q")
        assert len(slides) == 8
        assert [s.slide_index for s in slides] == list(range(12, 20))

    def test_tail_is_oldest_first(self):
        knowledge = Knowledge(capacity=64)
        for i in range(10):
            knowledge.add_slide(sample(index=i))
        assert [s.slide_index for s in knowledge.slides("q", 3)] == [7, 8, 9]
        assert len(knowledge.slides("q", 100)) == 10

    def test_per_subscription_isolation(self):
        knowledge = Knowledge()
        knowledge.add_slide(sample(name="a", index=1))
        knowledge.add_slide(sample(name="b", index=7))
        assert knowledge.latest_slide_index("a") == 1
        assert knowledge.latest_slide_index("b") == 7
        assert knowledge.latest_slide_index("missing") is None
        assert set(knowledge.subscriptions()) == {"a", "b"}

    def test_seal_samples(self):
        knowledge = Knowledge(capacity=4)
        for size in (10, 20, 30, 40, 50):
            knowledge.add_seal(SealSample(subscription="q", size=size))
        assert [s.size for s in knowledge.seals("q")] == [20, 30, 40, 50]
        assert knowledge.seals("nope") == []

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Knowledge(capacity=0)


class TestAggregates:
    def test_latency_percentile(self):
        knowledge = Knowledge()
        for i, latency in enumerate([0.001, 0.002, 0.003, 0.004, 0.100]):
            knowledge.add_slide(sample(index=i, latency=latency))
        assert knowledge.latency_percentile("q", 0.5, window=5) == 0.003
        # The window restricts the sample to the most recent slides.
        assert knowledge.latency_percentile("q", 0.95, window=2) == pytest.approx(0.1)
        assert knowledge.latency_percentile("missing", 0.5, window=5) == 0.0

    def test_top_score_series_drops_none(self):
        knowledge = Knowledge()
        knowledge.add_slide(sample(index=0, top=1.0))
        knowledge.add_slide(sample(index=1, top=None))
        knowledge.add_slide(sample(index=2, top=3.0))
        assert knowledge.top_score_series("q") == [1.0, 3.0]


class TestAdaptationLog:
    def test_events_and_cooldown_tracking(self):
        knowledge = Knowledge()
        applied = AdaptationEvent(
            slide_index=10, subscription="q", tactic="swap-partitioner",
            trigger="score-drift", applied=True,
        )
        declined = AdaptationEvent(
            slide_index=12, subscription="q", tactic="swap-algorithm",
            trigger="latency-violation", applied=False,
        )
        knowledge.log_event(applied)
        knowledge.log_event(declined)
        assert knowledge.events() == [applied, declined]
        assert knowledge.applied_events() == [applied]
        # Declined tactics reset the cooldown clock too (no decline spam).
        assert knowledge.last_adaptation_slide("q") == 12

    def test_event_log_is_bounded(self):
        from repro.control.knowledge import EVENT_LOG_CAPACITY

        knowledge = Knowledge()
        for i in range(EVENT_LOG_CAPACITY + 50):
            knowledge.log_event(
                AdaptationEvent(
                    slide_index=i, subscription="q", tactic="swap-algorithm",
                    trigger="score-drift", applied=False,
                )
            )
        events = knowledge.events()
        assert len(events) == EVENT_LOG_CAPACITY
        assert knowledge.events_total == EVENT_LOG_CAPACITY + 50
        assert events[-1].slide_index == EVENT_LOG_CAPACITY + 49

    def test_describe_round_trips_to_json(self):
        import json

        knowledge = Knowledge()
        knowledge.add_slide(sample(index=3))
        knowledge.log_event(
            AdaptationEvent(
                slide_index=3, subscription="q", tactic="retune-eta",
                trigger="candidate-blowup", applied=True,
                detail={"to_eta_scale": 1.5},
            )
        )
        payload = json.dumps(knowledge.describe())
        assert "retune-eta" in payload
        assert "shedding" in payload

    def test_shedding_account(self):
        knowledge = Knowledge()
        assert knowledge.shedding.as_dict()["exact"] is True
        knowledge.shedding.admitted += 90
        knowledge.shedding.shed += 10
        account = knowledge.shedding.as_dict()
        assert account["shed_fraction"] == pytest.approx(0.1)
        assert account["exact"] is False
