"""Unit tests for the Analyze stage (symptom detectors)."""

import random

import pytest

from repro.control.analyzers import (
    CandidateBlowupAnalyzer,
    LatencyBudgetAnalyzer,
    ScoreDriftAnalyzer,
)
from repro.control.knowledge import Knowledge, SlideSample


def feed(knowledge, *, latencies=None, candidates=None, tops=None, start=0):
    """Append one slide sample per entry of the longest list."""
    n = max(len(x) for x in (latencies or [], candidates or [], tops or []) if x is not None)
    for i in range(n):
        knowledge.add_slide(
            SlideSample(
                subscription="q",
                algorithm="SAP",
                slide_index=start + i,
                latency=latencies[i] if latencies else 0.001,
                candidates=candidates[i] if candidates else 10,
                memory_bytes=320,
                top_score=tops[i] if tops else 1.0,
                window_size=100,
            )
        )


class TestLatencyBudget:
    def test_fires_above_budget(self):
        knowledge = Knowledge()
        feed(knowledge, latencies=[0.010] * 32)
        analyzer = LatencyBudgetAnalyzer(0.005, percentile=0.95, window=32, min_samples=16)
        symptom = analyzer.analyze(knowledge, "q")
        assert symptom is not None
        assert symptom.kind == "latency-violation"
        assert symptom.severity == pytest.approx(2.0)
        assert symptom.evidence["observed_seconds"] == pytest.approx(0.010)

    def test_quiet_below_budget(self):
        knowledge = Knowledge()
        feed(knowledge, latencies=[0.001] * 32)
        analyzer = LatencyBudgetAnalyzer(0.005)
        assert analyzer.analyze(knowledge, "q") is None

    def test_needs_min_samples(self):
        knowledge = Knowledge()
        feed(knowledge, latencies=[1.0] * 5)
        analyzer = LatencyBudgetAnalyzer(0.005, min_samples=16)
        assert analyzer.analyze(knowledge, "q") is None

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            LatencyBudgetAnalyzer(0.0)


class TestCandidateBlowup:
    def test_fires_on_relative_blowup(self):
        knowledge = Knowledge()
        feed(knowledge, candidates=[20] * 96)
        feed(knowledge, candidates=[200] * 32, start=96)
        analyzer = CandidateBlowupAnalyzer(factor=3.0, window=32, min_samples=96)
        symptom = analyzer.analyze(knowledge, "q")
        assert symptom is not None
        assert symptom.kind == "candidate-blowup"
        assert symptom.evidence["recent_mean"] == pytest.approx(200.0)

    def test_quiet_on_stable_level(self):
        knowledge = Knowledge()
        feed(knowledge, candidates=[500] * 160)
        analyzer = CandidateBlowupAnalyzer(factor=3.0, window=32)
        assert analyzer.analyze(knowledge, "q") is None

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            CandidateBlowupAnalyzer(factor=1.0)


class TestScoreDrift:
    def test_fires_on_level_shift(self):
        knowledge = Knowledge()
        rng = random.Random(5)
        lows = [0.3 + rng.uniform(-0.05, 0.05) for _ in range(16)]
        highs = [0.8 + rng.uniform(-0.05, 0.05) for _ in range(16)]
        feed(knowledge, tops=lows)
        feed(knowledge, tops=highs, start=16)
        analyzer = ScoreDriftAnalyzer(alpha=0.01, window=16)
        symptom = analyzer.analyze(knowledge, "q")
        assert symptom is not None
        assert symptom.kind == "score-drift"
        assert symptom.evidence["direction"] == "up"

    def test_detects_downward_drift(self):
        knowledge = Knowledge()
        rng = random.Random(6)
        highs = [0.8 + rng.uniform(-0.05, 0.05) for _ in range(16)]
        lows = [0.3 + rng.uniform(-0.05, 0.05) for _ in range(16)]
        feed(knowledge, tops=highs)
        feed(knowledge, tops=lows, start=16)
        symptom = ScoreDriftAnalyzer(window=16).analyze(knowledge, "q")
        assert symptom is not None and symptom.evidence["direction"] == "down"

    def test_quiet_on_stationary_scores(self):
        knowledge = Knowledge()
        rng = random.Random(7)
        feed(knowledge, tops=[0.5 + rng.uniform(-0.1, 0.1) for _ in range(64)])
        assert ScoreDriftAnalyzer(window=16).analyze(knowledge, "q") is None

    def test_refractory_period_after_detection(self):
        knowledge = Knowledge()
        feed(knowledge, tops=[0.3 + 0.001 * i for i in range(16)])
        feed(knowledge, tops=[0.8 + 0.001 * i for i in range(16)], start=16)
        analyzer = ScoreDriftAnalyzer(window=16)
        assert analyzer.analyze(knowledge, "q") is not None
        # One more slide at the new level: still inside the refractory
        # window, so the same regime change is not reported again.
        feed(knowledge, tops=[0.81], start=32)
        assert analyzer.analyze(knowledge, "q") is None

    def test_window_floor(self):
        with pytest.raises(ValueError):
            ScoreDriftAnalyzer(window=4)

    def test_matches_library_rank_sum_verdict(self):
        """The analyzer's one-sort two-sided test agrees with running the
        library's rank_sum_test in both directions (normal-approximation
        regime, which window >= 10 guarantees)."""
        from repro.stats.mannwhitney import rank_sum_test

        rng = random.Random(11)
        for shift in (0.0, 0.05, 0.2, 0.5):
            recent = [0.5 + shift + rng.uniform(-0.1, 0.1) for _ in range(16)]
            reference = [0.5 + rng.uniform(-0.1, 0.1) for _ in range(16)]
            knowledge = Knowledge()
            feed(knowledge, tops=reference)
            feed(knowledge, tops=recent, start=16)
            symptom = ScoreDriftAnalyzer(alpha=0.01, window=16, min_shift=0.0).analyze(knowledge, "q")
            up = rank_sum_test(recent, reference, alpha=0.01)
            down = rank_sum_test(reference, recent, alpha=0.01)
            expected = up.first_is_larger or down.first_is_larger
            assert (symptom is not None) == expected, f"shift={shift}"
