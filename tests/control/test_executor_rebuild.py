"""Unit tests for the Execute stage and the group rebuild mechanism.

The load-bearing property: every rebuild-type tactic is answer-preserving.
A controlled engine that swaps partitioners, retunes η, or swaps the
algorithm mid-run must produce byte-identical results to an uncontrolled
engine on the same stream, because the group is drained at a slide
boundary and the replacement pipeline is rebuilt from live window state.
"""

import pytest

from repro.baselines.mintopk import MinTopK
from repro.control import AdaptiveController, Knowledge, Policy
from repro.control.executor import Executor
from repro.control.planner import Action
from repro.control.policy import Tactic
from repro.core.exceptions import AlgorithmStateError
from repro.core.framework import SAPTopK
from repro.core.query import TopKQuery
from repro.engine import StreamEngine
from repro.partitioning import DynamicPartitioner, EqualPartitioner
from repro.streams import make_dataset

QUERY = TopKQuery(n=300, k=8, s=20)
STREAM = make_dataset("STOCK").take(2_400)


def run_uncontrolled(algorithm="SAP", query=QUERY):
    engine = StreamEngine(return_results=False)
    subscription = engine.subscribe("q", query, algorithm=algorithm)
    engine.push_many(STREAM)
    engine.flush()
    return [(r.slide_index, tuple(r.scores)) for r in subscription.results()]


def run_with_midstream_tactic(tactic, algorithm="SAP", query=QUERY, at_slide=40):
    """Drive half the stream, apply one tactic through the executor, finish."""
    engine = StreamEngine(return_results=False)
    subscription = engine.subscribe("q", query, algorithm=algorithm)
    controller = AdaptiveController(Policy(rules=[], analyzer_config={}))
    engine.attach_controller(controller)
    split = (at_slide + 1) * query.s + query.n - query.s
    engine.push_many(STREAM[:split], chunk_size=query.s)
    group = subscription.group
    assert group.at_slide_boundary()
    executor = Executor(controller.knowledge)
    events = executor.execute(
        group,
        [Action(subscription=subscription, tactic=tactic, trigger="test")],
        controller,
    )
    engine.push_many(STREAM[split:], chunk_size=query.s)
    engine.flush()
    answers = [(r.slide_index, tuple(r.scores)) for r in subscription.results()]
    return answers, events, subscription


class TestAnswerPreservation:
    def test_swap_partitioner_to_equal(self):
        answers, events, sub = run_with_midstream_tactic(
            Tactic("swap-partitioner", {"to": "equal"})
        )
        assert [e.applied for e in events] == [True]
        assert isinstance(sub.algorithm.partitioner, EqualPartitioner)
        assert answers == run_uncontrolled()

    def test_swap_partitioner_to_enhanced(self):
        answers, events, sub = run_with_midstream_tactic(
            Tactic("swap-partitioner", {"to": "enhanced-dynamic"}), algorithm="SAP-equal"
        )
        assert [e.applied for e in events] == [True]
        assert sub.algorithm.partitioner.name == "enhanced-dynamic"
        assert answers == run_uncontrolled("SAP-equal")

    def test_retune_eta(self):
        answers, events, sub = run_with_midstream_tactic(
            Tactic("retune-eta", {"scale": 2.0, "eta_scale": 2.0}), algorithm="SAP-dynamic"
        )
        assert [e.applied for e in events] == [True]
        partitioner = sub.algorithm.partitioner
        assert isinstance(partitioner, DynamicPartitioner)
        assert partitioner.eta_scale == pytest.approx(2.0)
        assert answers == run_uncontrolled("SAP-dynamic")

    def test_swap_algorithm_to_mintopk(self):
        answers, events, sub = run_with_midstream_tactic(
            Tactic("swap-algorithm", {"to": "MinTopK"})
        )
        assert [e.applied for e in events] == [True]
        assert isinstance(sub.algorithm, MinTopK)
        assert answers == run_uncontrolled()

    def test_swap_algorithm_back_to_sap(self):
        answers, events, sub = run_with_midstream_tactic(
            Tactic("swap-algorithm", {"to": "SAP"}), algorithm="MinTopK"
        )
        assert [e.applied for e in events] == [True]
        assert isinstance(sub.algorithm, SAPTopK)
        assert answers == run_uncontrolled("MinTopK")

    def test_metrics_and_results_carry_over(self):
        _, _, sub = run_with_midstream_tactic(Tactic("swap-partitioner", {"to": "equal"}))
        stats = sub.stats()
        # One stats record spanning the whole run, not a reset at the swap.
        assert stats["slides"] == len(run_uncontrolled())


class TestSharedPlanRebuild:
    def test_swap_rebuilds_every_plan_member(self):
        engine = StreamEngine(return_results=False)
        subs = [
            engine.subscribe(f"q{k}", TopKQuery(n=300, k=k, s=20), algorithm="SAP")
            for k in (4, 8, 16)
        ]
        controller = AdaptiveController(Policy(rules=[], analyzer_config={}))
        engine.attach_controller(controller)
        engine.push_many(STREAM[:1200], chunk_size=20)
        group = subs[0].group
        assert group.plans(), "the three SAP queries must share a plan"
        executor = Executor(controller.knowledge)
        executor.execute(
            group,
            [
                Action(
                    subscription=subs[1],
                    tactic=Tactic("swap-partitioner", {"to": "equal"}),
                    trigger="test",
                )
            ],
            controller,
        )
        # The dissolved plan re-formed over the rebuilt members: the
        # swapped member left the bucket, the other two (rebuilt with
        # their existing configuration) share a fresh plan.
        assert len(group.plans()) == 1
        assert isinstance(subs[1].algorithm.partitioner, EqualPartitioner)
        assert subs[0].algorithm.partitioner.name == "enhanced-dynamic"
        assert subs[2].algorithm.partitioner.name == "enhanced-dynamic"
        plan_members = {m.name for m in group.plans()[0].subscriptions()}
        assert plan_members == {"q4", "q16"}
        engine.push_many(STREAM[1200:], chunk_size=20)
        engine.flush()
        for sub in subs:
            solo = StreamEngine(return_results=False)
            ref = solo.subscribe("ref", sub.query, algorithm="SAP")
            solo.push_many(STREAM)
            solo.flush()
            assert [r.identity() for r in sub.results()] == [
                r.identity() for r in ref.results()
            ], sub.name


class TestRebuildPreconditions:
    def test_rebuild_requires_slide_boundary(self):
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe("q", QUERY, algorithm="SAP")
        engine.push_many(STREAM[: QUERY.n + 7])  # mid-slide
        with pytest.raises(AlgorithmStateError):
            subscription.group.rebuild({"q": subscription.algorithm.respawn()})

    def test_rebuild_rejects_unknown_members(self):
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe("q", QUERY, algorithm="SAP")
        engine.push_many(STREAM[: QUERY.n])
        with pytest.raises(KeyError):
            subscription.group.rebuild({"nope": subscription.algorithm.respawn()})

    def test_mintopk_swap_declined_on_non_contiguous_window(self):
        """MinTopK's position arithmetic needs contiguous arrival orders;
        the executor declines (and logs) instead of corrupting answers."""
        from repro.core.object import StreamObject

        gapped = [StreamObject(score=float(i % 97), t=2 * i) for i in range(1200)]
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe("q", QUERY, algorithm="SAP")
        controller = AdaptiveController(Policy(rules=[], analyzer_config={}))
        engine.attach_controller(controller)
        engine.push_many(gapped, chunk_size=QUERY.s)
        group = subscription.group
        assert group.at_slide_boundary()
        executor = Executor(controller.knowledge)
        events = executor.execute(
            group,
            [
                Action(
                    subscription=subscription,
                    tactic=Tactic("swap-algorithm", {"to": "MinTopK"}),
                    trigger="test",
                )
            ],
            controller,
        )
        assert [e.applied for e in events] == [False]
        assert "contiguous" in events[0].detail["skipped"]
        assert isinstance(subscription.algorithm, SAPTopK)

    def test_rebuild_cost_logged(self):
        _, events, _ = run_with_midstream_tactic(
            Tactic("swap-partitioner", {"to": "equal"})
        )
        assert events[0].detail["rebuild_seconds"] >= 0.0


class TestSheddingTactics:
    def test_engage_and_recover(self):
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe("q", QUERY, algorithm="SAP")
        controller = AdaptiveController(Policy(rules=[], analyzer_config={}))
        engine.attach_controller(controller)
        engine.push_many(STREAM[:600], chunk_size=QUERY.s)
        executor = Executor(controller.knowledge)
        executor.execute(
            subscription.group,
            [
                Action(
                    subscription=subscription,
                    tactic=Tactic("load-shed", {"stride": 10}),
                    trigger="latency-violation",
                )
            ],
            controller,
        )
        assert controller.shedding_active
        engine.push_many(STREAM[600:1200], chunk_size=QUERY.s)
        report = controller.accuracy_report()
        assert report["shed"] > 0 and report["exact"] is False
        assert report["shed_fraction"] == pytest.approx(0.1, abs=0.05)
        executor.execute(
            subscription.group,
            [
                Action(
                    subscription=subscription,
                    tactic=Tactic("load-recover"),
                    trigger="latency-recovered",
                )
            ],
            controller,
        )
        assert not controller.shedding_active
        assert len(controller.knowledge.events()) == 2


class TestFastForward:
    def test_mintopk_fast_forward_guard(self):
        algorithm = MinTopK(QUERY)
        algorithm.fast_forward(5)  # fresh: allowed
        assert algorithm._next_report == 5
        engine_query = TopKQuery(n=40, k=2, s=10)
        live = MinTopK(engine_query)
        live.run(make_dataset("STOCK").take(60))
        with pytest.raises(AlgorithmStateError):
            live.fast_forward(3)

    def test_default_fast_forward_is_noop(self):
        algorithm = SAPTopK(QUERY)
        algorithm.fast_forward(10)  # must not raise


class TestKnowledgeWiring:
    def test_executor_uses_shared_knowledge(self):
        knowledge = Knowledge()
        executor = Executor(knowledge)
        assert executor.knowledge is knowledge
