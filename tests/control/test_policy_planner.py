"""Unit tests for the declarative policy format and the Plan stage."""

import json

import pytest

from repro.control.analyzers import Symptom
from repro.control.knowledge import AdaptationEvent, Knowledge, SlideSample
from repro.control.planner import Planner
from repro.control.policy import Policy, Rule, Tactic
from repro.core.query import TopKQuery
from repro.engine import StreamEngine


POLICY_DOC = {
    "latency_budget_seconds": 0.01,
    "cooldown_slides": 10,
    "analyzers": {
        "latency": {"percentile": 0.95, "window": 32, "min_samples": 16},
        "candidates": {"factor": 3.0, "window": 32},
        "drift": {"alpha": 0.01, "window": 16},
    },
    "rules": [
        {"when": "score-drift", "tactic": "swap-partitioner", "to": "equal"},
        {"when": "candidate-blowup", "tactic": "retune-eta", "scale": 1.5},
        {"when": "latency-violation", "tactic": "load-shed", "stride": 8},
    ],
    "load_shedding": {"enabled": True, "max_fraction": 0.25},
}


class TestPolicyFormat:
    def test_round_trip_from_dict(self):
        policy = Policy.from_dict(POLICY_DOC)
        assert policy.latency_budget_seconds == 0.01
        assert policy.cooldown_slides == 10
        assert [rule.tactic.kind for rule in policy.rules] == [
            "swap-partitioner", "retune-eta", "load-shed",
        ]
        assert policy.load_shedding.enabled is True
        assert len(policy.build_analyzers()) == 3

    def test_from_file(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps(POLICY_DOC))
        policy = Policy.from_file(str(path))
        assert policy.rules[0].when == "score-drift"

    def test_example_policy_file_parses(self):
        import os

        example = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "control_policy.json"
        )
        policy = Policy.from_file(example)
        assert policy.rules, "the documented example policy must define rules"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown policy keys"):
            Policy.from_dict({"latency_budget": 1.0})

    def test_unknown_tactic_rejected(self):
        with pytest.raises(ValueError, match="unknown tactic"):
            Policy.from_dict({"rules": [{"when": "score-drift", "tactic": "reboot"}]})

    def test_swap_partitioner_needs_valid_target(self):
        with pytest.raises(ValueError, match="swap-partitioner"):
            Policy.from_dict(
                {"rules": [{"when": "score-drift", "tactic": "swap-partitioner", "to": "magic"}]}
            )

    def test_load_shed_stride_validated(self):
        with pytest.raises(ValueError, match="stride"):
            Policy.from_dict(
                {"rules": [{"when": "latency-violation", "tactic": "load-shed", "stride": 1}]}
            )

    def test_shedding_fraction_validated(self):
        with pytest.raises(ValueError, match="max_fraction"):
            Policy.from_dict({"load_shedding": {"enabled": True, "max_fraction": 2.0}})

    def test_default_policy_is_exact(self):
        policy = Policy.default()
        assert policy.load_shedding.enabled is False
        assert {rule.tactic.kind for rule in policy.rules} <= {
            "swap-partitioner", "retune-eta",
        }

    def test_describe_is_json_serialisable(self):
        json.dumps(Policy.from_dict(POLICY_DOC).describe())


def make_group(algorithm="SAP", n=200, k=5, s=10):
    engine = StreamEngine()
    subscription = engine.subscribe("q", TopKQuery(n=n, k=k, s=s), algorithm=algorithm)
    return engine, subscription, subscription.group


def symptom(kind, name="q"):
    return Symptom(kind=kind, subscription=name, severity=2.0)


def knowledge_at_slide(index, name="q"):
    knowledge = Knowledge()
    knowledge.add_slide(
        SlideSample(
            subscription=name, algorithm="SAP", slide_index=index,
            latency=0.001, candidates=10, memory_bytes=320,
            top_score=1.0, window_size=200,
        )
    )
    return knowledge


class TestPlanner:
    def test_maps_symptom_to_first_applicable_rule(self):
        _, _, group = make_group("SAP")
        planner = Planner(Policy.from_dict(POLICY_DOC))
        actions = planner.plan(group, [symptom("score-drift")], knowledge_at_slide(50))
        assert len(actions) == 1
        assert actions[0].tactic.kind == "swap-partitioner"
        assert actions[0].trigger == "score-drift"

    def test_swap_partitioner_skipped_when_already_there(self):
        _, _, group = make_group("SAP-equal")
        planner = Planner(Policy.from_dict(POLICY_DOC))
        actions = planner.plan(group, [symptom("score-drift")], knowledge_at_slide(50))
        assert actions == []

    def test_retune_eta_only_for_dynamic_partitioners(self):
        _, _, group = make_group("SAP-equal")
        planner = Planner(Policy.from_dict(POLICY_DOC))
        assert planner.plan(group, [symptom("candidate-blowup")], knowledge_at_slide(50)) == []

        _, _, dyn_group = make_group("SAP-dynamic")
        actions = planner.plan(dyn_group, [symptom("candidate-blowup")], knowledge_at_slide(50))
        assert len(actions) == 1
        assert actions[0].tactic.params["eta_scale"] == pytest.approx(1.5)

    def test_eta_scale_clamped(self):
        from repro.control.planner import ETA_SCALE_MAX

        _, sub, group = make_group("SAP-dynamic")
        planner = Planner(Policy.from_dict(POLICY_DOC))
        knowledge = knowledge_at_slide(50)
        # Repeated retunes saturate at the bound, after which the tactic
        # stops being applicable (no-op retunes are never planned).
        scale = sub.algorithm.partitioner.eta_scale
        assert scale == 1.0
        action = planner.plan(group, [symptom("candidate-blowup")], knowledge)[0]
        assert action.tactic.params["eta_scale"] <= ETA_SCALE_MAX

    def test_cooldown_blocks_repeat_adaptation(self):
        _, _, group = make_group("SAP")
        policy = Policy.from_dict(POLICY_DOC)
        planner = Planner(policy)
        knowledge = knowledge_at_slide(50)
        knowledge.log_event(
            AdaptationEvent(
                slide_index=45, subscription="q", tactic="swap-partitioner",
                trigger="score-drift", applied=True,
            )
        )
        assert planner.plan(group, [symptom("score-drift")], knowledge) == []
        # Outside the cooldown the same symptom plans again.
        knowledge2 = knowledge_at_slide(80)
        knowledge2.log_event(
            AdaptationEvent(
                slide_index=45, subscription="q", tactic="swap-partitioner",
                trigger="score-drift", applied=True,
            )
        )
        assert len(planner.plan(group, [symptom("score-drift")], knowledge2)) == 1

    def test_load_shed_respects_enable_gate_and_fraction(self):
        _, _, group = make_group("SAP")
        disabled = Policy.from_dict({**POLICY_DOC, "load_shedding": {"enabled": False}})
        assert Planner(disabled).plan(
            group, [symptom("latency-violation")], knowledge_at_slide(50)
        ) == []
        # stride 8 sheds 12.5% > max_fraction 10% -> not applicable.
        tight = Policy.from_dict(
            {**POLICY_DOC, "load_shedding": {"enabled": True, "max_fraction": 0.1}}
        )
        assert Planner(tight).plan(
            group, [symptom("latency-violation")], knowledge_at_slide(50)
        ) == []

    def test_load_shed_planned_once_per_tick(self):
        engine = StreamEngine()
        engine.subscribe("a", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        engine.subscribe("b", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        group = engine.subscription("a").group
        planner = Planner(Policy.from_dict(POLICY_DOC))
        knowledge = knowledge_at_slide(50, "a")
        knowledge.add_slide(
            SlideSample(
                subscription="b", algorithm="SAP", slide_index=50,
                latency=0.1, candidates=10, memory_bytes=320,
                top_score=1.0, window_size=200,
            )
        )
        actions = planner.plan(
            group,
            [symptom("latency-violation", "a"), symptom("latency-violation", "b")],
            knowledge,
        )
        assert [a.tactic.kind for a in actions] == ["load-shed"]

    def test_recovery_planned_when_latencies_back_under_budget(self):
        planner = Planner(Policy.from_dict(POLICY_DOC))
        calm = Knowledge()
        for i in range(40):
            calm.add_slide(
                SlideSample(
                    subscription="q", algorithm="SAP", slide_index=i,
                    latency=0.0001, candidates=10, memory_bytes=320,
                    top_score=1.0, window_size=200,
                )
            )
        recovery = planner.plan_recovery(calm, shedding_active=True)
        assert recovery is not None and recovery.tactic.kind == "load-recover"
        assert planner.plan_recovery(calm, shedding_active=False) is None

    def test_swap_algorithm_applicability(self):
        _, _, group = make_group("SAP")
        policy = Policy.from_dict(
            {"rules": [{"when": "score-drift", "tactic": "swap-algorithm", "to": "MinTopK"}]}
        )
        actions = Planner(policy).plan(group, [symptom("score-drift")], knowledge_at_slide(50))
        assert len(actions) == 1
        # Already on MinTopK: nothing to do.
        _, _, mt_group = make_group("MinTopK")
        assert Planner(policy).plan(
            mt_group, [symptom("score-drift")], knowledge_at_slide(50)
        ) == []


class TestRuleConstruction:
    def test_rule_needs_when_and_tactic(self):
        with pytest.raises(ValueError):
            Rule.from_dict({"when": "score-drift"})

    def test_tactic_describe(self):
        assert Tactic("swap-partitioner", {"to": "equal"}).describe() == (
            "swap-partitioner(to=equal)"
        )
        assert Tactic("load-recover").describe() == "load-recover"
