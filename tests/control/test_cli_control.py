"""Tests for the ``repro control`` CLI subcommand."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_control_defaults(self):
        args = build_parser().parse_args(["control"])
        assert args.command == "control"
        assert args.dataset == "DRIFT"
        assert args.algorithm == "SAP"
        assert args.objects == 12_000
        assert args.policy is None
        assert args.json is False

    def test_control_flags(self):
        args = build_parser().parse_args(
            ["control", "--policy", "p.json", "--latency-budget", "0.01", "--json"]
        )
        assert args.policy == "p.json"
        assert args.latency_budget == pytest.approx(0.01)
        assert args.json is True


class TestCommand:
    def test_control_prints_adaptation_log(self, capsys):
        exit_code = main(
            ["control", "--objects", "8000", "--n", "1000", "--k", "10", "--s", "50"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "adaptation:" in out
        assert "swap-partitioner" in out
        assert "score-drift" in out
        assert "accuracy  : exact" in out

    def test_control_json_dump(self, capsys):
        exit_code = main(
            ["control", "--objects", "6000", "--n", "500", "--k", "5", "--s", "25",
             "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dataset"] == "DRIFT"
        assert payload["accuracy"]["exact"] is True
        assert "p99_latency" in payload["stats"]
        assert isinstance(payload["events"], list)
        for event in payload["events"]:
            assert {"slide_index", "subscription", "tactic", "trigger"} <= set(event)

    def test_control_with_policy_file(self, capsys, tmp_path):
        policy_path = tmp_path / "policy.json"
        policy_path.write_text(
            json.dumps(
                {
                    "analyzers": {"drift": {"alpha": 0.01, "window": 16}},
                    "rules": [
                        {"when": "score-drift", "tactic": "swap-partitioner",
                         "to": "equal"}
                    ],
                }
            )
        )
        exit_code = main(
            ["control", "--objects", "6000", "--policy", str(policy_path), "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"]["rules"][0]["when"] == "score-drift"

    def test_control_on_stationary_stream_applies_nothing(self, capsys):
        exit_code = main(
            ["control", "--dataset", "TIMEU", "--objects", "4000", "--n", "500",
             "--k", "5", "--s", "25"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "0 applied" in out
