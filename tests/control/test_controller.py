"""Tests for the full MAPE-K loop wired onto a StreamEngine."""

import pytest

from repro.control import AdaptiveController, Policy
from repro.core.exceptions import AlgorithmStateError
from repro.core.query import TopKQuery
from repro.engine import StreamEngine
from repro.streams import make_dataset


def drift_stream(count=8_000):
    return make_dataset("DRIFT").take(count)


class TestAttachment:
    def test_attach_detach_lifecycle(self):
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        controller = AdaptiveController()
        engine.attach_controller(controller)
        assert engine.controller is controller
        assert controller.attached
        assert engine.detach_controller() is controller
        assert engine.controller is None
        assert not controller.attached
        assert engine.detach_controller() is None

    def test_single_controller_per_engine(self):
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        engine.attach_controller(AdaptiveController())
        with pytest.raises(AlgorithmStateError):
            engine.attach_controller(AdaptiveController())

    def test_controller_not_shareable_across_engines(self):
        left, right = StreamEngine(), StreamEngine()
        left.subscribe("q", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        right.subscribe("q", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        controller = AdaptiveController()
        left.attach_controller(controller)
        with pytest.raises(AlgorithmStateError):
            right.attach_controller(controller)

    def test_groups_created_after_attach_are_monitored(self):
        engine = StreamEngine(return_results=False)
        controller = AdaptiveController()
        engine.subscribe("early", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        engine.attach_controller(controller)
        engine.subscribe("late", TopKQuery(n=50, k=3, s=5), algorithm="SAP")
        engine.push_many(make_dataset("STOCK").take(400))
        assert controller.knowledge.sample_count("early") > 0
        assert controller.knowledge.sample_count("late") > 0

    def test_detach_stops_telemetry(self):
        engine = StreamEngine(return_results=False)
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        controller = AdaptiveController()
        engine.attach_controller(controller)
        stream = make_dataset("STOCK").take(400)
        engine.push_many(stream[:200])
        seen = controller.knowledge.sample_count("q")
        assert seen > 0
        engine.detach_controller()
        seals_seen = len(controller.knowledge.seals("q"))
        engine.push_many(stream[200:])
        assert controller.knowledge.sample_count("q") == seen
        # Seal taps are uninstalled too: no telemetry of any kind flows
        # into a detached controller.
        assert len(controller.knowledge.seals("q")) == seals_seen


class TestMonitorStage:
    def test_per_slide_samples_recorded(self):
        engine = StreamEngine(return_results=False)
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        controller = AdaptiveController()
        engine.attach_controller(controller)
        engine.push_many(make_dataset("STOCK").take(500))
        samples = controller.knowledge.slides("q")
        # 500 objects, n=100, s=10 -> 41 slides.
        assert len(samples) == 41
        assert [s.slide_index for s in samples] == list(range(41))
        assert all(s.latency >= 0.0 for s in samples)
        assert all(s.candidates > 0 for s in samples)
        assert all(s.top_score is not None for s in samples)
        assert samples[-1].window_size == 100

    def test_seal_telemetry_from_framework(self):
        engine = StreamEngine(return_results=False)
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        controller = AdaptiveController()
        engine.attach_controller(controller)
        engine.push_many(make_dataset("STOCK").take(500))
        seals = controller.knowledge.seals("q")
        assert seals, "SAP partition seals must reach the knowledge store"
        assert sum(s.size for s in seals) > 0

    def test_seal_stats_introspection(self):
        engine = StreamEngine(return_results=False)
        sub = engine.subscribe("q", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        engine.push_many(make_dataset("STOCK").take(500))
        stats = sub.algorithm.seal_stats()
        assert stats["partitions_sealed"] > 0
        assert stats["average_partition_size"] > 0
        assert stats["partitions_live"] >= 1
        assert stats["framework"]["partitions_sealed"] == stats["partitions_sealed"]

    def test_single_object_push_path(self):
        engine = StreamEngine()
        sub = engine.subscribe("q", TopKQuery(n=50, k=3, s=5), algorithm="SAP")
        controller = AdaptiveController()
        engine.attach_controller(controller)
        for obj in make_dataset("STOCK").take(120):
            engine.push(obj)
        assert controller.knowledge.sample_count("q") == len(sub.results())


class TestAdaptationEndToEnd:
    def test_drift_triggers_partitioner_swap(self):
        engine = StreamEngine(keep_results=False, return_results=False)
        sub = engine.subscribe(
            "watch", TopKQuery(n=1000, k=10, s=50), algorithm="SAP"
        )
        controller = AdaptiveController(Policy.default())
        engine.attach_controller(controller)
        engine.push_many(drift_stream())
        engine.flush()
        applied = controller.knowledge.applied_events()
        assert applied, "the DRIFT stream must trigger at least one tactic"
        assert applied[0].tactic == "swap-partitioner"
        assert applied[0].trigger == "score-drift"
        assert sub.algorithm.partitioner.name.startswith("equal")

    def test_controlled_answers_byte_identical(self):
        def run(controlled):
            engine = StreamEngine(return_results=False)
            sub = engine.subscribe(
                "watch", TopKQuery(n=1000, k=10, s=50), algorithm="SAP"
            )
            if controlled:
                engine.attach_controller(AdaptiveController(Policy.default()))
            engine.push_many(drift_stream())
            engine.flush()
            return [(r.slide_index, tuple(r.scores)) for r in sub.results()]

        assert run(True) == run(False)

    def test_cooldown_limits_adaptation_rate(self):
        engine = StreamEngine(keep_results=False, return_results=False)
        engine.subscribe("watch", TopKQuery(n=500, k=10, s=25), algorithm="SAP")
        policy = Policy.default()
        controller = AdaptiveController(policy)
        engine.attach_controller(controller)
        engine.push_many(drift_stream(16_000))
        engine.flush()
        applied = controller.knowledge.applied_events()
        for earlier, later in zip(applied, applied[1:]):
            if earlier.subscription == later.subscription:
                assert later.slide_index - earlier.slide_index >= policy.cooldown_slides

    def test_shedding_loop_engages_and_recovers(self):
        policy = Policy.from_dict(
            {
                "latency_budget_seconds": 1e-7,
                "cooldown_slides": 0,
                "analysis_interval_slides": 1,
                "analyzers": {
                    "latency": {"percentile": 0.5, "window": 8, "min_samples": 8}
                },
                "rules": [
                    {"when": "latency-violation", "tactic": "load-shed", "stride": 10}
                ],
                "load_shedding": {"enabled": True, "max_fraction": 0.2},
            }
        )
        engine = StreamEngine(keep_results=False, return_results=False)
        engine.subscribe("q", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        controller = AdaptiveController(policy)
        engine.attach_controller(controller)
        stream = make_dataset("STOCK").take(2200)
        engine.push_many(stream[:2000])
        assert controller.shedding_active
        report = controller.accuracy_report()
        assert report["shed"] > 0
        assert report["shed"] + report["admitted"] == 2000
        # With an impossible budget the engine never recovers; relax the
        # budget and the recovery planner disengages on the next tick.
        controller.policy.latency_budget_seconds = 1e9
        engine.push_many(stream[2000:])
        assert not controller.shedding_active
        kinds = [e.tactic for e in controller.knowledge.events()]
        assert "load-shed" in kinds and "load-recover" in kinds

    def test_aligned_chunk(self):
        engine = StreamEngine(return_results=False)
        engine.subscribe("a", TopKQuery(n=200, k=5, s=12), algorithm="SAP")
        engine.subscribe("b", TopKQuery(n=100, k=5, s=8), algorithm="SAP")
        controller = AdaptiveController()
        engine.attach_controller(controller)
        # lcm(12, 8) = 24; 256 rounds down to 240.
        assert controller.aligned_chunk(256) == 240
        assert controller.aligned_chunk(10) == 24

    def test_describe_reports_state(self):
        engine = StreamEngine(return_results=False)
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        controller = AdaptiveController()
        engine.attach_controller(controller)
        engine.push_many(make_dataset("STOCK").take(300))
        description = controller.describe()
        assert description["attached"] is True
        assert description["groups"] == 1
        assert description["accuracy"]["exact"] is True


class TestStatsPercentiles:
    def test_subscription_stats_expose_percentiles(self):
        engine = StreamEngine(return_results=False)
        sub = engine.subscribe("q", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        engine.push_many(make_dataset("STOCK").take(500))
        stats = sub.stats()
        for key in ("p50_latency", "p95_latency", "p99_latency"):
            assert key in stats
        assert stats["p50_latency"] == stats["median_latency"]
        assert stats["p50_latency"] <= stats["p95_latency"] <= stats["p99_latency"]
        assert stats["p99_latency"] <= stats["max_latency"]

    def test_engine_stats_pass_through(self):
        engine = StreamEngine(return_results=False)
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), algorithm="SAP")
        engine.push_many(make_dataset("STOCK").take(300))
        assert "p99_latency" in engine.stats()["q"]


class TestReviewRegressions:
    def test_shedding_gated_off_while_mintopk_is_live(self):
        """Stride shedding gaps arrival orders, which MinTopK's position
        arithmetic cannot survive — the valve must stay shut."""
        policy = Policy.from_dict(
            {
                "latency_budget_seconds": 1e-7,
                "cooldown_slides": 0,
                "analysis_interval_slides": 1,
                "analyzers": {
                    "latency": {"percentile": 0.5, "window": 8, "min_samples": 8}
                },
                "rules": [
                    {"when": "latency-violation", "tactic": "load-shed", "stride": 10}
                ],
                "load_shedding": {"enabled": True, "max_fraction": 0.2},
            }
        )
        engine = StreamEngine(keep_results=False, return_results=False)
        engine.subscribe("sap", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        engine.subscribe("mt", TopKQuery(n=100, k=5, s=10), algorithm="MinTopK")
        controller = AdaptiveController(policy)
        engine.attach_controller(controller)
        engine.push_many(make_dataset("STOCK").take(2000))
        assert not controller.shedding_active
        assert controller.accuracy_report()["exact"] is True

    def test_unsubscribe_discards_group_from_controller(self):
        engine = StreamEngine(return_results=False)
        controller = AdaptiveController()
        engine.attach_controller(controller)
        stream = make_dataset("STOCK").take(3000)
        for i in range(20):
            engine.subscribe(f"q{i}", TopKQuery(n=50, k=3, s=5), algorithm="SAP")
            engine.push_many(stream[i * 100 : (i + 1) * 100])
            engine.unsubscribe(f"q{i}")
        assert len(controller._groups) == 0

    def test_default_policy_budget_has_a_consuming_rule(self):
        policy = Policy.default(latency_budget_seconds=0.005)
        assert policy.rules_for("latency-violation"), (
            "a latency budget must come with a rule that reacts to it"
        )

    def test_swap_algorithm_noop_not_planned(self):
        """A swap to a name resolving to the current configuration must
        not trigger a full-window rebuild."""
        from repro.control.analyzers import Symptom
        from repro.control.planner import Planner

        policy = Policy.from_dict(
            {"rules": [{"when": "score-drift", "tactic": "swap-algorithm",
                        "to": "SAP-enhanced"}]}
        )
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        group = engine.subscription("q").group
        symptom = Symptom(kind="score-drift", subscription="q", severity=2.0)
        assert Planner(policy).plan(group, [symptom], controller_knowledge()) == []

    def test_swap_between_sap_variants_is_planned(self):
        from repro.control.analyzers import Symptom
        from repro.control.planner import Planner

        policy = Policy.from_dict(
            {"rules": [{"when": "score-drift", "tactic": "swap-algorithm",
                        "to": "SAP-equal"}]}
        )
        engine = StreamEngine()
        engine.subscribe("q", TopKQuery(n=200, k=5, s=10), algorithm="SAP")
        group = engine.subscription("q").group
        symptom = Symptom(kind="score-drift", subscription="q", severity=2.0)
        actions = Planner(policy).plan(group, [symptom], controller_knowledge())
        assert len(actions) == 1


def controller_knowledge():
    from repro.control.knowledge import Knowledge, SlideSample

    knowledge = Knowledge()
    knowledge.add_slide(
        SlideSample(
            subscription="q", algorithm="SAP", slide_index=50,
            latency=0.001, candidates=10, memory_bytes=320,
            top_score=1.0, window_size=200,
        )
    )
    return knowledge
