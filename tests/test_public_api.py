"""Tests of the package-level public API surface."""

import repro
from repro import algorithm_registry
from repro.core.query import TopKQuery


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), name

    def test_algorithm_registry_builds_every_algorithm(self):
        from repro.registry import get_algorithm

        query = TopKQuery(n=50, k=3, s=5)
        registry = algorithm_registry()
        assert {"SAP", "MinTopK", "k-skyband", "SMA", "brute-force"} <= set(registry)
        for name, factory in registry.items():
            algorithm = factory(query, **get_algorithm(name).example_options)
            assert algorithm.query is query, name

    def test_registry_algorithms_produce_results(self):
        from repro.registry import get_algorithm
        from repro.streams import UncorrelatedStream

        query = TopKQuery(n=40, k=3, s=10)
        stream = UncorrelatedStream(seed=1).take(120)
        registry = algorithm_registry()
        reference = None
        for name, factory in registry.items():
            if get_algorithm(name).example_options:
                # Preference algorithms replace the stream's score with
                # their own ranking function; their exactness is checked
                # against per-vector references in tests/property/.
                continue
            results = factory(query).run(stream)
            assert len(results) == 1 + (120 - 40) // 10, name
            identities = [result.identity() for result in results]
            if reference is None:
                reference = identities
            else:
                assert identities == reference, name
