"""Unit tests for the placement policies."""

import pytest

from repro.cluster.placement import (
    PLACEMENT_POLICIES,
    ClusterAffinePlacement,
    HashWindowPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    make_placement,
)
from repro.core.query import TopKQuery


class TestHashWindow:
    def test_same_shape_always_colocates(self):
        policy = HashWindowPlacement()
        loads = [0.0] * 4
        a = policy.place(TopKQuery(n=1000, k=5, s=50), loads)
        b = policy.place(TopKQuery(n=1000, k=50, s=50), loads)  # k differs only
        assert a == b

    def test_deterministic_across_instances(self):
        loads = [0.0] * 7
        query = TopKQuery(n=123, k=3, s=7)
        assert HashWindowPlacement().place(query, loads) == HashWindowPlacement().place(
            query, loads
        )

    def test_time_based_distinct_from_count_based(self):
        policy = HashWindowPlacement()
        loads = [0.0] * 64
        count = policy.place(TopKQuery(n=100, k=5, s=10), loads)
        timed = policy.place(TopKQuery(n=100, k=5, s=10, time_based=True), loads)
        # Same n/s but different window type hashes as a different shape.
        assert (count, timed) == (count, timed)  # both valid indices
        assert 0 <= count < 64 and 0 <= timed < 64

    def test_no_shards_rejected(self):
        with pytest.raises(ValueError):
            HashWindowPlacement().place(TopKQuery(n=10, k=2, s=5), [])


class TestLeastLoaded:
    def test_picks_minimum_load(self):
        policy = LeastLoadedPlacement()
        assert policy.place(TopKQuery(n=10, k=2, s=5), [3.0, 1.0, 2.0]) == 1

    def test_ties_break_to_lowest_index(self):
        policy = LeastLoadedPlacement()
        assert policy.place(TopKQuery(n=10, k=2, s=5), [1.0, 1.0, 1.0]) == 0

    def test_load_of_weights_slide_rate(self):
        policy = LeastLoadedPlacement()
        fine = policy.load_of(TopKQuery(n=100, k=5, s=1))
        coarse = policy.load_of(TopKQuery(n=100, k=5, s=100))
        assert fine > coarse
        assert policy.load_of(TopKQuery(n=100, k=5, s=10, time_based=True)) == 1.0


class TestClusterAffine:
    def test_same_cluster_always_colocates(self):
        """A cluster's shared plan only exists on one shard: every member
        of one cluster id must land on the same shard, whatever its
        window shape or the current loads."""
        policy = ClusterAffinePlacement()
        loads = [5.0, 0.0, 3.0, 1.0]
        placements = {
            policy.place_preference(TopKQuery(n=n, k=2, s=s), 7, loads)
            for n, s in [(100, 10), (100, 10), (500, 25), (40, 1)]
        }
        assert len(placements) == 1

    def test_distinct_clusters_spread(self):
        policy = ClusterAffinePlacement()
        loads = [0.0] * 8
        query = TopKQuery(n=100, k=5, s=10)
        shards = {
            policy.place_preference(query, cluster, loads) for cluster in range(64)
        }
        assert len(shards) > 1  # cluster hashing actually uses the id

    def test_deterministic_across_instances_and_policies(self):
        # place_preference is the *base-class* default, so every policy
        # co-locates a cluster identically (restarts reproduce placement).
        query = TopKQuery(n=100, k=5, s=10)
        loads = [0.0] * 5
        results = {
            policy().place_preference(query, 3, loads)
            for policy in (ClusterAffinePlacement, HashWindowPlacement, LeastLoadedPlacement)
        }
        assert len(results) == 1

    def test_plain_queries_keep_window_affinity(self):
        loads = [0.0] * 6
        query = TopKQuery(n=300, k=5, s=30)
        assert ClusterAffinePlacement().place(query, loads) == HashWindowPlacement().place(
            query, loads
        )

    def test_no_shards_rejected(self):
        with pytest.raises(ValueError):
            ClusterAffinePlacement().place_preference(TopKQuery(n=10, k=2, s=5), 0, [])


class TestRegistry:
    def test_make_placement_by_name(self):
        assert isinstance(make_placement("hash-window"), HashWindowPlacement)
        assert isinstance(make_placement("least-loaded"), LeastLoadedPlacement)
        assert isinstance(make_placement("hash-cluster"), ClusterAffinePlacement)

    def test_make_placement_passthrough(self):
        policy = LeastLoadedPlacement()
        assert make_placement(policy) is policy

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="hash-window"):
            make_placement("round-robin")

    def test_builtins_registered_under_their_names(self):
        for name, cls in PLACEMENT_POLICIES.items():
            assert cls.name == name
            assert issubclass(cls, PlacementPolicy)
