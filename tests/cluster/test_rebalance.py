"""Rebalancing: live subscription moves between shards preserve answers."""

import pytest

from repro import StreamEngine, TopKQuery
from repro.cluster import ShardedStreamEngine, ShardError

from ..conftest import make_objects, random_scores

QUERY = TopKQuery(n=120, k=6, s=10)
SIBLING = TopKQuery(n=120, k=12, s=10)  # same shape: forms a shared plan


@pytest.fixture(scope="module")
def stream():
    return make_objects(random_scores(1200, seed=31))


def expected_results(stream):
    engine = StreamEngine()
    engine.subscribe("mover", QUERY, algorithm="SAP")
    engine.subscribe("stayer", SIBLING, algorithm="SAP")
    engine.push_many(stream)
    return {name: [r.scores for r in engine.results(name)] for name in ("mover", "stayer")}


class TestRebalance:
    def test_mid_stream_move_preserves_answers(self, stream):
        expected = expected_results(stream)
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("mover", QUERY, algorithm="SAP", shard=0)
            engine.subscribe("stayer", SIBLING, algorithm="SAP", shard=0)
            engine.push_many(stream[:600])
            handle = engine.rebalance("mover", to_shard=1)
            assert handle.shard == 1
            assert engine.shard_of("mover") == 1
            engine.push_many(stream[600:])
            got = {
                name: [r.scores for r in engine.results(name)]
                for name in ("mover", "stayer")
            }
            assert got == expected

    def test_results_metrics_and_counters_travel(self, stream):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("mover", QUERY, algorithm="SAP", shard=0)
            engine.push_many(stream[:600])
            engine.synchronize()
            before = engine.stats()["mover"]
            retained_before = len(engine.results("mover"))
            engine.rebalance("mover", to_shard=1)
            after = engine.stats()["mover"]
            assert after["slides"] == before["slides"]
            assert after["results_delivered"] == before["results_delivered"]
            assert after["p95_latency"] == before["p95_latency"]
            assert len(engine.results("mover")) == retained_before

    def test_move_before_any_push(self):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("mover", QUERY, algorithm="SAP", shard=0)
            engine.rebalance("mover", to_shard=1)
            assert engine.shard_of("mover") == 1
            engine.push_many(make_objects(random_scores(240, seed=5)))
            engine.synchronize()
            assert engine.results("mover")

    def test_noop_move_to_same_shard(self, stream):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("mover", QUERY, algorithm="SAP", shard=1)
            handle = engine.rebalance("mover", to_shard=1)
            assert handle.shard == 1

    def test_bad_targets_rejected(self):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("mover", QUERY, algorithm="SAP")
            with pytest.raises(ValueError, match="out of range"):
                engine.rebalance("mover", to_shard=2)
            with pytest.raises(KeyError):
                engine.rebalance("missing", to_shard=0)

    def test_off_boundary_capture_fails_and_subscription_survives(self):
        # 125 objects = window fill (120) + half a slide: not a boundary.
        # The capture must fail on the source shard and the subscription
        # must keep working where it was.
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("mover", QUERY, algorithm="SAP", shard=0)
            objects = make_objects(random_scores(125, seed=9))
            # Bypass the facade's aligned chunking to land off-boundary.
            engine._router.push_chunk(objects, [0])
            with pytest.raises(ShardError, match="slide boundary"):
                engine.rebalance("mover", to_shard=1)
            assert engine.shard_of("mover") == 0
            engine.synchronize()
            assert len(engine.results("mover")) == 1


class TestLocalCaptureRestore:
    """The same contract on the single-process engine (no workers)."""

    def test_capture_unsubscribe_restore_roundtrip(self, stream):
        expected = expected_results(stream)
        source = StreamEngine()
        source.subscribe("mover", QUERY, algorithm="SAP")
        source.subscribe("stayer", SIBLING, algorithm="SAP")
        source.push_many(stream[:600], chunk_size=120)
        state = source.capture_subscription("mover")
        source.unsubscribe("mover")
        target = StreamEngine()
        target.restore_subscription(state)
        source.push_many(stream[600:], chunk_size=120)
        target.push_many(stream[600:], chunk_size=120)
        assert [r.scores for r in target.results("mover")] == expected["mover"]
        assert [r.scores for r in source.results("stayer")] == expected["stayer"]

    def test_captured_metrics_are_a_snapshot_not_an_alias(self, stream):
        # The capture leaves the source running; its further slides must
        # not leak into the captured state or a restored subscription.
        source = StreamEngine()
        source.subscribe("mover", QUERY, algorithm="SAP")
        source.push_many(stream[:600], chunk_size=120)
        state = source.capture_subscription("mover")
        target_a, target_b = StreamEngine(), StreamEngine()
        restored_a = target_a.restore_subscription(state)
        restored_b = target_b.restore_subscription(state)
        slides_at_capture = restored_a.stats()["slides"]
        source.push_many(stream[600:], chunk_size=120)
        target_b.push_many(stream[600:1200], chunk_size=120)
        # Neither the source's nor a sibling restore's activity bleeds in.
        assert restored_a.stats()["slides"] == slides_at_capture
        assert restored_a.metrics is not source.subscription("mover").metrics
        assert restored_a.metrics is not restored_b.metrics

    def test_restore_rejects_duplicates_and_junk(self, stream):
        engine = StreamEngine()
        engine.subscribe("mover", QUERY, algorithm="SAP")
        state = engine.capture_subscription("mover")
        with pytest.raises(ValueError, match="already subscribed"):
            engine.restore_subscription(state)
        with pytest.raises(TypeError, match="SubscriptionState"):
            engine.restore_subscription({"not": "a state"})

    def test_time_based_capture_rejected(self):
        from repro.core.exceptions import AlgorithmStateError

        engine = StreamEngine()
        engine.subscribe(
            "timed", TopKQuery(n=50, k=3, s=10, time_based=True), algorithm="SAP"
        )
        engine.push_many(make_objects(random_scores(200, seed=2)))
        with pytest.raises(AlgorithmStateError, match="time-based"):
            engine.capture_subscription("timed")
