"""Unit tests for the cluster merge layer."""

import pytest

from repro.cluster.merge import AggregatedKnowledge, merge_disjoint, merged_latency_stats


class TestMergeDisjoint:
    def test_union_of_disjoint_maps(self):
        merged = merge_disjoint([{"a": 1}, {"b": 2}, {}])
        assert merged == {"a": 1, "b": 2}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="several shards"):
            merge_disjoint([{"a": 1}, {"a": 2}])


def telemetry(latencies, max_latency=None):
    return {
        "stats": {
            "slides": len(latencies),
            "results_delivered": len(latencies),
            "max_latency": max_latency if max_latency is not None else max(latencies, default=0.0),
        },
        "latencies": list(latencies),
        "shard": 0,
    }


class TestMergedLatency:
    def test_decimated_samples_weighted_by_slides_represented(self):
        # A long-running slow subscription whose collector decimated its
        # history (10 retained samples for 1000 slides) must dominate a
        # quiet fast one (10 samples, 10 slides): the merged p50 is the
        # slow value, not a 50/50 sample mix.
        slow = {
            "stats": {"slides": 1000, "results_delivered": 1000, "max_latency": 1.0},
            "latencies": [1.0] * 10,
            "shard": 0,
        }
        fast = {
            "stats": {"slides": 10, "results_delivered": 10, "max_latency": 0.001},
            "latencies": [0.001] * 10,
            "shard": 1,
        }
        merged = merged_latency_stats([{"slow": slow}, {"fast": fast}])
        assert merged["p50_latency"] == pytest.approx(1.0)
        assert merged["slides"] == 1010

    def test_percentiles_from_combined_samples_not_averaged(self):
        # Shard A: 99 fast slides; shard B: 1 slow slide.  Averaging the
        # per-shard p50s would give ~0.5005s; the true merged p50 is fast.
        fast = telemetry([0.001] * 99)
        slow = telemetry([1.0])
        merged = merged_latency_stats([{"a": fast}, {"b": slow}])
        assert merged["p50_latency"] == pytest.approx(0.001)
        naive_average = (0.001 + 1.0) / 2
        assert merged["p50_latency"] < naive_average / 100
        assert merged["max_latency"] == pytest.approx(1.0)
        assert merged["slides"] == 100
        assert merged["latency_samples"] == 100

    def test_empty_cluster(self):
        merged = merged_latency_stats([])
        assert merged["p50_latency"] == 0.0
        assert merged["slides"] == 0

    def test_median_alias(self):
        merged = merged_latency_stats([{"a": telemetry([0.2, 0.4, 0.6])}])
        assert merged["median_latency"] == merged["p50_latency"]


def report(shard, events=(), admitted=0, shed=0, engagements=0, subs=None):
    return {
        "shard": shard,
        "events": list(events),
        "accuracy": {
            "admitted": admitted,
            "shed": shed,
            "shed_fraction": 0.0,
            "engagements": engagements,
            "exact": shed == 0,
        },
        "knowledge": {
            "subscriptions": subs or {},
            "events_total": len(events),
            "shedding": {},
        },
    }


def event(slide, tactic="swap", applied=True):
    return {
        "slide_index": slide,
        "subscription": "q",
        "tactic": tactic,
        "trigger": "t",
        "applied": applied,
        "detail": {},
    }


class TestAggregatedKnowledge:
    def test_events_merged_sorted_and_tagged(self):
        view = AggregatedKnowledge(
            [
                report(0, events=[event(10), event(30)]),
                None,  # a shard without a controller contributes nothing
                report(2, events=[event(20, applied=False)]),
            ]
        )
        merged = view.events()
        assert [e["slide_index"] for e in merged] == [10, 20, 30]
        assert [e["shard"] for e in merged] == [0, 2, 0]
        assert len(view.applied_events()) == 2
        assert view.events_total == 3
        assert view.shard_count == 2

    def test_shedding_combined(self):
        view = AggregatedKnowledge(
            [report(0, admitted=90, shed=10, engagements=1), report(1, admitted=100)]
        )
        account = view.shedding()
        assert account["admitted"] == 190
        assert account["shed"] == 10
        assert account["shed_fraction"] == pytest.approx(0.05)
        assert account["engagements"] == 1
        assert account["exact"] is False

    def test_subscriptions_tagged_with_shard(self):
        view = AggregatedKnowledge(
            [report(3, subs={"q": {"samples": 7, "latest_slide": 6, "seals": 0}})]
        )
        assert view.subscriptions()["q"]["shard"] == 3

    def test_describe_is_json_friendly(self):
        import json

        view = AggregatedKnowledge([report(0, events=[event(1)])])
        assert json.loads(json.dumps(view.describe()))["events_total"] == 1
