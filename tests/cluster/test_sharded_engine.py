"""End-to-end tests of :class:`repro.cluster.ShardedStreamEngine`.

Real worker processes, small streams: the acceptance property is that the
sharded plane is *indistinguishable* from a single-process engine — same
answers in the same order for every query — while actually running the
queries in separate processes.
"""

import pytest

from repro import StreamEngine, TopKQuery
from repro.cluster import ShardedStreamEngine, ShardError
from repro.core.exceptions import AlgorithmStateError

from ..conftest import make_objects, random_scores

QUERIES = {
    "fine": TopKQuery(n=120, k=5, s=10),
    "fine-deep": TopKQuery(n=120, k=20, s=10),   # same shape: shares a plan
    "coarse": TopKQuery(n=60, k=4, s=20),
    "wide": TopKQuery(n=200, k=8, s=40),
}


def reference_results(objects, algorithm="SAP"):
    engine = StreamEngine()
    for name, query in QUERIES.items():
        engine.subscribe(name, query, algorithm=algorithm)
    engine.push_many(objects)
    engine.flush()
    return {name: engine.results(name) for name in QUERIES}


def scores_of(results):
    return [r.scores for r in results]


@pytest.fixture(scope="module")
def stream():
    return make_objects(random_scores(1500, seed=29))


@pytest.fixture(scope="module")
def expected(stream):
    return reference_results(stream)


class TestEquivalence:
    @pytest.mark.parametrize("placement", ["hash-window", "least-loaded"])
    def test_matches_single_process_engine(self, stream, expected, placement):
        with ShardedStreamEngine(2, placement=placement) as engine:
            for name, query in QUERIES.items():
                engine.subscribe(name, query, algorithm="SAP")
            pushed = engine.push_many(stream)
            assert pushed == len(stream)
            engine.flush()
            for name in QUERIES:
                assert scores_of(engine.results(name)) == scores_of(expected[name])

    def test_push_single_objects(self, stream, expected):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("fine", QUERIES["fine"], algorithm="SAP")
            for obj in stream[:240]:
                assert engine.push(obj) == {}
            engine.synchronize()
            head = scores_of(expected["fine"])[: len(engine.results("fine"))]
            assert scores_of(engine.results("fine")) == head

    def test_hash_placement_keeps_shared_plans(self, stream):
        with ShardedStreamEngine(2, placement="hash-window") as engine:
            engine.subscribe("fine", QUERIES["fine"], algorithm="SAP")
            engine.subscribe("fine-deep", QUERIES["fine-deep"], algorithm="SAP")
            assert engine.shard_of("fine") == engine.shard_of("fine-deep")
            engine.push_many(stream[:600])
            plans = [
                plan
                for group in engine.groups()
                if group["members"] == ["fine", "fine-deep"]
                for plan in group["plans"]
            ]
            assert plans and plans[0]["k_max"] == 20


class TestFacadeSurface:
    def test_subscribe_requires_registry_name(self):
        with ShardedStreamEngine(1) as engine:
            from repro import SAPTopK

            with pytest.raises(TypeError, match="registry"):
                engine.subscribe("q", QUERIES["fine"], algorithm=SAPTopK(QUERIES["fine"]))

    def test_unpicklable_payload_raises_instead_of_hanging(self):
        # mp.Queue pickles in a feeder thread; without pre-validation a
        # lambda option would hang subscribe forever waiting for a reply.
        from repro.core.state import StateSerializationError

        with ShardedStreamEngine(1) as engine:
            with pytest.raises(StateSerializationError, match="picklable"):
                engine.subscribe(
                    "q",
                    TopKQuery(n=60, k=4, s=10, preference=lambda record: float(record)),
                )
            assert "q" not in engine

    def test_duplicate_names_rejected_locally(self):
        with ShardedStreamEngine(1) as engine:
            engine.subscribe("q", QUERIES["fine"])
            with pytest.raises(ValueError, match="already subscribed"):
                engine.subscribe("q", QUERIES["coarse"])

    def test_unknown_algorithm_surfaces_as_shard_error(self):
        with ShardedStreamEngine(1) as engine:
            with pytest.raises(ShardError, match="unknown algorithm"):
                engine.subscribe("q", QUERIES["fine"], algorithm="nope")
            # The facade did not record the failed subscription.
            assert "q" not in engine

    def test_push_without_queries_rejected(self, stream):
        with ShardedStreamEngine(1) as engine:
            with pytest.raises(ValueError, match="no queries"):
                engine.push_many(stream[:10])

    def test_membership_and_lengths(self):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("a", QUERIES["fine"])
            engine.subscribe("b", QUERIES["coarse"])
            assert len(engine) == 2
            assert "a" in engine and "missing" not in engine
            assert engine.subscriptions() == ["a", "b"]
            assert engine.shards == 2
            engine.unsubscribe("a")
            assert engine.subscriptions() == ["b"]
            with pytest.raises(KeyError):
                engine.subscription("a")

    def test_explicit_shard_placement(self):
        with ShardedStreamEngine(3) as engine:
            engine.subscribe("pinned", QUERIES["fine"], shard=2)
            assert engine.shard_of("pinned") == 2
            with pytest.raises(ValueError, match="out of range"):
                engine.subscribe("bad", QUERIES["coarse"], shard=3)

    def test_closed_engine_refuses_work(self):
        engine = ShardedStreamEngine(1)
        engine.subscribe("q", QUERIES["fine"])
        assert engine.close() == {}
        assert engine.closed
        assert engine.close() == {}  # idempotent
        with pytest.raises(AlgorithmStateError):
            engine.subscribe("r", QUERIES["coarse"])

    def test_stats_and_snapshot_merge(self, stream):
        with ShardedStreamEngine(2) as engine:
            for name, query in QUERIES.items():
                engine.subscribe(name, query, algorithm="SAP")
            engine.push_many(stream[:600])
            stats = engine.stats()
            assert set(stats) == set(QUERIES)
            assert stats["fine"]["slides"] > 0
            snapshot = engine.snapshot()
            assert snapshot["wide"]["algorithm"].startswith("SAP")
            merged = engine.aggregate_stats()
            assert merged["slides"] == sum(s["slides"] for s in stats.values())
            assert merged["p95_latency"] >= merged["p50_latency"] >= 0.0

    def test_subscription_handle_roundtrips(self, stream):
        with ShardedStreamEngine(2) as engine:
            handle = engine.subscribe("fine", QUERIES["fine"], result_buffer=3)
            engine.push_many(stream[:600])
            engine.synchronize()
            assert handle.latest() is not None
            retained = handle.results()
            assert len(retained) == 3  # the buffer bound applied in-worker
            drained = handle.drain()
            assert scores_of(drained) == scores_of(retained)
            assert handle.results() == []
            assert handle.stats()["slides"] > 0
            assert handle.snapshot()["name"] == "fine"


class TestWorkerFailure:
    def test_mid_stream_failure_is_latched_and_reported(self):
        # Objects must arrive in non-decreasing t order; violating that
        # inside a worker raises during an async push, which must surface
        # at the next synchronous command instead of vanishing.
        with ShardedStreamEngine(1) as engine:
            engine.subscribe("q", QUERIES["fine"])
            engine.push_many(make_objects(random_scores(240, seed=1)))
            bad = make_objects([1.0], start_t=0)  # t restarts at 0
            engine.push(bad[0])
            with pytest.raises(ShardError, match="failed during push"):
                engine.synchronize()

    def test_close_after_latched_failure_is_a_safe_noop(self):
        # A worker that latched a push failure replies "err" to every
        # synchronous opcode — including "close".  The facade's close must
        # swallow that (shutdown is best-effort), terminate the workers,
        # and stay a no-op when called again.
        engine = ShardedStreamEngine(2)
        engine.subscribe("q", QUERIES["fine"])
        engine.push_many(make_objects(random_scores(240, seed=3)))
        engine.push(make_objects([1.0], start_t=0)[0])  # t goes backwards
        with pytest.raises(ShardError, match="failed during push"):
            engine.synchronize()
        engine.close()  # must not raise despite the latched failure
        assert engine.closed
        engine.close()  # and repeating it is a safe no-op
        assert all(
            not shard.process.is_alive() for shard in engine._router._shards
        )

    def test_drain_results_merges_all_shards(self):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("fine", QUERIES["fine"])
            engine.subscribe("coarse", QUERIES["coarse"])
            engine.push_many(make_objects(random_scores(400, seed=4)))
            engine.synchronize()
            produced = engine.drain_results()
            assert set(produced) == {"fine", "coarse"}
            assert all(results for results in produced.values())
            # Drained on every shard: nothing is retained afterwards.
            assert engine.drain_results() == {}
            assert engine.results("fine") == []

    def test_healthy_shards_stay_usable_after_one_shard_fails(self):
        # A broadcast that hits one broken shard must still consume the
        # healthy shards' replies — otherwise every later request/reply
        # pair is off by one and returns stale payloads.
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("broken", QUERIES["fine"], shard=0)
            engine.subscribe("healthy", QUERIES["coarse"], shard=1)
            objects = make_objects(random_scores(240, seed=1))
            engine.push_many(objects)
            engine._router.push_chunk(make_objects([1.0], start_t=0), [0])
            with pytest.raises(ShardError, match="failed during push"):
                engine.synchronize()
            # The healthy shard still speaks the protocol correctly.
            results = engine.results("healthy")
            assert results and all(hasattr(r, "scores") for r in results)
            assert engine._router.request(1, ("sync",)) == len(objects)
