"""Tests of the sharded execution plane (repro.cluster)."""
