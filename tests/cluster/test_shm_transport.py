"""The shared-memory ring transport: protocol properties and end-to-end
byte-identity against the queue transport.

The ring tests run producer and consumer in one process (SPSC needs no
concurrency to exercise the protocol): wraparound under slot exhaustion is
driven by filling the ring to capacity, draining, and repeating with
message sizes that straddle slot boundaries.  The end-to-end tests run
real worker processes and assert the property the whole data plane hangs
on — answers over shm are indistinguishable from answers over queues,
which are indistinguishable from a single process.
"""

import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamEngine, TopKQuery
from repro.cluster import ShardedStreamEngine
from repro.cluster.router import ShardBackpressureError, ShardRouter
from repro.cluster.shm import (
    DEFAULT_SLOT_SIZE,
    DEFAULT_SLOTS,
    RingMessageTooLarge,
    RingTimeout,
    ShmRing,
    _SLOT_HEADER,
)
from repro.core.object import StreamObject

from ..conftest import make_objects, random_scores

#: A deliberately tiny ring: 4 slots of 64 bytes forces both wraparound
#: and multi-slot spanning with double-digit payload sizes.
TINY_SLOTS = 4
TINY_SLOT_SIZE = 64
TINY_PAYLOAD = TINY_SLOT_SIZE - _SLOT_HEADER.size


@pytest.fixture
def tiny_ring():
    ring = ShmRing.create(slots=TINY_SLOTS, slot_size=TINY_SLOT_SIZE)
    yield ring
    ring.unlink()


class TestRingProtocol:
    def test_fifo_roundtrip_with_wraparound(self, tiny_ring):
        """Many more messages than slots: every slot is reused repeatedly
        and payloads come back in order, byte for byte."""
        for round_number in range(10 * TINY_SLOTS):
            payload = bytes([round_number % 251]) * (round_number % (3 * TINY_PAYLOAD) + 1)
            tiny_ring.send(payload, timeout=1.0)
            assert tiny_ring.recv(timeout=1.0) == payload

    def test_slot_exhaustion_blocks_then_recovers(self, tiny_ring):
        """Fill every slot, observe backpressure, drain one message, and
        confirm the producer can continue exactly where it stalled."""
        for index in range(TINY_SLOTS):
            tiny_ring.send(bytes([index]) * TINY_PAYLOAD, timeout=1.0)
        with pytest.raises(RingTimeout):
            tiny_ring.send(b"overflow", timeout=0.05)
        assert tiny_ring.recv(timeout=1.0) == bytes([0]) * TINY_PAYLOAD
        tiny_ring.send(b"overflow", timeout=1.0)
        for index in range(1, TINY_SLOTS):
            assert tiny_ring.recv(timeout=1.0) == bytes([index]) * TINY_PAYLOAD
        assert tiny_ring.recv(timeout=1.0) == b"overflow"

    def test_message_spanning_every_slot(self, tiny_ring):
        payload = os.urandom(tiny_ring.capacity)
        tiny_ring.send(payload, timeout=1.0)
        assert tiny_ring.recv(timeout=1.0) == payload

    def test_oversize_message_rejected(self, tiny_ring):
        with pytest.raises(RingMessageTooLarge):
            tiny_ring.send(b"x" * (tiny_ring.capacity + 1))

    def test_try_recv_empty_returns_none(self, tiny_ring):
        assert tiny_ring.try_recv() is None
        tiny_ring.send(b"one")
        assert tiny_ring.try_recv() == b"one"
        assert tiny_ring.try_recv() is None

    def test_attach_sees_the_creator_messages(self, tiny_ring):
        reader = ShmRing.attach(tiny_ring.name)
        try:
            tiny_ring.send(b"cross-handle")
            assert reader.recv(timeout=1.0) == b"cross-handle"
        finally:
            reader.close()

    def test_default_geometry(self):
        ring = ShmRing.create()
        try:
            assert ring.slots == DEFAULT_SLOTS
            assert ring.capacity == DEFAULT_SLOTS * (DEFAULT_SLOT_SIZE - _SLOT_HEADER.size)
        finally:
            ring.unlink()

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=0, max_value=3 * TINY_PAYLOAD), min_size=1, max_size=40
        )
    )
    def test_random_sizes_roundtrip_in_order(self, sizes):
        """Randomized wraparound: arbitrary message sizes (empty through
        multi-slot) sent through a tiny ring come back in order."""
        ring = ShmRing.create(slots=TINY_SLOTS, slot_size=TINY_SLOT_SIZE)
        try:
            payloads = [bytes([i % 256]) * size for i, size in enumerate(sizes)]
            for payload in payloads:
                ring.send(payload, timeout=1.0)
                assert ring.recv(timeout=1.0) == payload
        finally:
            ring.unlink()


def _suspend(process):
    os.kill(process.pid, signal.SIGSTOP)
    time.sleep(0.05)  # let an in-flight get() finish before the freeze bites


def _resume(process):
    os.kill(process.pid, signal.SIGCONT)


class TestBackpressure:
    def test_shm_backpressure_raises_typed_error(self):
        """A congested shard (worker suspended, ring full) surfaces as a
        ShardBackpressureError naming the shard instead of hanging."""
        router = ShardRouter(
            1,
            transport="shm",
            backpressure_timeout=0.3,
            ring_slots=2,
            ring_slot_size=256,
        )
        try:
            worker = router._shards[0].process
            _suspend(worker)
            try:
                # 16 objects encode to ~272 bytes: within the 496-byte ring
                # but spanning both slots, so the second send must stall.
                chunk = make_objects(random_scores(16, seed=3))
                with pytest.raises(ShardBackpressureError) as excinfo:
                    for _ in range(64):
                        router.push_chunk(chunk, [0])
                assert excinfo.value.shard_id == 0
                assert "shard 0" in str(excinfo.value)
            finally:
                _resume(worker)
        finally:
            router.stop()

    def test_queue_backpressure_raises_typed_error(self):
        router = ShardRouter(
            1, transport="queue", queue_depth=1, backpressure_timeout=0.3
        )
        try:
            worker = router._shards[0].process
            _suspend(worker)
            try:
                chunk = make_objects(random_scores(64, seed=3))
                with pytest.raises(ShardBackpressureError) as excinfo:
                    for _ in range(256):
                        router.push_chunk(chunk, [0])
                assert excinfo.value.shard_id == 0
            finally:
                _resume(worker)
        finally:
            router.stop()


class TestTransportEquivalence:
    QUERIES = {
        "fine": TopKQuery(n=120, k=5, s=10),
        "fine-deep": TopKQuery(n=120, k=20, s=10),  # same shape: shares a plan
        "coarse": TopKQuery(n=60, k=4, s=20),
    }

    @pytest.fixture(scope="class")
    def stream(self):
        objects = make_objects(random_scores(1200, seed=31))
        # Exercise the out-of-band payload path and the timestamp mask on
        # a sprinkling of objects; exactness must be payload-oblivious.
        return [
            StreamObject(
                score=obj.score,
                t=obj.t,
                payload={"seq": obj.t} if obj.t % 7 == 0 else None,
                timestamp=obj.t * 2 if obj.t % 5 == 0 else None,
            )
            for obj in objects
        ]

    @pytest.fixture(scope="class")
    def expected(self, stream):
        engine = StreamEngine()
        for name, query in self.QUERIES.items():
            engine.subscribe(name, query, algorithm="SAP")
        engine.push_many(stream)
        engine.flush()
        return {name: engine.results(name) for name in self.QUERIES}

    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_answers_match_single_process(self, stream, expected, transport):
        with ShardedStreamEngine(2, transport=transport) as engine:
            assert engine.transport == transport
            for name, query in self.QUERIES.items():
                engine.subscribe(name, query, algorithm="SAP")
            engine.push_many(stream)
            engine.flush()
            for name in self.QUERIES:
                produced = engine.results(name)
                reference = expected[name]
                assert [r.identity() for r in produced] == [
                    r.identity() for r in reference
                ]

    def test_transport_stats_breakdown(self, stream):
        with ShardedStreamEngine(2, transport="shm") as engine:
            for name, query in self.QUERIES.items():
                engine.subscribe(name, query, algorithm="SAP")
            engine.push_many(stream)
            engine.flush()
            stats = engine.transport_stats()
        assert set(stats) == {0, 1}
        for entry in stats.values():
            assert entry["transport"] == "shm"
            assert entry["bytes"] > 0
            assert entry["decode_bytes"] > 0
            assert entry["decoded_objects"] > 0
            assert entry["encode_seconds"] >= 0.0
            assert entry["send_seconds"] >= 0.0
            assert entry["decode_seconds"] >= 0.0
