"""Cluster-side observability: merged metrics snapshots and tracing.

One engine run covers the three facade surfaces added for the
observability plane: ``metrics_snapshot()`` (worker registries merged
with the facade's, shard labels stamped), ``set_tracing()`` /
``collect_spans()`` (spans gathered from every process and stitched by
chunk/slide ids), and the span → Chrome-trace export path.
"""

import pytest

from repro.cluster import ShardedStreamEngine
from repro.core.query import TopKQuery
from repro.obs import find_series, render_prometheus, snapshot_value, to_chrome_trace
from repro.streams import make_dataset


@pytest.fixture(scope="module")
def traced_run():
    with ShardedStreamEngine(2, placement="least-loaded", transport="queue") as engine:
        engine.subscribe("a", TopKQuery(n=200, k=5, s=20), keep_results=False)
        engine.subscribe("b", TopKQuery(n=100, k=5, s=10), keep_results=False)
        engine.set_tracing(True)
        engine.push_many(make_dataset("STOCK").take(2000))
        engine.synchronize()
        snapshot = engine.metrics_snapshot()
        spans = engine.collect_spans()
    return snapshot, spans


class TestMetricsSnapshot:
    def test_cluster_instruments_present(self, traced_run):
        snapshot, _ = traced_run
        names = {record["name"] for record in snapshot}
        assert {
            "repro_events_ingested_total",
            "repro_slides_total",
            "repro_results_delivered_total",
            "repro_deliver_latency_seconds",
            "repro_stage_seconds",
            "repro_transport_bytes_total",
        } <= names

    def test_worker_series_carry_shard_labels(self, traced_run):
        snapshot, _ = traced_run
        shards = {
            (record.get("labels") or {}).get("shard")
            for record in find_series(snapshot, "repro_events_ingested_total")
        }
        assert {"0", "1"} <= shards

    def test_counts_match_the_workload(self, traced_run):
        # Every shard hosting a subscription receives the full stream, so
        # each shard-labelled ingest series counts exactly the workload.
        snapshot, _ = traced_run
        for shard in ("0", "1"):
            assert (
                snapshot_value(
                    snapshot, "repro_events_ingested_total", {"shard": shard}
                )
                == 2000.0
            )
        assert snapshot_value(snapshot, "repro_slides_total") > 0

    def test_snapshot_renders_as_prometheus_text(self, traced_run):
        snapshot, _ = traced_run
        text = render_prometheus(snapshot)
        assert "# TYPE repro_events_ingested_total counter" in text
        assert "repro_stage_seconds_bucket" in text


class TestTracing:
    def test_spans_cover_the_pipeline(self, traced_run):
        _, spans = traced_run
        stages = {span.stage for span in spans}
        assert {
            "ingest-batch",
            "encode",
            "send",
            "decode",
            "push",
            "merge",
            "deliver",
        } <= stages

    def test_spans_come_from_facade_and_workers(self, traced_run):
        _, spans = traced_run
        shards = {span.shard for span in spans}
        assert -1 in shards  # facade/router process
        assert shards - {-1}  # at least one worker shipped spans back

    def test_spans_are_time_ordered(self, traced_run):
        _, spans = traced_run
        starts = [span.start for span in spans]
        assert starts == sorted(starts)

    def test_transport_spans_stitch_by_chunk_sequence(self, traced_run):
        _, spans = traced_run
        sends = {span.slide for span in spans if span.stage == "send"}
        decodes = {span.slide for span in spans if span.stage == "decode"}
        assert decodes <= sends  # every decoded chunk was a sent chunk

    def test_chrome_export(self, traced_run):
        _, spans = traced_run
        document = to_chrome_trace(spans)
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(spans)

    def test_collect_drains(self, traced_run):
        # collect_spans drained every buffer inside the fixture's run.
        _, spans = traced_run
        assert spans  # sanity: the run produced spans at all
