"""Per-shard adaptive control and the aggregated knowledge view."""

import pytest

from repro import TopKQuery
from repro.cluster import ShardedStreamEngine, ShardError
from repro.control import Policy

from ..conftest import make_objects, random_scores


@pytest.fixture(scope="module")
def stream():
    return make_objects(random_scores(1200, seed=37))


class TestPerShardControl:
    def test_attach_detach_and_aggregated_view(self, stream):
        with ShardedStreamEngine(2) as engine:
            engine.subscribe("a", TopKQuery(n=120, k=5, s=10), shard=0)
            engine.subscribe("b", TopKQuery(n=60, k=4, s=10), shard=1)
            engine.attach_controllers(Policy.default())
            engine.push_many(stream)
            view = engine.knowledge()
            assert view.shard_count == 2
            subs = view.subscriptions()
            assert subs["a"]["shard"] == 0 and subs["b"]["shard"] == 1
            assert subs["a"]["samples"] > 0
            account = view.shedding()
            # Every object went to both shards; nothing was shed.
            assert account["exact"] is True
            assert account["admitted"] == 2 * len(stream)
            assert view.describe()["shards_with_controllers"] == 2
            engine.detach_controllers()
            assert engine.knowledge().shard_count == 0

    def test_double_attach_rejected(self, stream):
        with ShardedStreamEngine(1) as engine:
            engine.subscribe("a", TopKQuery(n=60, k=4, s=10))
            engine.attach_controllers(Policy.default())
            with pytest.raises(ShardError, match="already has a controller"):
                engine.attach_controllers(Policy.default())

    def test_controlled_run_stays_exact(self, stream):
        from repro import StreamEngine

        reference = StreamEngine()
        reference.subscribe("a", TopKQuery(n=120, k=5, s=10), algorithm="SAP-equal")
        reference.push_many(stream)
        expected = [r.scores for r in reference.results("a")]

        with ShardedStreamEngine(2) as engine:
            engine.subscribe("a", TopKQuery(n=120, k=5, s=10), algorithm="SAP-equal")
            engine.attach_controllers(Policy.default())
            engine.push_many(stream)
            assert [r.scores for r in engine.results("a")] == expected
