"""The cluster's per-shard transport_stats() merge.

The facade report joins two sides per shard — the router's
serialize/send counters and the worker's deserialize counters — so the
tests cover the join itself: a freshly opened plane (zero chunks moved),
a plane that moved data, and the dead-worker degradation where a shard's
worker reply is missing and the router-side half must survive alone.
"""

import pytest

from repro.cluster import ShardedStreamEngine
from repro.core.query import TopKQuery
from repro.streams import make_dataset

ROUTER_KEYS = {"encode_seconds", "send_seconds", "bytes", "batches", "objects"}
WORKER_KEYS = {
    "shard",
    "transport",
    "chunks",
    "decode_seconds",
    "decode_bytes",
    "decoded_batches",
    "decoded_objects",
}


@pytest.fixture()
def engine():
    with ShardedStreamEngine(2, transport="queue") as engine:
        yield engine


class TestTransportStatsMerge:
    def test_zero_chunk_plane_reports_zeroed_counters(self, engine):
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), keep_results=False)
        stats = engine.transport_stats()
        assert set(stats) == {0, 1}
        for record in stats.values():
            assert ROUTER_KEYS | WORKER_KEYS <= set(record)
            assert record["batches"] == 0
            assert record["bytes"] == 0
            assert record["decoded_batches"] == 0
            assert record["decoded_objects"] == 0

    def test_both_sides_agree_after_data_moved(self, engine):
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), keep_results=False)
        engine.push_many(make_dataset("STOCK").take(1000))
        engine.synchronize()
        stats = engine.transport_stats()
        moved = [record for record in stats.values() if record["batches"]]
        assert moved, "no shard moved any chunk"
        for record in moved:
            # The worker decoded exactly what the router sent it.
            assert record["decoded_batches"] == record["batches"]
            assert record["decoded_objects"] == record["objects"]
            assert record["decode_bytes"] == record["bytes"]
            assert record["transport"] == "queue"

    def test_dead_worker_reply_degrades_to_router_side(self, engine, monkeypatch):
        engine.subscribe("q", TopKQuery(n=100, k=5, s=10), keep_results=False)
        engine.push_many(make_dataset("STOCK").take(500))
        engine.synchronize()

        real_broadcast = engine._router.broadcast

        def broadcast(message):
            replies = real_broadcast(message)
            if message[0] == "transport_stats":
                replies = [None] + list(replies[1:])  # shard 0 died mid-reply
            return replies

        monkeypatch.setattr(engine._router, "broadcast", broadcast)
        stats = engine.transport_stats()
        assert set(stats) == {0, 1}
        # Shard 0 keeps its router-side half; the worker half is absent.
        assert ROUTER_KEYS <= set(stats[0])
        assert not WORKER_KEYS & set(stats[0])
        # The surviving shard still reports both sides.
        assert ROUTER_KEYS | WORKER_KEYS <= set(stats[1])
