"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core.object import StreamObject


def make_objects(scores, start_t: int = 0) -> List[StreamObject]:
    """Turn a plain list of scores into stream objects with sequential t."""
    return [StreamObject(score=float(s), t=start_t + i) for i, s in enumerate(scores)]


def random_scores(count: int, seed: int = 0, low: float = 0.0, high: float = 100.0):
    rng = random.Random(seed)
    return [rng.uniform(low, high) for _ in range(count)]


@pytest.fixture
def small_uniform_stream() -> List[StreamObject]:
    """600 objects with scores independent of arrival order."""
    return make_objects(random_scores(600, seed=42))


@pytest.fixture
def decreasing_stream() -> List[StreamObject]:
    """Anti-correlated stream: scores strictly decrease with arrival order."""
    return make_objects([1000.0 - i for i in range(600)])


@pytest.fixture
def increasing_stream() -> List[StreamObject]:
    """Correlated stream: scores strictly increase with arrival order."""
    return make_objects([float(i) for i in range(600)])
