"""Unit tests for dominance helpers and the reference k-skyband."""

import random

from repro.core.object import StreamObject
from repro.stats.dominance import (
    dominance_count,
    is_dominated_by,
    k_skyband,
    k_skyband_brute_force,
)

from ..conftest import make_objects, random_scores


class TestDominanceCount:
    def test_counts_only_later_higher_objects(self):
        target = StreamObject(score=5.0, t=5)
        others = [
            StreamObject(score=6.0, t=6),   # dominates
            StreamObject(score=7.0, t=4),   # earlier: does not dominate
            StreamObject(score=4.0, t=9),   # lower: does not dominate
            StreamObject(score=5.5, t=10),  # dominates
        ]
        assert dominance_count(target, others) == 2

    def test_is_dominated_by_matches_object_method(self):
        a = StreamObject(score=1.0, t=1)
        b = StreamObject(score=2.0, t=2)
        assert is_dominated_by(a, b) == a.dominated_by(b)


class TestKSkyband:
    def test_decreasing_scores_everything_is_skyband(self):
        objects = make_objects([10, 9, 8, 7, 6])
        assert len(k_skyband(objects, 2)) == 5

    def test_increasing_scores_only_newest_k_survive(self):
        objects = make_objects([1, 2, 3, 4, 5, 6])
        skyband = k_skyband(objects, 2)
        assert [o.t for o in skyband] == [4, 5]

    def test_k_zero_returns_empty(self):
        assert k_skyband(make_objects([1, 2, 3]), 0) == []

    def test_result_preserves_arrival_order(self):
        objects = make_objects(random_scores(50, seed=5))
        skyband = k_skyband(objects, 3)
        assert [o.t for o in skyband] == sorted(o.t for o in skyband)

    def test_matches_brute_force_on_random_streams(self):
        rng = random.Random(11)
        for _ in range(20):
            scores = [rng.uniform(0, 100) for _ in range(rng.randint(5, 60))]
            objects = make_objects(scores)
            k = rng.randint(1, 5)
            fast = {o.t for o in k_skyband(objects, k)}
            slow = {o.t for o in k_skyband_brute_force(objects, k)}
            assert fast == slow

    def test_skyband_contains_topk(self):
        objects = make_objects(random_scores(200, seed=8))
        k = 7
        skyband_ids = {o.t for o in k_skyband(objects, k)}
        topk = sorted(objects, key=lambda o: o.rank_key, reverse=True)[:k]
        assert all(o.t in skyband_ids for o in topk)

    def test_duplicate_scores(self):
        objects = make_objects([5, 5, 5, 5])
        # Later arrivals dominate earlier equal-score ones, so only the two
        # newest survive for k=2.
        assert [o.t for o in k_skyband(objects, 2)] == [2, 3]
