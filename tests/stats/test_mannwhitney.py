"""Unit tests for the Mann-Whitney rank-sum test (WRT)."""

import math
import random

import pytest

from repro.stats.mannwhitney import (
    lower_critical_value,
    normal_quantile,
    rank_sum,
    rank_sum_test,
    upper_critical_value,
)


class TestNormalQuantile:
    def test_median(self):
        assert abs(normal_quantile(0.5)) < 1e-9

    def test_known_quantiles(self):
        assert math.isclose(normal_quantile(0.975), 1.959964, abs_tol=1e-4)
        assert math.isclose(normal_quantile(0.95), 1.644854, abs_tol=1e-4)
        assert math.isclose(normal_quantile(0.025), -1.959964, abs_tol=1e-4)

    def test_symmetry(self):
        for p in [0.01, 0.1, 0.3, 0.45]:
            assert math.isclose(normal_quantile(p), -normal_quantile(1 - p), abs_tol=1e-8)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestRankSum:
    def test_total_rank_sum(self):
        sample1, sample2 = [1.0, 3.0], [2.0, 4.0, 5.0]
        r1, r2 = rank_sum(sample1, sample2)
        total = len(sample1) + len(sample2)
        assert r1 + r2 == total * (total + 1) / 2

    def test_clearly_larger_sample(self):
        r1, _ = rank_sum([10.0, 11.0, 12.0], [1.0, 2.0, 3.0])
        assert r1 == 4 + 5 + 6

    def test_ties_get_mid_ranks(self):
        r1, r2 = rank_sum([1.0, 2.0], [2.0, 3.0])
        # The two 2.0 values share ranks 2 and 3 -> 2.5 each.
        assert r1 == 1 + 2.5
        assert r2 == 2.5 + 4


class TestCriticalValues:
    def test_upper_above_lower(self):
        assert upper_critical_value(5, 10) > lower_critical_value(5, 10)

    def test_upper_critical_value_tail_probability(self):
        # Exhaustively verify the exact tail for a small case.
        n1, n2 = 3, 5
        critical = upper_critical_value(n1, n2, alpha=0.05)
        import itertools

        ranks = range(1, n1 + n2 + 1)
        sums = [sum(combo) for combo in itertools.combinations(ranks, n1)]
        tail = sum(1 for value in sums if value >= critical) / len(sums)
        assert tail <= 0.025
        tail_one_lower = sum(1 for value in sums if value >= critical - 1) / len(sums)
        assert tail_one_lower > 0.025

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            upper_critical_value(0, 5)


class TestRankSumTest:
    def test_small_samples_use_exact_distribution(self):
        outcome = rank_sum_test([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert not outcome.used_normal_approximation

    def test_large_samples_use_normal_approximation(self):
        sample1 = [float(i) for i in range(15)]
        sample2 = [float(i) + 0.5 for i in range(20)]
        outcome = rank_sum_test(sample1, sample2)
        assert outcome.used_normal_approximation

    def test_detects_clearly_larger_first_sample(self):
        rng = random.Random(1)
        sample1 = [rng.uniform(100, 110) for _ in range(12)]
        sample2 = [rng.uniform(0, 10) for _ in range(40)]
        assert rank_sum_test(sample1, sample2).first_is_larger

    def test_does_not_flag_identical_distributions(self):
        rng = random.Random(2)
        flagged = 0
        trials = 40
        for _ in range(trials):
            sample1 = [rng.uniform(0, 1) for _ in range(12)]
            sample2 = [rng.uniform(0, 1) for _ in range(30)]
            if rank_sum_test(sample1, sample2).first_is_larger:
                flagged += 1
        # Type-I error should be close to alpha/2 = 2.5%; allow generous slack.
        assert flagged <= trials * 0.2

    def test_small_sample_statistic_positive_only_when_dominant(self):
        dominant = rank_sum_test([50.0, 60.0, 70.0], [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        weak = rank_sum_test([1.0, 2.0, 3.0], [4.0, 5.0, 6.0, 7.0, 8.0, 9.0])
        assert dominant.statistic > weak.statistic
        assert not weak.first_is_larger

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            rank_sum_test([], [1.0])
        with pytest.raises(ValueError):
            rank_sum_test([1.0], [])
