"""Unit tests for the selection (quickselect / median) substrate."""

import random

import pytest

from repro.stats.selection import kth_largest, median, select, top_values


class TestSelect:
    def test_select_matches_sorted_order(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for rank in range(len(values)):
            assert select(values, rank) == sorted(values)[rank]

    def test_select_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        select(values, 1)
        assert values == [3.0, 1.0, 2.0]

    def test_select_with_duplicates(self):
        values = [2.0, 2.0, 2.0, 1.0, 3.0]
        assert select(values, 0) == 1.0
        assert select(values, 4) == 3.0
        assert select(values, 2) == 2.0

    def test_select_single_element(self):
        assert select([42.0], 0) == 42.0

    def test_select_invalid_inputs(self):
        with pytest.raises(ValueError):
            select([], 0)
        with pytest.raises(ValueError):
            select([1.0], 1)
        with pytest.raises(ValueError):
            select([1.0], -1)

    def test_select_random_agreement_with_sort(self):
        rng = random.Random(3)
        for _ in range(50):
            values = [rng.uniform(-100, 100) for _ in range(rng.randint(1, 60))]
            rank = rng.randrange(len(values))
            assert select(values, rank) == sorted(values)[rank]


class TestKthLargestAndMedian:
    def test_kth_largest(self):
        values = [10.0, 40.0, 20.0, 30.0]
        assert kth_largest(values, 1) == 40.0
        assert kth_largest(values, 4) == 10.0

    def test_kth_largest_out_of_range(self):
        with pytest.raises(ValueError):
            kth_largest([1.0], 2)
        with pytest.raises(ValueError):
            kth_largest([1.0], 0)

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_is_lower_median(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.0

    def test_median_empty(self):
        with pytest.raises(ValueError):
            median([])


class TestTopValues:
    def test_plain_values(self):
        assert top_values([1, 5, 3], 2) == [5, 3]

    def test_with_key(self):
        records = [{"v": 1}, {"v": 9}, {"v": 4}]
        best = top_values(records, 2, key=lambda r: r["v"])
        assert [r["v"] for r in best] == [9, 4]

    def test_count_larger_than_input(self):
        assert top_values([2, 1], 10) == [2, 1]

    def test_non_positive_count(self):
        assert top_values([1, 2, 3], 0) == []
