"""Unit tests for the 3-sigma equation solvers (η, ζ*, ζ_max)."""

import math

import pytest

from repro.stats.solvers import eta_for_k, eta_k, zeta_max, zeta_star


class TestZetaStar:
    @pytest.mark.parametrize("k", [1, 2, 5, 10, 50, 100, 1000])
    def test_zeta_star_satisfies_three_sigma(self, k):
        zs = zeta_star(k)
        # (ζ − k)/√ζ ≥ 3 for the returned integer and < 3 just below it.
        assert (zs - k) / math.sqrt(zs) >= 3.0 - 1e-9
        assert (zs - 1 - k) / math.sqrt(zs - 1) < 3.0 or zs - 1 <= k

    def test_zeta_star_exceeds_k(self):
        for k in [1, 10, 100]:
            assert zeta_star(k) > k

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            zeta_star(0)


class TestZetaMax:
    @pytest.mark.parametrize("k", [1, 5, 10, 100])
    def test_zeta_max_above_zeta_star(self, k):
        assert zeta_max(k) > zeta_star(k)

    def test_zeta_max_satisfies_three_sigma(self):
        k = 10
        zs, zm = zeta_star(k), zeta_max(k)
        assert (zm - zs) / math.sqrt(zs) >= 3.0 - 1e-9


class TestEta:
    @pytest.mark.parametrize("k", [1, 5, 10, 100, 1000])
    def test_eta_times_k_satisfies_three_sigma(self, k):
        eta = eta_for_k(k)
        x = eta * k
        assert abs((x - k) / math.sqrt(x) - 3.0) < 1e-9

    def test_eta_decreases_with_k(self):
        assert eta_for_k(10) > eta_for_k(100) > eta_for_k(1000)

    def test_eta_always_above_one(self):
        for k in [1, 10, 100, 10_000]:
            assert eta_for_k(k) > 1.0

    def test_eta_k_matches_zeta_star(self):
        # ηk solves the same equation as ζ*, so the ceilings agree.
        for k in [1, 7, 64, 500]:
            assert eta_k(k) == zeta_star(k)
