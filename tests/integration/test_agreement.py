"""Integration tests: every algorithm returns identical answers.

These tests replay the same streams through the SAP framework (all three
partitioners, both meaningful-set policies, with and without the S-AVL) and
all competitor algorithms, asserting window-by-window agreement with the
brute-force oracle across datasets and query parameters.
"""

import pytest

from repro import (
    BruteForceTopK,
    KSkybandTopK,
    MinTopK,
    SAPTopK,
    SMATopK,
    TopKQuery,
    compare_algorithms,
)
from repro.partitioning import (
    DynamicPartitioner,
    EnhancedDynamicPartitioner,
    EqualPartitioner,
)
from repro.streams import make_dataset

SAP_VARIANTS = [
    lambda q: SAPTopK(q, partitioner=EqualPartitioner()),
    lambda q: SAPTopK(q, partitioner=DynamicPartitioner()),
    lambda q: SAPTopK(q, partitioner=EnhancedDynamicPartitioner()),
    lambda q: SAPTopK(q, meaningful_policy="eager"),
    lambda q: SAPTopK(q, meaningful_policy="amortized"),
    lambda q: SAPTopK(q, use_savl=False),
]

ALL_COUNT_BASED = [BruteForceTopK] + SAP_VARIANTS + [MinTopK, KSkybandTopK, SMATopK]


@pytest.mark.parametrize("dataset", ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"])
def test_all_algorithms_agree_on_default_parameters(dataset):
    objects = make_dataset(dataset).take(1500)
    query = TopKQuery(n=300, k=10, s=30)
    outcome = compare_algorithms(ALL_COUNT_BASED, objects, query)
    assert outcome.agree, f"{dataset}: {outcome.disagreement}"


@pytest.mark.parametrize(
    "n,k,s",
    [
        (100, 5, 1),     # per-object sliding
        (100, 5, 50),    # s >> k
        (100, 50, 5),    # k >> s
        (200, 1, 20),    # k = 1
        (120, 10, 120),  # tumbling window (s = n)
        (96, 7, 8),      # s does not divide n
    ],
)
def test_all_algorithms_agree_across_query_parameters(n, k, s):
    objects = make_dataset("TIMEU").take(1200)
    query = TopKQuery(n=n, k=k, s=s)
    outcome = compare_algorithms(ALL_COUNT_BASED, objects, query)
    assert outcome.agree, f"(n={n}, k={k}, s={s}): {outcome.disagreement}"


@pytest.mark.parametrize("dataset", ["TIMER", "STOCK"])
def test_adversarial_distributions_small_slide(dataset):
    objects = make_dataset(dataset).take(1000)
    query = TopKQuery(n=250, k=20, s=5)
    outcome = compare_algorithms(ALL_COUNT_BASED, objects, query)
    assert outcome.agree, f"{dataset}: {outcome.disagreement}"


def test_time_based_windows_agree():
    import random

    from repro.core.object import StreamObject

    rng = random.Random(13)
    objects = []
    timestamp = 0
    for t in range(2500):
        if rng.random() < 0.5:
            timestamp += rng.randint(1, 4)
        objects.append(StreamObject(score=rng.uniform(0, 100), t=t, timestamp=timestamp))

    query = TopKQuery(n=200, k=8, s=25, time_based=True)
    outcome = compare_algorithms(
        [BruteForceTopK] + SAP_VARIANTS + [KSkybandTopK, SMATopK], objects, query
    )
    assert outcome.agree, outcome.disagreement


def test_candidate_ordering_matches_paper_expectation():
    """Candidate-set sizes follow the paper's ordering (Table 6): SAP keeps
    the fewest candidates, and in the paper's default regime (s < k) the
    plain k-skyband baseline does not beat MinTopK."""
    objects = make_dataset("TIMEU").take(3000)
    query = TopKQuery(n=600, k=20, s=10)
    outcome = compare_algorithms(
        [BruteForceTopK, SAPTopK, MinTopK, KSkybandTopK], objects, query
    )
    assert outcome.agree
    sap = outcome.report("SAP[enhanced-dynamic]").average_candidates
    mintopk = outcome.report("MinTopK").average_candidates
    skyband = outcome.report("k-skyband").average_candidates
    assert sap < mintopk
    assert sap < skyband


def test_memory_ordering_matches_paper_expectation():
    """Memory follows the same ordering as candidate counts (Table 8)."""
    objects = make_dataset("TIMER").take(3000)
    query = TopKQuery(n=600, k=20, s=30)
    outcome = compare_algorithms(
        [BruteForceTopK, SAPTopK, MinTopK, KSkybandTopK], objects, query
    )
    assert outcome.agree
    sap = outcome.report("SAP[enhanced-dynamic]").average_memory_kb
    skyband = outcome.report("k-skyband").average_memory_kb
    assert skyband > sap
