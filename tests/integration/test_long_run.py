"""Longer-horizon integration tests exercising many partition transitions."""

import pytest

from repro import BruteForceTopK, SAPTopK, TopKQuery, compare_algorithms
from repro.partitioning import EqualPartitioner, EnhancedDynamicPartitioner
from repro.streams import TimeCorrelatedStream, UncorrelatedStream


def test_many_partition_retirements():
    """A long run with a small window retires dozens of partitions; the
    framework must stay exact throughout."""
    objects = UncorrelatedStream(seed=99).take(6000)
    query = TopKQuery(n=120, k=6, s=12)
    outcome = compare_algorithms(
        [BruteForceTopK, lambda q: SAPTopK(q, partitioner=EqualPartitioner(m=6))],
        objects,
        query,
    )
    assert outcome.agree, outcome.disagreement


def test_sine_wave_with_multiple_periods():
    """TIMER-style data cycles through up- and downtrends repeatedly, which
    stresses the dynamic partitioner's threshold resets and the S-AVL
    formation on downtrending fronts."""
    objects = TimeCorrelatedStream(period=500, seed=7).take(5000)
    query = TopKQuery(n=400, k=15, s=40)
    outcome = compare_algorithms(
        [BruteForceTopK, lambda q: SAPTopK(q, partitioner=EnhancedDynamicPartitioner())],
        objects,
        query,
    )
    assert outcome.agree, outcome.disagreement


@pytest.mark.parametrize("m", [1, 2, 3, 5, 9, 17, 33])
def test_equal_partition_resolution_sweep(m):
    """Every equal-partition resolution of Table 2 must stay exact."""
    objects = UncorrelatedStream(seed=m).take(2500)
    query = TopKQuery(n=500, k=10, s=25)
    outcome = compare_algorithms(
        [BruteForceTopK, lambda q: SAPTopK(q, partitioner=EqualPartitioner(m=m))],
        objects,
        query,
    )
    assert outcome.agree, f"m={m}: {outcome.disagreement}"


def test_partition_sizes_respect_bounds():
    """Dynamic partitions stay within [l_min, l_max] and are slide-aligned."""
    objects = UncorrelatedStream(seed=3).take(4000)
    query = TopKQuery(n=800, k=10, s=20)
    sap = SAPTopK(query, partitioner=EnhancedDynamicPartitioner())
    sap.run(objects)
    partitioner = sap.partitioner
    sizes = sap.partition_sizes()
    assert sizes
    for size in sizes[:-1]:  # the last partition may still be the force-sealed tail
        assert size % query.s == 0
        assert size <= partitioner.l_max
