"""Unit tests for the order-statistic AVL tree."""

import random

import pytest

from repro.structures.avl import AVLTree


class TestBasics:
    def test_empty_tree(self):
        tree = AVLTree()
        assert len(tree) == 0
        assert not tree
        assert 5 not in tree

    def test_insert_and_contains(self):
        tree = AVLTree()
        tree.insert(3, "three")
        tree.insert(1, "one")
        assert 3 in tree and 1 in tree and 2 not in tree
        assert tree.get(3) == "three"
        assert tree.get(99, "missing") == "missing"

    def test_insert_replaces_value_for_existing_key(self):
        tree = AVLTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    def test_remove(self):
        tree = AVLTree()
        for key in [5, 2, 8, 1, 3]:
            tree.insert(key)
        assert tree.remove(2)
        assert not tree.remove(2)
        assert len(tree) == 4
        tree.check_invariants()

    def test_clear(self):
        tree = AVLTree()
        tree.insert(1)
        tree.clear()
        assert len(tree) == 0


class TestExtremes:
    def test_min_max(self):
        tree = AVLTree()
        for key in [5, 2, 8, 1, 3]:
            tree.insert(key, str(key))
        assert tree.min_item() == (1, "1")
        assert tree.max_item() == (8, "8")

    def test_pop_min_and_max(self):
        tree = AVLTree()
        for key in [5, 2, 8]:
            tree.insert(key)
        assert tree.pop_min()[0] == 2
        assert tree.pop_max()[0] == 8
        assert len(tree) == 1

    def test_empty_extremes_raise(self):
        tree = AVLTree()
        with pytest.raises(KeyError):
            tree.min_item()
        with pytest.raises(KeyError):
            tree.max_item()


class TestOrderStatistics:
    def _filled(self):
        tree = AVLTree()
        for key in [10, 20, 30, 40, 50]:
            tree.insert(key)
        return tree

    def test_count_greater(self):
        tree = self._filled()
        assert tree.count_greater(25) == 3
        assert tree.count_greater(50) == 0
        assert tree.count_greater(5) == 5

    def test_count_less(self):
        tree = self._filled()
        assert tree.count_less(25) == 2
        assert tree.count_less(10) == 0
        assert tree.count_less(100) == 5

    def test_kth_largest(self):
        tree = self._filled()
        assert tree.kth_largest(1)[0] == 50
        assert tree.kth_largest(5)[0] == 10

    def test_kth_largest_out_of_range(self):
        tree = self._filled()
        with pytest.raises(KeyError):
            tree.kth_largest(0)
        with pytest.raises(KeyError):
            tree.kth_largest(6)

    def test_largest_helper(self):
        tree = self._filled()
        assert [key for key, _ in tree.largest(2)] == [50, 40]


class TestIteration:
    def test_items_sorted_ascending(self):
        tree = AVLTree()
        keys = [5, 1, 9, 3, 7]
        for key in keys:
            tree.insert(key)
        assert tree.keys() == sorted(keys)

    def test_items_descending(self):
        tree = AVLTree()
        for key in [5, 1, 9]:
            tree.insert(key)
        assert [k for k, _ in tree.items_descending()] == [9, 5, 1]

    def test_values(self):
        tree = AVLTree()
        tree.insert(2, "b")
        tree.insert(1, "a")
        assert tree.values() == ["a", "b"]


class TestStress:
    def test_random_workload_keeps_invariants(self):
        rng = random.Random(7)
        tree = AVLTree()
        mirror = {}
        for _ in range(2000):
            key = rng.randrange(500)
            if rng.random() < 0.6:
                tree.insert(key, key * 2)
                mirror[key] = key * 2
            else:
                removed = tree.remove(key)
                assert removed == (key in mirror)
                mirror.pop(key, None)
        tree.check_invariants()
        assert len(tree) == len(mirror)
        assert tree.keys() == sorted(mirror)

    def test_sequential_inserts_stay_balanced(self):
        tree = AVLTree()
        for key in range(1000):
            tree.insert(key)
        tree.check_invariants()
        # A balanced tree over 1000 keys must answer order statistics fast
        # and correctly.
        assert tree.count_greater(499) == 500

    def test_tuple_keys(self):
        tree = AVLTree()
        tree.insert((1.0, 3), "a")
        tree.insert((1.0, 5), "b")
        tree.insert((2.0, 1), "c")
        assert tree.max_item()[1] == "c"
        assert tree.count_greater((1.0, 3)) == 2
