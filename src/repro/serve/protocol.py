"""Wire protocols of the serving layer: HTTP/1.1, SSE, and WebSocket.

Everything here is standard-library only, built directly on
:mod:`asyncio` stream readers/writers.  The HTTP support is deliberately
minimal — request-line + headers + ``Content-Length`` bodies, JSON in and
out — because the serving layer's API surface is small and a dependency
on a web framework would break the repository's no-new-deps rule.  Two
streaming protocols ride on top of a parsed request:

* **Server-Sent Events** (:func:`sse_event`): one-directional result push
  with named events; any HTTP client that can read a chunked response can
  consume it (``curl -N`` included).
* **WebSocket** (:func:`websocket_accept_key`, :class:`WebSocketWriter`,
  :func:`read_websocket_frame`): RFC 6455 server side — handshake,
  unmasked server→client text frames, masked client frames, close/ping
  control frames.  Enough for result push; no fragmentation or
  extensions.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Upper bound on the request head (request line + headers) and on JSON
#: bodies.  Oversized requests are rejected instead of buffered.
MAX_HEAD_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: RFC 6455 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

HTTP_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or oversized request; maps to an HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    #: Path segments, split on "/" with empties dropped:
    #: ``/subscriptions/fire/stream`` -> ("subscriptions", "fire", "stream").
    segments: Tuple[str, ...] = field(default=())

    def json(self) -> object:
        """The body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from None

    def wants_keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` when the peer closed.

    Raises :class:`ProtocolError` on malformed input, which the caller
    turns into an error response before dropping the connection.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if len(line) > MAX_HEAD_BYTES:
        raise ProtocolError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {version}")

    headers: Dict[str, str] = {}
    head_bytes = len(line)
    while True:
        line = await reader.readline()
        head_bytes += len(line)
        if head_bytes > MAX_HEAD_BYTES:
            raise ProtocolError(400, "request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(400, "invalid Content-Length") from None
        if size > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body over {MAX_BODY_BYTES} bytes")
        if size:
            try:
                body = await reader.readexactly(size)
            except (EOFError, ConnectionError, OSError):
                return None
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        segments=tuple(part for part in split.path.split("/") if part),
    )


def render_response(
    status: int,
    payload: object = None,
    *,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
    content_type: Optional[str] = None,
) -> bytes:
    """Render a full response; dict/list payloads are serialized as JSON.

    ``content_type`` overrides the inferred type (the ``/metrics``
    endpoint serves bytes as Prometheus text, not an octet stream).
    """
    if payload is None:
        body = b""
        content_type = None
    elif isinstance(payload, bytes):
        body = payload
        content_type = content_type or "application/octet-stream"
    else:
        body = (json.dumps(payload) + "\n").encode()
        content_type = "application/json"
    reason = HTTP_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if content_type is not None:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def error_response(status: int, message: str, *, headers=None, keep_alive=True) -> bytes:
    return render_response(
        status, {"error": message}, headers=headers, keep_alive=keep_alive
    )


# ----------------------------------------------------------------------
# Server-Sent Events
# ----------------------------------------------------------------------
SSE_HEADER = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-store\r\n"
    b"Connection: close\r\n\r\n"
)


def sse_event(data: object, event: Optional[str] = None) -> bytes:
    """One SSE frame; dict/list data is serialized as JSON."""
    if not isinstance(data, str):
        data = json.dumps(data)
    lines = []
    if event is not None:
        lines.append(f"event: {event}")
    for chunk in data.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode()


def sse_comment(text: str) -> bytes:
    """An SSE comment line (keep-alive / informational, not an event)."""
    return f": {text}\n\n".encode()


# ----------------------------------------------------------------------
# WebSocket (RFC 6455, server side)
# ----------------------------------------------------------------------
def is_websocket_upgrade(request: HttpRequest) -> bool:
    return (
        "websocket" in request.headers.get("upgrade", "").lower()
        and "sec-websocket-key" in request.headers
    )


def websocket_accept_key(client_key: str) -> str:
    digest = hashlib.sha1((client_key + _WS_GUID).encode()).digest()
    return base64.b64encode(digest).decode()


def websocket_handshake_response(request: HttpRequest) -> bytes:
    accept = websocket_accept_key(request.headers["sec-websocket-key"])
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
    ).encode("latin-1")


def encode_websocket_frame(payload: bytes, opcode: int = 0x1) -> bytes:
    """One unmasked server→client frame (FIN set, no fragmentation)."""
    head = bytes([0x80 | opcode])
    length = len(payload)
    if length < 126:
        head += bytes([length])
    elif length < 1 << 16:
        head += bytes([126]) + struct.pack("!H", length)
    else:
        head += bytes([127]) + struct.pack("!Q", length)
    return head + payload


async def read_websocket_frame(reader) -> Optional[Tuple[int, bytes]]:
    """Read one client frame; returns ``(opcode, payload)`` or ``None`` at EOF.

    Client frames are masked per RFC 6455; the mask is applied here so the
    caller sees plain payload bytes.
    """
    try:
        head = await reader.readexactly(2)
    except (EOFError, ConnectionError, OSError):
        return None
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    try:
        if length == 126:
            length = struct.unpack("!H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack("!Q", await reader.readexactly(8))[0]
        if length > MAX_BODY_BYTES:
            return None
        mask = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (EOFError, ConnectionError, OSError):
        return None
    if masked and payload:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return opcode, payload


#: WebSocket control opcodes the serving layer reacts to.
WS_TEXT, WS_CLOSE, WS_PING, WS_PONG = 0x1, 0x8, 0x9, 0xA
