"""Idempotent ingestion: event-id dedupe and slide-aligned batching.

Network producers deliver *at least* once — a webhook that times out is
retried, a reconnecting publisher replays its tail — but the engine's
arrival-order contract needs every object exactly once.  The bridge is a
bounded LRU **dedupe window** over producer-supplied event ids: an id seen
while still inside the window is dropped (and counted), so redelivery is
invisible downstream, while the bound keeps memory O(window) no matter
how long the service runs.  Eviction re-admits: an id replayed after its
entry aged out of the window is treated as new, which is the standard
idempotency-window trade-off (producers must not replay older than the
window, and :attr:`DedupeWindow.evictions` says when that assumption is
at risk).

Admitted events become :class:`~repro.core.object.StreamObject` instances
with a server-assigned, strictly increasing arrival order — producers
never coordinate on ``t`` — and accumulate in an :class:`IngestBatcher`
that releases them in slide-aligned batches for
:meth:`~repro.engine.core.EngineCore.push_many`, so each engine dispatch
moves whole slides and results surface at batch boundaries.
"""

from __future__ import annotations

from collections import OrderedDict
from math import gcd
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.object import StreamObject

#: Default dedupe-window capacity (distinct event ids remembered).
DEFAULT_DEDUPE_WINDOW = 65_536

#: Ceiling for slide alignment, mirroring the cluster facade's bound: a
#: pathological mix of slide sizes must not make batches unbounded.
MAX_ALIGNED_BATCH = 32_768


class DedupeWindow:
    """Bounded LRU set of event ids giving at-least-once producers
    exactly-once engine semantics.

    ``admit(event_id)`` returns ``True`` exactly once per id while the id
    remains inside the window.  Admission refreshes recency, so a hot id
    that keeps being redelivered stays deduplicated; only ids idle long
    enough to be evicted can be re-admitted.
    """

    def __init__(self, capacity: int = DEFAULT_DEDUPE_WINDOW) -> None:
        if capacity < 1:
            raise ValueError(f"dedupe capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._seen: "OrderedDict[str, None]" = OrderedDict()
        self.admitted = 0
        self.duplicates = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, event_id: object) -> bool:
        return event_id in self._seen

    def admit(self, event_id: str) -> bool:
        """True when this id is new (or aged out); False on a duplicate."""
        if event_id in self._seen:
            self._seen.move_to_end(event_id)
            self.duplicates += 1
            return False
        self._seen[event_id] = None
        if len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
            self.evictions += 1
        self.admitted += 1
        return True

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "tracked_ids": len(self._seen),
            "admitted": self.admitted,
            "duplicates": self.duplicates,
            "evictions": self.evictions,
        }


def parse_event(raw: object) -> Tuple[Optional[str], float, object]:
    """Validate one wire event; returns ``(id, score, payload)``.

    An event is a JSON object with a numeric ``score``, an optional
    string ``id`` (events without an id bypass deduplication — the
    producer has declared them non-retried), and an optional ``payload``
    carried through to the :class:`StreamObject` untouched.
    """
    if not isinstance(raw, dict):
        raise ValueError(f"an event must be a JSON object, got {type(raw).__name__}")
    if "score" not in raw:
        raise ValueError("an event requires a numeric 'score'")
    score = raw["score"]
    if isinstance(score, bool) or not isinstance(score, (int, float)):
        raise ValueError(f"event score must be a number, got {score!r}")
    event_id = raw.get("id")
    if event_id is not None and not isinstance(event_id, str):
        raise ValueError(f"event id must be a string, got {event_id!r}")
    return event_id, float(score), raw.get("payload")


class IngestBatcher:
    """Accumulates admitted objects and releases slide-aligned batches.

    The serving layer appends admitted events one at a time (arrival
    order is assigned here, under the event loop, so it is contention-
    free) and periodically asks for a batch to push:

    * :meth:`take_aligned` returns the largest prefix that is a whole
      multiple of the current slide alignment — called when enough
      events are pending;
    * :meth:`take_all` empties the buffer regardless of alignment —
      called by the linger timer and by graceful shutdown, so a quiet
      stream still makes progress.
    """

    def __init__(self) -> None:
        self._pending: List[StreamObject] = []
        self._next_t = 0
        self._alignment = 1
        self.ingested = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def alignment(self) -> int:
        return self._alignment

    @property
    def next_arrival(self) -> int:
        return self._next_t

    def set_alignment(self, slide_sizes: Iterable[int]) -> int:
        """Recompute the batch alignment as the LCM of the given slide
        sizes, clamped to :data:`MAX_ALIGNED_BATCH` (falling back to 1
        exactly like the cluster facade does)."""
        lcm = 1
        for s in slide_sizes:
            if s < 1:
                continue
            lcm = lcm * s // gcd(lcm, s)
            if lcm > MAX_ALIGNED_BATCH:
                lcm = 1
                break
        self._alignment = lcm
        return lcm

    def resume_from(self, next_t: int) -> int:
        """Advance the arrival clock past a recovered stream's tail.

        After crash recovery the engine's windows already contain objects
        up to some ``t``; new arrivals must continue the same dense
        sequence, never rewind it.
        """
        self._next_t = max(self._next_t, int(next_t))
        return self._next_t

    def append(self, score: float, payload: object = None) -> StreamObject:
        obj = StreamObject(score=score, t=self._next_t, payload=payload)
        self._next_t += 1
        self._pending.append(obj)
        self.ingested += 1
        return obj

    def take_aligned(self) -> List[StreamObject]:
        """Remove and return the largest slide-aligned pending prefix."""
        take = (len(self._pending) // self._alignment) * self._alignment
        if not take:
            return []
        batch = self._pending[:take]
        del self._pending[:take]
        return batch

    def take_all(self) -> List[StreamObject]:
        """Remove and return everything pending (linger / shutdown path)."""
        batch = self._pending
        self._pending = []
        return batch

    def stats(self) -> Dict[str, int]:
        return {
            "ingested": self.ingested,
            "pending": len(self._pending),
            "alignment": self._alignment,
        }
