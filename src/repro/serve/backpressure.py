"""Admission control and slow-client backpressure for the serving layer.

Two independent valves keep a long-running service bounded:

* **Admission control** caps how many subscriptions the engine carries.
  Past the cap, creation requests are refused with ``429`` and a
  ``Retry-After`` hint instead of degrading everyone already admitted —
  the same reject-at-the-door shape the sharded router uses for its
  bounded command queues.
* **Client channels** bound the results queued for each connected
  streaming client.  The engine never waits for the network: when a slow
  consumer falls behind, its channel applies a policy — ``drop-oldest``
  (default; newest answers win, drops are counted and reported in stats)
  or ``disconnect`` (the channel closes and the client must reconnect,
  which is the honest choice when losing answers is worse than losing
  the connection).  Either way the engine's throughput is independent of
  the slowest subscriber.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional

#: Slow-client policies of :class:`ClientChannel`.
DROP_OLDEST = "drop-oldest"
DISCONNECT = "disconnect"
SLOW_CLIENT_POLICIES = (DROP_OLDEST, DISCONNECT)

#: Default per-client queue bound (delivered results awaiting the socket).
DEFAULT_CLIENT_QUEUE = 256


class AdmissionError(Exception):
    """The subscription cap is reached; carries the Retry-After hint."""

    def __init__(self, limit: int, retry_after: int) -> None:
        super().__init__(
            f"subscription limit {limit} reached; retry after {retry_after}s"
        )
        self.limit = limit
        self.retry_after = retry_after


class AdmissionControl:
    """Counts live subscriptions against a hard cap."""

    def __init__(self, max_subscriptions: int, retry_after: int = 5) -> None:
        if max_subscriptions < 1:
            raise ValueError(
                f"max_subscriptions must be positive, got {max_subscriptions}"
            )
        self.max_subscriptions = max_subscriptions
        self.retry_after = retry_after
        self.active = 0
        self.rejected = 0

    def admit(self) -> None:
        """Claim a slot or raise :class:`AdmissionError` (counted)."""
        if self.active >= self.max_subscriptions:
            self.rejected += 1
            raise AdmissionError(self.max_subscriptions, self.retry_after)
        self.active += 1

    def release(self) -> None:
        self.active = max(0, self.active - 1)

    def stats(self) -> Dict[str, int]:
        return {
            "max_subscriptions": self.max_subscriptions,
            "active": self.active,
            "rejected": self.rejected,
        }


class ChannelClosed(Exception):
    """Raised to a reader whose channel was closed under it."""


class ClientChannel:
    """Bounded, single-reader result queue between engine and one client.

    The producer side (:meth:`offer`) is synchronous and never blocks —
    it runs on the event loop right after an engine drain.  The consumer
    side (:meth:`get`) is a coroutine the client's writer task awaits.
    ``maxlen`` bounds the queue; the policy decides what an overflow
    means.
    """

    def __init__(
        self, maxlen: int = DEFAULT_CLIENT_QUEUE, policy: str = DROP_OLDEST
    ) -> None:
        if maxlen < 1:
            raise ValueError(f"channel maxlen must be positive, got {maxlen}")
        if policy not in SLOW_CLIENT_POLICIES:
            raise ValueError(
                f"unknown slow-client policy {policy!r}; "
                f"choose from {SLOW_CLIENT_POLICIES}"
            )
        self.maxlen = maxlen
        self.policy = policy
        self._items: Deque[object] = deque()
        self._ready = asyncio.Event()
        self.delivered = 0
        self.dropped = 0
        self.closed = False
        #: Why the channel closed ("server-shutdown", "slow-client", ...);
        #: surfaced to the client as the final stream event.
        self.close_reason: Optional[str] = None

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, item: object) -> bool:
        """Enqueue one result; returns False when the channel is closed.

        On overflow, ``drop-oldest`` evicts the head (counted) and
        ``disconnect`` closes the channel — the pending items stay
        readable so the client sees everything produced before the
        overflow, then the closing event.
        """
        if self.closed:
            return False
        if len(self._items) >= self.maxlen:
            if self.policy == DROP_OLDEST:
                self._items.popleft()
                self.dropped += 1
            else:
                self.dropped += 1
                self.close("slow-client")
                return False
        self._items.append(item)
        self.delivered += 1
        self._ready.set()
        return True

    async def get(self) -> object:
        """Await the next result; raises :class:`ChannelClosed` once the
        channel is closed *and* drained."""
        while True:
            if self._items:
                item = self._items.popleft()
                if not self._items:
                    self._ready.clear()
                return item
            if self.closed:
                raise ChannelClosed(self.close_reason or "closed")
            self._ready.clear()
            await self._ready.wait()

    def close(self, reason: str = "closed") -> None:
        """Close the channel (idempotent); pending items stay readable."""
        if not self.closed:
            self.closed = True
            self.close_reason = reason
        self._ready.set()

    def stats(self) -> Dict[str, object]:
        return {
            "queue": len(self._items),
            "maxlen": self.maxlen,
            "policy": self.policy,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "closed": self.closed,
        }
