"""Client-facing subscription sessions and their result routing.

A :class:`Session` is the serving layer's view of one engine
subscription: the query it answers, the handle the engine returned
(:class:`~repro.engine.subscription.Subscription` locally,
:class:`~repro.cluster.sharded.ShardSubscription` on the sharded plane —
both expose the same read surface), the set of currently connected
streaming clients, and the delivery accounting that the REST API reports
alongside the engine's own p50/p95/p99 statistics.

Result flow is fan-out: after each ingest batch the server drains every
subscription's new answers in one engine call and hands them to
:meth:`SessionRegistry.dispatch`, which serializes each answer once and
offers it to every channel of the owning session under that channel's
backpressure policy.  Clients that connect mid-stream simply start
receiving from the next batch — answers are not replayed (the polling
endpoint serves history instead).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set

from ..core.result import TopKResult
from .backpressure import ClientChannel


def result_record(name: str, result: TopKResult) -> Dict[str, object]:
    """The JSON shape of one answer, shared by SSE, WebSocket, and REST.

    ``objects`` carries the full total-order identity ``(score, t)`` of
    every result object, best first, so a network consumer can check
    byte-identity against an embedded engine run.
    """
    return {
        "subscription": name,
        "slide_index": result.slide_index,
        "window_end": result.window_end,
        "objects": [{"score": o.score, "t": o.t} for o in result.objects],
    }


class Session:
    """One served subscription: engine handle plus connected clients."""

    def __init__(
        self,
        name: str,
        query,
        algorithm: str,
        handle,
        *,
        history: int = 1024,
        preference=None,
    ) -> None:
        self.name = name
        self.query = query
        self.algorithm = algorithm
        self.handle = handle
        #: Declared linear preference vector (None for pre-scored queries).
        self.preference = tuple(preference) if preference is not None else None
        self.created_at = time.time()
        self.channels: Set[ClientChannel] = set()
        #: Bounded answer history served by the REST polling endpoint
        #: (streaming clients receive answers live instead).
        self.history: Deque[Dict[str, object]] = deque(maxlen=history)
        self.results_pushed = 0
        self.results_dropped = 0
        self.clients_disconnected = 0

    def attach(self, channel: ClientChannel) -> ClientChannel:
        self.channels.add(channel)
        return channel

    def detach(self, channel: ClientChannel) -> None:
        self.channels.discard(channel)

    def read_history(self, drain: bool = False) -> List[Dict[str, object]]:
        """The retained answer records, oldest first; ``drain`` consumes."""
        records = list(self.history)
        if drain:
            self.history.clear()
        return records

    def deliver(self, record: Dict[str, object]) -> None:
        """Offer one serialized answer to every connected client."""
        self.results_pushed += 1
        self.history.append(record)
        for channel in tuple(self.channels):
            before = channel.dropped
            accepted = channel.offer(record)
            self.results_dropped += channel.dropped - before
            if not accepted and channel.closed:
                # A disconnect-policy overflow: the channel is finished,
                # stop offering to it (its writer task sees the close).
                self.channels.discard(channel)
                self.clients_disconnected += 1

    def close(self, reason: str) -> None:
        for channel in tuple(self.channels):
            channel.close(reason)
        self.channels.clear()

    def describe(self) -> Dict[str, object]:
        """The subscription record of the REST API (no engine round-trip)."""
        extras = (
            {} if self.preference is None else {"preference": list(self.preference)}
        )
        return {
            **extras,
            "name": self.name,
            "query": {
                "n": self.query.n,
                "k": self.query.k,
                "s": self.query.s,
                "time_based": self.query.time_based,
            },
            "algorithm": self.algorithm,
            "created_at": self.created_at,
            "clients": len(self.channels),
            "results_pushed": self.results_pushed,
            "results_dropped": self.results_dropped,
            "clients_disconnected": self.clients_disconnected,
        }

    def stats(self) -> Dict[str, object]:
        """The record plus the engine's aggregate statistics (one engine
        round-trip; includes the p50/p95/p99 latency percentiles).

        Preference subscriptions add their ``cluster`` record — id,
        shared/private/drifted mode, re-rank and fallback counters — read
        from the engine snapshot in the same round-trip."""
        record = self.describe()
        record["engine"] = self.handle.stats()
        if self.preference is not None:
            record["cluster"] = self.handle.snapshot().get("cluster")
        return record


class SessionRegistry:
    """All live sessions, keyed by subscription name."""

    def __init__(self) -> None:
        self._sessions: Dict[str, Session] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: object) -> bool:
        return name in self._sessions

    def add(self, session: Session) -> Session:
        if session.name in self._sessions:
            raise ValueError(f"session {session.name!r} already exists")
        self._sessions[session.name] = session
        return session

    def get(self, name: str) -> Optional[Session]:
        return self._sessions.get(name)

    def remove(self, name: str) -> Optional[Session]:
        return self._sessions.pop(name, None)

    def names(self) -> List[str]:
        return list(self._sessions)

    def sessions(self) -> List[Session]:
        return list(self._sessions.values())

    def slide_sizes(self) -> List[int]:
        """Count-based slide sizes of every session (alignment input)."""
        return [
            session.query.s
            for session in self._sessions.values()
            if not session.query.time_based
        ]

    def dispatch(self, produced: Dict[str, Iterable[TopKResult]]) -> int:
        """Route drained answers to their sessions; returns answers routed."""
        routed = 0
        for name, results in produced.items():
            session = self._sessions.get(name)
            if session is None:
                continue  # unsubscribed between drain and dispatch
            for result in results:
                session.deliver(result_record(name, result))
                routed += 1
        return routed

    def close_all(self, reason: str) -> None:
        for session in self._sessions.values():
            session.close(reason)

    def totals(self) -> Dict[str, int]:
        pushed = sum(s.results_pushed for s in self._sessions.values())
        dropped = sum(s.results_dropped for s in self._sessions.values())
        clients = sum(len(s.channels) for s in self._sessions.values())
        return {
            "sessions": len(self._sessions),
            "clients": clients,
            "results_pushed": pushed,
            "results_dropped": dropped,
        }
