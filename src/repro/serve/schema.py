"""The one place the serving wire surface is defined.

Everything the HTTP layer exposes is declared here as data — the route
table below *is* the router (:meth:`repro.serve.app.TopKServer._route`
dispatches by walking it) and *is* the documentation (the README's
endpoint table is rendered from it by :func:`markdown_table`, with a test
asserting the two stay identical).  Adding an endpoint means adding one
:class:`Route` line; the dispatcher, the 404/405 behaviour, the
``/v1`` aliasing, and the docs all follow.

Versioning: the canonical surface lives under ``/v1/...``.  The original
unversioned paths remain as **deprecated aliases** — same handlers, same
payloads — and every response to one carries a ``Deprecation: true``
header plus a ``Link`` to its successor, per the IETF deprecation-header
draft, so clients can migrate on their own schedule while operators can
alert on the header.

The subscription *body* schema is owned by
:meth:`repro.engine.spec.QuerySpec.from_dict` — the same validator every
other subscribe entry point uses — so the wire contract and the library
contract cannot drift either; :data:`SUBSCRIPTION_BODY_FIELDS` re-exports
the accepted keys for documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

#: The canonical API version prefix (no leading slash).
API_VERSION = "v1"

#: Accepted keys of the ``POST /v1/subscriptions`` JSON body, validated
#: by :meth:`repro.engine.spec.QuerySpec.from_dict` (plus ``name``,
#: consumed by the serving layer itself).
SUBSCRIPTION_BODY_FIELDS = (
    "name",
    "n",
    "k",
    "s",
    "time_based",
    "algorithm",
    "options",
    "preference",
    "cluster_id",
    "pad_factor",
)


@dataclass(frozen=True)
class Route:
    """One endpoint: method, path pattern, handler key, doc line.

    ``pattern`` segments are literals or ``{param}`` placeholders;
    ``handler`` names a method key the application binds at startup;
    ``streaming`` marks handlers that take over the connection (SSE /
    WebSocket), which therefore cannot carry deprecation headers.
    """

    method: str
    pattern: Tuple[str, ...]
    handler: str
    doc: str
    streaming: bool = False

    @property
    def path(self) -> str:
        """The canonical (versioned) path of this route."""
        return "/" + "/".join((API_VERSION,) + self.pattern)

    @property
    def legacy_path(self) -> str:
        """The deprecated unversioned alias."""
        return "/" + "/".join(self.pattern)


#: The wire surface.  Order matters only for documentation.
ROUTES: Tuple[Route, ...] = (
    Route("GET", ("health",), "health", "liveness probe"),
    Route("GET", ("stats",), "stats", "server-wide ingest/session stats"),
    Route("GET", ("metrics",), "metrics", "Prometheus text format 0.0.4"),
    Route("GET", ("metrics.json",), "metrics_json",
          "JSON metrics snapshot (`repro top`)"),
    Route("POST", ("events",), "ingest",
          "ingest events (idempotent by id)"),
    Route("POST", ("subscriptions",), "create_subscription",
          "create a continuous query (429 + `Retry-After` past the cap)"),
    Route("GET", ("subscriptions",), "list_subscriptions",
          "list subscription records"),
    Route("GET", ("subscriptions", "{name}"), "get_subscription",
          "record + engine stats (p50/p95/p99)"),
    Route("DELETE", ("subscriptions", "{name}"), "delete_subscription",
          "unsubscribe"),
    Route("GET", ("subscriptions", "{name}", "results"), "get_results",
          "poll retained answers (`?drain=true`)"),
    Route("GET", ("subscriptions", "{name}", "stream"), "stream_sse",
          "push answers over SSE", streaming=True),
    Route("GET", ("subscriptions", "{name}", "ws"), "stream_ws",
          "push answers over WebSocket", streaming=True),
)


class RouteNotFound(Exception):
    """No route matches the path (HTTP 404)."""


class MethodNotAllowed(Exception):
    """The path exists but not with this method (HTTP 405); carries the
    methods that *are* allowed."""

    def __init__(self, allowed: Sequence[str]) -> None:
        super().__init__(", ".join(sorted(allowed)))
        self.allowed = tuple(sorted(allowed))


@dataclass(frozen=True)
class Match:
    """A resolved request: the route, its path params, and whether the
    client used the deprecated unversioned alias."""

    route: Route
    params: Dict[str, str]
    deprecated: bool

    def deprecation_headers(self) -> Optional[Dict[str, str]]:
        """Headers announcing the alias's deprecation (None when the
        canonical path was used)."""
        if not self.deprecated:
            return None
        return {
            "Deprecation": "true",
            "Link": f'<{self.route.path}>; rel="successor-version"',
        }


def _match_one(route: Route, segments: Sequence[str]) -> Optional[Dict[str, str]]:
    if len(route.pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(route.pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


def match(method: str, segments: Sequence[str]) -> Match:
    """Resolve a request against the table (both path forms).

    Raises :class:`RouteNotFound` (404) when no pattern matches and
    :class:`MethodNotAllowed` (405) when the path exists under another
    method — the distinction the hand-written router used to special-case.
    """
    segments = tuple(segments)
    deprecated = True
    if segments and segments[0] == API_VERSION:
        segments = segments[1:]
        deprecated = False
    allowed = set()
    for route in ROUTES:
        params = _match_one(route, segments)
        if params is None:
            continue
        if route.method == method:
            return Match(route=route, params=params, deprecated=deprecated)
        allowed.add(route.method)
    if allowed:
        raise MethodNotAllowed(allowed)
    raise RouteNotFound()


def markdown_table() -> str:
    """The endpoint table as GitHub markdown — the README embeds exactly
    this text (a test regenerates and compares, so they cannot drift)."""
    rows = [
        ("Method", "Path", "Purpose"),
        ("---", "---", "---"),
    ]
    for route in ROUTES:
        rows.append((route.method, f"`{route.path}`", route.doc))
    return "\n".join("| " + " | ".join(row) + " |" for row in rows)
