"""The network serving layer: ``repro serve`` as an embeddable package.

Turns a live engine (:class:`repro.StreamEngine` or
:class:`repro.cluster.ShardedStreamEngine`) into a long-running
subscription service: a REST API for subscription lifecycle, idempotent
event ingestion (at-least-once producers get exactly-once engine
semantics through a bounded dedupe window), and per-client result push
over SSE or WebSocket with bounded queues and explicit backpressure.
Standard-library only — the whole service is asyncio + sockets.

Quickstart (embedded)::

    from repro.serve import ServeConfig, run_in_thread

    with run_in_thread(ServeConfig(port=0)) as handle:
        print("serving on", handle.base_url)
        ...  # talk to it over HTTP

or from the command line: ``repro serve --port 8765``.
"""

from .app import ServeConfig, ServerHandle, TopKServer, run_in_thread
from .backpressure import (
    DISCONNECT,
    DROP_OLDEST,
    SLOW_CLIENT_POLICIES,
    AdmissionControl,
    AdmissionError,
    ChannelClosed,
    ClientChannel,
)
from .ingest import DedupeWindow, IngestBatcher, parse_event
from .sessions import Session, SessionRegistry, result_record

__all__ = [
    "ServeConfig",
    "TopKServer",
    "ServerHandle",
    "run_in_thread",
    "AdmissionControl",
    "AdmissionError",
    "ClientChannel",
    "ChannelClosed",
    "DROP_OLDEST",
    "DISCONNECT",
    "SLOW_CLIENT_POLICIES",
    "DedupeWindow",
    "IngestBatcher",
    "parse_event",
    "Session",
    "SessionRegistry",
    "result_record",
]
