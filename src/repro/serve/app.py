"""The serving application: an asyncio facade over a live engine.

:class:`TopKServer` turns a :class:`~repro.engine.StreamEngine` (or a
:class:`~repro.cluster.ShardedStreamEngine`) into a long-running network
service — the ``repro serve`` CLI command is a thin wrapper around it.
The HTTP surface is declared once, as data, in :mod:`repro.serve.schema`
— :data:`~repro.serve.schema.ROUTES` is simultaneously the route table
this module dispatches from and the documentation the README embeds.  The
canonical paths live under ``/v1/``; the original unversioned paths stay
as deprecated aliases whose responses carry a ``Deprecation: true``
header and a ``Link`` to the successor path.  Subscription bodies are
validated by :meth:`repro.engine.spec.QuerySpec.from_dict` — the same
typed validator behind every library-level ``subscribe`` call.

With :attr:`ServeConfig.durability_dir` set the server is crash-exact:
the engine journals every ingested slide and checkpoints subscription
state under that directory (:mod:`repro.durability`), and the serving
layer keeps a ``sessions.json`` sidecar of the wire specs.  A restart
pointed at the same directory rebuilds the engine, the sessions, and the
retained answer histories, resumes the arrival clock, and continues the
exact pre-crash answer stream.

Threading model: the event loop owns every data structure in this module;
the engine — which is synchronous, CPU-bound, and not thread-safe — lives
behind a **single-worker executor thread**, and every engine touch goes
through :meth:`TopKServer._engine_call`.  One executor job both pushes a
batch and drains the answers it produced, so the engine is never observed
mid-batch.  Ingestion dedupes producer retries through a bounded LRU
window (:mod:`repro.serve.ingest`), batches admitted events to the slide
alignment of the live queries, and fans drained answers out to bounded
per-client channels (:mod:`repro.serve.backpressure`) — a slow consumer
costs itself dropped answers (or its connection), never engine
throughput.

Shutdown is graceful on SIGINT/SIGTERM: the listener closes, the pending
ingest tail is pushed (draining in-flight slides), final answers are
delivered, every client stream receives an ``end`` event, and the engine
is closed on its own thread.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..core.exceptions import InvalidQueryError, ReproError
from ..engine.spec import QuerySpec
from ..obs.exposition import render_prometheus
from ..obs.registry import get_registry
from ..streams.preference import PreferenceError
from . import schema
from .backpressure import (
    DEFAULT_CLIENT_QUEUE,
    DROP_OLDEST,
    SLOW_CLIENT_POLICIES,
    AdmissionControl,
    AdmissionError,
    ChannelClosed,
    ClientChannel,
)
from .ingest import DEFAULT_DEDUPE_WINDOW, DedupeWindow, IngestBatcher, parse_event
from .protocol import (
    SSE_HEADER,
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    HttpRequest,
    ProtocolError,
    encode_websocket_frame,
    error_response,
    is_websocket_upgrade,
    read_request,
    read_websocket_frame,
    render_response,
    sse_comment,
    sse_event,
    websocket_handshake_response,
)
from .sessions import Session, SessionRegistry

__all__ = ["ServeConfig", "TopKServer", "ServerHandle", "run_in_thread"]


@dataclass
class ServeConfig:
    """Tunables of the serving layer (all have working defaults)."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from ``.port``).
    port: int = 8765
    #: Execution plane: ``"local"`` (one in-process engine) or
    #: ``"sharded"`` (a multi-process :class:`ShardedStreamEngine`).
    engine: str = "local"
    shards: int = 2
    #: Data-path transport of the sharded plane: ``"queue"`` or ``"shm"``
    #: (ignored by the local engine).
    transport: str = "queue"
    #: Admission control: new subscriptions past this cap get 429.
    max_subscriptions: int = 1024
    retry_after: int = 5
    #: Per-client result queue bound and the slow-client policy.
    client_queue: int = DEFAULT_CLIENT_QUEUE
    slow_client: str = DROP_OLDEST
    #: Idempotency window: distinct event ids remembered for dedupe.
    dedupe_window: int = DEFAULT_DEDUPE_WINDOW
    #: How long a partial (unaligned) ingest tail may linger before it is
    #: flushed to the engine anyway.
    linger_ms: int = 50
    #: Per-subscription answer history retained for the polling endpoint.
    result_history: int = 1024
    default_algorithm: str = "SAP"
    #: Durability: when set, the engine journals every ingested slide and
    #: checkpoints subscription state under this directory, and a restart
    #: pointed at the same directory recovers the exact pre-crash stream.
    durability_dir: Optional[str] = None
    #: Slides between checkpoints (None = the durability plane's default).
    checkpoint_interval: Optional[int] = None

    def validate(self) -> "ServeConfig":
        if self.engine not in ("local", "sharded"):
            raise ValueError(f"engine must be 'local' or 'sharded', got {self.engine!r}")
        if self.transport not in ("queue", "shm"):
            raise ValueError(
                f"transport must be 'queue' or 'shm', got {self.transport!r}"
            )
        if self.slow_client not in SLOW_CLIENT_POLICIES:
            raise ValueError(
                f"slow_client must be one of {SLOW_CLIENT_POLICIES}, "
                f"got {self.slow_client!r}"
            )
        for field_name in ("shards", "max_subscriptions", "client_queue",
                           "dedupe_window", "result_history"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be positive")
        if self.linger_ms < 0:
            raise ValueError("linger_ms must be >= 0")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")
        return self


def _default_engine_factory(config: ServeConfig):
    if config.engine == "sharded":
        from ..cluster import ShardedStreamEngine

        return ShardedStreamEngine(
            config.shards,
            keep_results=True,
            transport=config.transport,
            durability_dir=config.durability_dir,
        )
    from ..engine import StreamEngine

    if config.durability_dir is not None:
        return StreamEngine.recover(
            config.durability_dir,
            checkpoint_interval=config.checkpoint_interval,
            keep_results=True,
            return_results=True,
        )
    return StreamEngine(keep_results=True, return_results=True)


class TopKServer:
    """Asyncio subscription service over one live engine.

    Construct, ``await start()``, then either ``await serve_forever()``
    (installs signal handlers) or drive :meth:`request_shutdown` /
    :meth:`shutdown` yourself.  ``engine_factory`` overrides how the
    engine is built (it is called on the engine thread).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        engine_factory: Optional[Callable[[ServeConfig], object]] = None,
    ) -> None:
        self.config = (config or ServeConfig()).validate()
        self._engine_factory = engine_factory or _default_engine_factory
        self._engine = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.registry = SessionRegistry()
        self.admission = AdmissionControl(
            self.config.max_subscriptions, self.config.retry_after
        )
        self.dedupe = DedupeWindow(self.config.dedupe_window)
        self.batcher = IngestBatcher()
        self._flush_lock = asyncio.Lock()
        self._linger_handle: Optional[asyncio.TimerHandle] = None
        self._client_tasks: Set[asyncio.Task] = set()
        self._shutdown_requested = asyncio.Event()
        self._shutdown_finished = False
        self._started_at = time.time()
        self.dropped_no_subscribers = 0
        #: Serving-layer sidecar of subscription wire specs; together with
        #: the engine journal it makes sessions crash-recoverable.
        self._sessions_path = (
            None
            if self.config.durability_dir is None
            else os.path.join(self.config.durability_dir, "sessions.json")
        )
        self._session_specs: Dict[str, Dict] = {}
        #: Filled by :meth:`_recover_sessions` on a durable boot.
        self.recovery_info: Optional[Dict[str, object]] = None
        # Serving-layer instruments ride the process metrics registry as a
        # pull-time collector over state the layers already maintain.
        self._metrics_registry = get_registry()
        self._metrics_registry.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        """Pull-time export of the serving layer's state counters.

        Counter values mirror external monotone state, so the collector
        assigns rather than increments.
        """
        batcher = self.batcher.stats()
        registry.counter(
            "repro_ingested_total", "Events admitted by the ingest batcher."
        ).value = float(batcher["ingested"])
        registry.gauge(
            "repro_ingest_pending", "Events buffered awaiting slide alignment."
        ).set(batcher["pending"])
        dedupe = self.dedupe.stats()
        registry.counter(
            "repro_dedupe_admitted_total", "Distinct event ids admitted."
        ).value = float(dedupe["admitted"])
        registry.counter(
            "repro_dedupe_duplicates_total", "Producer retries suppressed."
        ).value = float(dedupe["duplicates"])
        registry.counter(
            "repro_dedupe_evictions_total", "Ids evicted from the dedupe window."
        ).value = float(dedupe["evictions"])
        totals = self.registry.totals()
        registry.gauge("repro_sessions", "Live subscription sessions.").set(
            totals["sessions"]
        )
        registry.gauge("repro_clients", "Connected streaming clients.").set(
            totals["clients"]
        )
        registry.counter(
            "repro_results_pushed_total", "Answers fanned out to client channels."
        ).value = float(totals["results_pushed"])
        registry.counter(
            "repro_results_dropped_total", "Answers dropped on slow clients."
        ).value = float(totals["results_dropped"])
        registry.counter(
            "repro_dropped_no_subscribers_total",
            "Events dropped with no subscription to answer.",
        ).value = float(self.dropped_no_subscribers)
        registry.counter(
            "repro_subscriptions_rejected_total",
            "Subscriptions refused by admission control (429).",
        ).value = float(self.admission.stats()["rejected"])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the real one)."""
        if self._server is None:
            raise RuntimeError("the server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "TopKServer":
        self._loop = asyncio.get_running_loop()
        self._engine = await self._engine_call(self._engine_factory, self.config)
        if self.config.durability_dir is not None:
            await self._recover_sessions()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started_at = time.time()
        return self

    def request_shutdown(self) -> None:
        """Signal-safe trigger: ask the serve loop to shut down."""
        self._shutdown_requested.set()

    async def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Serve until SIGINT/SIGTERM (or :meth:`request_shutdown`), then
        shut down gracefully."""
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-main thread or unsupported platform
        await self._shutdown_requested.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful stop: close the listener, drain in-flight slides,
        deliver the final answers, end every client stream, close the
        engine.  Idempotent."""
        if self._shutdown_finished:
            return
        self._shutdown_finished = True
        self._shutdown_requested.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._linger_handle is not None:
            self._linger_handle.cancel()
            self._linger_handle = None
        async with self._flush_lock:
            tail = self.batcher.take_all()
            produced = await self._engine_call(self._drain_and_close, tail)
            self.registry.dispatch(produced)
        self.registry.close_all("server-shutdown")
        if self._client_tasks:
            await asyncio.wait(tuple(self._client_tasks), timeout=5.0)
        self._executor.shutdown(wait=True)
        self._metrics_registry.remove_collector(self._collect_metrics)

    def _drain_and_close(self, tail) -> Dict[str, List]:
        """Final engine job: push the ingest tail, drain every answer,
        close the engine, and merge the close-time flush answers in."""
        produced: Dict[str, List] = {}
        if self._engine is None:
            return produced
        try:
            if tail and len(self.registry):
                self._engine.push_many(tail, chunk_size=max(1, len(tail)))
            produced = self._engine.drain_results()
            for name, results in self._engine.close().items():
                produced.setdefault(name, []).extend(results)
        except ReproError:
            # A shard that failed earlier must not block shutdown; its
            # error was already observable on the ingest path.
            try:
                self._engine.close()
            except ReproError:
                pass
        return produced

    # ------------------------------------------------------------------
    # Engine access (everything engine-touching runs on one thread)
    # ------------------------------------------------------------------
    async def _engine_call(self, fn, *args):
        assert self._loop is not None
        return await self._loop.run_in_executor(self._executor, fn, *args)

    def _subscribe_engine(self, name: str, spec: QuerySpec):
        # One typed entry point: both engine planes accept a QuerySpec
        # carrying its own execution plan (algorithm, options, preference).
        return self._engine.subscribe(name, spec)

    def _push_and_drain(self, batch) -> Dict[str, List]:
        """One executor job: ingest a batch and collect its answers."""
        if batch:
            self._engine.push_many(batch, chunk_size=max(1, len(batch)))
        return self._engine.drain_results()

    async def _metrics_snapshot(self) -> List[Dict[str, object]]:
        """One cluster-aggregated metrics snapshot (engine thread: the
        sharded facade's snapshot is a worker broadcast)."""
        return await self._engine_call(self._metrics_snapshot_sync)

    def _metrics_snapshot_sync(self) -> List[Dict[str, object]]:
        engine = self._engine
        if (
            engine is not None
            and hasattr(engine, "metrics_snapshot")
            and not getattr(engine, "closed", False)
        ):
            # The sharded facade merges this process's registry (serving
            # instruments included, via the collector) with every worker's.
            return engine.metrics_snapshot()
        return self._metrics_registry.snapshot()

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    async def create_subscription(self, body: Dict) -> Session:
        if not isinstance(body, dict):
            raise ProtocolError(400, "the subscription body must be a JSON object")
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError(400, "a subscription requires a non-empty 'name'")
        if name in self.registry:
            raise ProtocolError(409, f"subscription {name!r} already exists")
        try:
            # The one wire validator: the same QuerySpec rules every
            # library-level subscribe call enforces.
            spec = QuerySpec.from_dict(
                {key: value for key, value in body.items() if key != "name"},
                default_algorithm=self.config.default_algorithm,
            )
        except (InvalidQueryError, PreferenceError) as exc:
            raise ProtocolError(400, str(exc)) from None

        self.admission.admit()  # raises AdmissionError -> 429
        try:
            handle = await self._engine_call(self._subscribe_engine, name, spec)
        except BaseException:
            self.admission.release()
            raise
        session = Session(
            name,
            handle.query,
            spec.algorithm or self.config.default_algorithm,
            handle,
            history=self.config.result_history,
            preference=spec.vector,
        )
        self.registry.add(session)
        self.batcher.set_alignment(self.registry.slide_sizes())
        self._session_specs[name] = spec.to_dict()
        self._persist_sessions()
        return session

    async def remove_subscription(self, name: str) -> None:
        session = self.registry.remove(name)
        if session is None:
            raise ProtocolError(404, f"no subscription named {name!r}")
        session.close("unsubscribed")
        self.admission.release()
        self.batcher.set_alignment(self.registry.slide_sizes())
        if not len(self.registry):
            # The last subscriber left: buffered events can never reach an
            # answer (new subscriptions only window future arrivals), so
            # drop them under the same rule as subscriber-less ingestion.
            self.dropped_no_subscribers += len(self.batcher.take_all())
        self._session_specs.pop(name, None)
        self._persist_sessions()
        await self._engine_call(self._engine.unsubscribe, name)

    # ------------------------------------------------------------------
    # Durability: the sessions sidecar and crash recovery
    # ------------------------------------------------------------------
    def _persist_sessions(self) -> None:
        """Atomically rewrite the sessions sidecar (durable servers only).

        The engine journal recovers the subscriptions themselves; the
        sidecar recovers the serving layer's view of them (the wire
        specs), so a restarted server can rebuild its Session objects.
        """
        if self._sessions_path is None:
            return
        tmp = self._sessions_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._session_specs, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._sessions_path)

    def _live_subscription_handles(self) -> Dict[str, object]:
        """Engine-thread job: every recovered subscription's handle."""
        engine = self._engine
        return {name: engine.subscription(name) for name in engine.subscriptions()}

    def _recovered_next_t(self) -> int:
        """Engine-thread job: where the recovered arrival clock resumes."""
        engine = self._engine
        report = getattr(engine, "recovery_report", None)
        if report is not None:
            return int(report.next_t)
        status = getattr(engine, "durability_status", None)
        if callable(status):
            # Every shard sees the whole (dense-t) stream, so the furthest
            # shard's ingest count is the next arrival index.
            return max(
                (int(entry.get("ingested") or 0) for entry in status()),
                default=0,
            )
        return 0

    async def _recover_sessions(self) -> None:
        """Rebuild the serving layer over an engine recovered from disk.

        For each subscription the engine brought back, a Session is
        reconstructed from the sidecar's wire spec (falling back to the
        engine handle's own query when the sidecar lags a crash), the
        replayed answers are dispatched into its bounded history — so a
        polling client sees the exact stream an uncrashed server retained
        — and the ingest clock resumes past the journaled tail.
        """
        stored: Dict[str, Dict] = {}
        if self._sessions_path is not None:
            try:
                with open(self._sessions_path, "r", encoding="utf-8") as fh:
                    stored = json.load(fh)
            except (OSError, ValueError):
                stored = {}
        handles = await self._engine_call(self._live_subscription_handles)
        self._session_specs = {}
        for name, handle in handles.items():
            spec: Optional[QuerySpec] = None
            payload = stored.get(name)
            if payload is not None:
                try:
                    spec = QuerySpec.from_dict(
                        payload, default_algorithm=self.config.default_algorithm
                    )
                except (InvalidQueryError, PreferenceError):
                    spec = None
            if spec is None:
                spec = QuerySpec.from_query(handle.query).using(
                    self.config.default_algorithm
                )
            self.admission.admit()
            self.registry.add(
                Session(
                    name,
                    handle.query,
                    spec.algorithm or self.config.default_algorithm,
                    handle,
                    history=self.config.result_history,
                    preference=spec.vector,
                )
            )
            self._session_specs[name] = spec.to_dict()
        self._persist_sessions()
        replayed = await self._engine_call(self._engine.drain_results)
        routed = self.registry.dispatch(replayed or {})
        self.batcher.set_alignment(self.registry.slide_sizes())
        next_t = await self._engine_call(self._recovered_next_t)
        self.batcher.resume_from(next_t)
        self.recovery_info = {
            "recovered_subscriptions": len(handles),
            "replayed_results": routed,
            "resumed_at_t": next_t,
        }

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    async def ingest(self, events: List[object]) -> Dict[str, int]:
        """Dedupe, batch, and (when a whole slide multiple is pending)
        push a batch through the engine, delivering the answers."""
        accepted = duplicates = 0
        for raw in events:
            event_id, score, payload = parse_event(raw)  # ValueError -> 400
            if event_id is not None and not self.dedupe.admit(event_id):
                duplicates += 1
                continue
            self.batcher.append(score, payload)
            accepted += 1
        if not len(self.registry):
            # Nobody is subscribed: the events cannot contribute to any
            # answer, so drop them (counted) instead of buffering forever.
            self.dropped_no_subscribers += len(self.batcher.take_all())
        elif len(self.batcher) >= self.batcher.alignment:
            await self._flush(aligned=True)
            if len(self.batcher):
                # The flush kept an unaligned tail; make sure it cannot
                # sit forever waiting for the next ingest call.
                self._arm_linger()
        elif len(self.batcher):
            self._arm_linger()
        return {
            "accepted": accepted,
            "duplicates": duplicates,
            "pending": len(self.batcher),
        }

    async def _flush(self, aligned: bool) -> None:
        async with self._flush_lock:
            batch = self.batcher.take_aligned() if aligned else self.batcher.take_all()
            if not batch or not len(self.registry):
                return
            produced = await self._engine_call(self._push_and_drain, batch)
            self.registry.dispatch(produced)

    def _arm_linger(self) -> None:
        """(Re)start the linger timer that flushes a partial tail."""
        if self._linger_handle is not None or self._shutdown_finished:
            return

        def fire() -> None:
            self._linger_handle = None
            if len(self.batcher):
                asyncio.ensure_future(self._flush(aligned=False))

        assert self._loop is not None
        self._linger_handle = self._loop.call_later(
            self.config.linger_ms / 1000.0, fire
        )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(error_response(exc.status, exc.message, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                streaming = await self._dispatch(request, reader, writer)
                if streaming or not request.wants_keep_alive():
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest, reader, writer) -> bool:
        """Route one request; returns True when the handler took over the
        connection (SSE/WebSocket)."""
        try:
            return await self._route(request, reader, writer)
        except ProtocolError as exc:
            writer.write(error_response(exc.status, exc.message))
        except AdmissionError as exc:
            writer.write(
                error_response(
                    429, str(exc), headers={"Retry-After": str(exc.retry_after)}
                )
            )
        except ValueError as exc:
            writer.write(error_response(400, str(exc)))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            writer.write(error_response(500, f"{type(exc).__name__}: {exc}"))
        await writer.drain()
        return False

    async def _route(self, request: HttpRequest, reader, writer) -> bool:
        """Dispatch one request from the declarative route table.

        :data:`repro.serve.schema.ROUTES` is the single definition of the
        wire surface; this method only resolves a match, runs the bound
        handler, and stamps deprecation headers on unversioned-alias
        responses.  Streaming handlers take over the connection (and
        return True here); plain handlers return a
        ``(status, payload, content_type)`` triple.
        """
        try:
            matched = schema.match(request.method, request.segments)
        except schema.RouteNotFound:
            raise ProtocolError(404, f"no route for {request.path}") from None
        except schema.MethodNotAllowed as exc:
            raise ProtocolError(
                405,
                f"{request.method} not allowed here (allowed: {exc})",
            ) from None
        handler = getattr(self, "_h_" + matched.route.handler)
        if matched.route.streaming:
            await handler(request, matched.params, reader, writer)
            return True
        status, payload, content_type = await handler(request, matched.params)
        writer.write(
            render_response(
                status,
                payload,
                headers=matched.deprecation_headers(),
                content_type=content_type,
            )
        )
        await writer.drain()
        return False

    # ------------------------------------------------------------------
    # Route handlers (bound from schema.ROUTES by handler key)
    # ------------------------------------------------------------------
    async def _h_health(self, request, params):
        return 200, {"status": "ok", "uptime_s": self._uptime()}, None

    async def _h_stats(self, request, params):
        return 200, self.describe(), None

    async def _h_metrics(self, request, params):
        text = render_prometheus(await self._metrics_snapshot())
        return 200, text.encode(), "text/plain; version=0.0.4; charset=utf-8"

    async def _h_metrics_json(self, request, params):
        return 200, {"ts": time.time(), "metrics": await self._metrics_snapshot()}, None

    async def _h_ingest(self, request, params):
        body = request.json()
        if isinstance(body, dict) and "events" in body:
            events = body["events"]
        elif isinstance(body, dict):
            events = [body]
        else:
            events = body
        if not isinstance(events, list):
            raise ProtocolError(400, "'events' must be a JSON array")
        return 200, await self.ingest(events), None

    async def _h_create_subscription(self, request, params):
        session = await self.create_subscription(request.json())
        return 201, session.describe(), None

    async def _h_list_subscriptions(self, request, params):
        return (
            200,
            {"subscriptions": [s.describe() for s in self.registry.sessions()]},
            None,
        )

    async def _h_get_subscription(self, request, params):
        session = self._session(params["name"])
        return 200, await self._engine_call(session.stats), None

    async def _h_delete_subscription(self, request, params):
        await self.remove_subscription(params["name"])
        return 204, None, None

    async def _h_get_results(self, request, params):
        session = self._session(params["name"])
        drain = request.query.get("drain", "").lower() in ("1", "true", "yes")
        return 200, {"results": session.read_history(drain)}, None

    async def _h_stream_sse(self, request, params, reader, writer):
        session = self._session(params["name"])
        await self._serve_sse(session, reader, writer)

    async def _h_stream_ws(self, request, params, reader, writer):
        session = self._session(params["name"])
        if not is_websocket_upgrade(request):
            raise ProtocolError(400, "expected a WebSocket upgrade request")
        await self._serve_websocket(session, request, reader, writer)

    def _session(self, name: str) -> Session:
        session = self.registry.get(name)
        if session is None:
            raise ProtocolError(404, f"no subscription named {name!r}")
        return session

    def _uptime(self) -> float:
        return round(time.time() - self._started_at, 3)

    def describe(self) -> Dict[str, object]:
        """The ``/stats`` payload: every layer's counters in one place."""
        return {
            "engine": self.config.engine,
            "uptime_s": self._uptime(),
            "durability": {
                "dir": self.config.durability_dir,
                "recovery": self.recovery_info,
            },
            "ingest": {
                **self.batcher.stats(),
                "dedupe": self.dedupe.stats(),
                "dropped_no_subscribers": self.dropped_no_subscribers,
            },
            "admission": self.admission.stats(),
            "sessions": self.registry.totals(),
        }

    # ------------------------------------------------------------------
    # Streaming endpoints
    # ------------------------------------------------------------------
    def _open_channel(self, session: Session) -> ClientChannel:
        return session.attach(
            ClientChannel(self.config.client_queue, self.config.slow_client)
        )

    async def _serve_sse(self, session: Session, reader, writer) -> None:
        channel = self._open_channel(session)
        writer.write(SSE_HEADER)
        writer.write(sse_comment(f"subscribed {session.name}"))
        monitor = asyncio.ensure_future(self._watch_disconnect(reader, channel))
        try:
            await writer.drain()
            while True:
                try:
                    record = await channel.get()
                except ChannelClosed as exc:
                    writer.write(sse_event({"reason": str(exc)}, event="end"))
                    await writer.drain()
                    break
                writer.write(sse_event(record, event="result"))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-write
        finally:
            monitor.cancel()
            session.detach(channel)
            channel.close("client-disconnect")

    async def _serve_websocket(
        self, session: Session, request: HttpRequest, reader, writer
    ) -> None:
        channel = self._open_channel(session)
        writer.write(websocket_handshake_response(request))
        monitor = asyncio.ensure_future(self._watch_ws_frames(reader, writer, channel))
        try:
            await writer.drain()
            while True:
                try:
                    record = await channel.get()
                except ChannelClosed as exc:
                    payload = json.dumps({"event": "end", "reason": str(exc)}).encode()
                    writer.write(encode_websocket_frame(payload))
                    writer.write(encode_websocket_frame(b"", opcode=WS_CLOSE))
                    await writer.drain()
                    break
                writer.write(encode_websocket_frame(json.dumps(record).encode()))
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            monitor.cancel()
            session.detach(channel)
            channel.close("client-disconnect")

    @staticmethod
    async def _watch_disconnect(reader, channel: ClientChannel) -> None:
        """Close the channel when the SSE client hangs up (EOF on read)."""
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    break
        except (ConnectionError, OSError):
            pass
        channel.close("client-disconnect")

    @staticmethod
    async def _watch_ws_frames(reader, writer, channel: ClientChannel) -> None:
        """Answer pings and notice the client's close frame."""
        try:
            while True:
                frame = await read_websocket_frame(reader)
                if frame is None or frame[0] == WS_CLOSE:
                    break
                if frame[0] == WS_PING:
                    writer.write(encode_websocket_frame(frame[1], opcode=WS_PONG))
                    await writer.drain()
        except (ConnectionError, OSError):
            pass
        channel.close("client-disconnect")


# ----------------------------------------------------------------------
# Embedding helper: run a server on a background thread
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on its own thread (tests, examples, benchmarks)."""

    def __init__(self, server: TopKServer, loop, thread: threading.Thread, port: int):
        self.server = server
        self._loop = loop
        self._thread = thread
        self.port = port

    @property
    def base_url(self) -> str:
        return f"http://{self.server.config.host}:{self.port}"

    @property
    def loop(self):
        """The server's event loop — for scheduling work onto the server
        thread with :func:`asyncio.run_coroutine_threadsafe`."""
        return self._loop

    def stop(self, timeout: float = 10.0) -> None:
        """Request a graceful shutdown and join the server thread."""
        try:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        except RuntimeError:
            pass  # loop already gone
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def run_in_thread(
    config: Optional[ServeConfig] = None,
    engine_factory: Optional[Callable[[ServeConfig], object]] = None,
    start_timeout: float = 15.0,
) -> ServerHandle:
    """Start a :class:`TopKServer` on a daemon thread and return a handle.

    The caller's thread talks to it over plain HTTP; ``handle.stop()``
    performs the same graceful shutdown a SIGTERM would.
    """
    started = threading.Event()
    holder: Dict[str, object] = {}

    def runner() -> None:
        async def main() -> None:
            server = TopKServer(config, engine_factory)
            try:
                await server.start()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                holder["error"] = exc
                started.set()
                return
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["port"] = server.port
            started.set()
            await server.serve_forever(install_signal_handlers=False)

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(start_timeout):
        raise RuntimeError("the server did not start in time")
    if "error" in holder:
        raise holder["error"]  # type: ignore[misc]
    return ServerHandle(
        holder["server"], holder["loop"], thread, holder["port"]  # type: ignore[arg-type]
    )
