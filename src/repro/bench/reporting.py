"""Plain-text reporting of benchmark results in the paper's table style."""

from __future__ import annotations

import json
import os
from typing import Mapping, Optional, Sequence

#: Directory (relative to the repository root / current directory) where
#: benchmark tables are written.
RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results")


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Format a list of rows as a fixed-width text table."""

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(value) for value in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rendered)) if rendered else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines = [title, "-" * len(title)]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_results(
    name: str,
    table_text: str,
    raw: Optional[Mapping] = None,
    directory: Optional[str] = None,
) -> str:
    """Write a formatted table (and optional raw JSON) under the results dir.

    Returns the path of the text file.  Failures to write (e.g. read-only
    checkouts) are tolerated: the table is still printed to stdout by the
    caller, so no data is lost.
    """
    directory = directory or RESULTS_DIR
    try:
        os.makedirs(directory, exist_ok=True)
        text_path = os.path.join(directory, f"{name}.txt")
        with open(text_path, "w") as handle:
            handle.write(table_text + "\n")
        if raw is not None:
            with open(os.path.join(directory, f"{name}.json"), "w") as handle:
                json.dump(raw, handle, indent=2, default=str)
        return text_path
    except OSError:
        return ""
