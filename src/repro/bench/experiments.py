"""Experiment drivers shared by the benchmark suite.

Each helper reproduces the measurement loop behind one family of the
paper's tables/figures: run a set of algorithms on a dataset under a query,
record running time, average candidate count, and average memory, and
return plain dictionaries the benchmark modules format into tables.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.framework import SAPTopK
from ..core.interface import ContinuousTopKAlgorithm
from ..core.query import TopKQuery
from ..engine import StreamEngine
from ..partitioning import EqualPartitioner
from ..registry import algorithm_factories, get_algorithm
from ..runner.engine import run_algorithm
from .workloads import BenchScale, dataset_stream

AlgorithmFactory = Callable[[TopKQuery], ContinuousTopKAlgorithm]

#: The algorithms compared throughout the evaluation section, keyed by the
#: names used in the paper's figures.  All factories come from the unified
#: registry (:mod:`repro.registry`); "SAP" there defaults to the enhanced
#: dynamic partitioner, exactly the configuration the figures evaluate.
ALGORITHM_FACTORIES: Dict[str, AlgorithmFactory] = algorithm_factories(
    "SAP", "MinTopK", "SMA", "k-skyband"
)

#: SAP configurations compared in Tables 2 and 3, keyed by the paper's
#: abbreviations but resolved through the same registry.
PARTITIONER_FACTORIES: Dict[str, AlgorithmFactory] = {
    "EQUAL": get_algorithm("SAP-equal").factory,
    "DYNA": get_algorithm("SAP-dynamic").factory,
    "EN-DYNA": get_algorithm("SAP-enhanced").factory,
}


#: Cache of individual measurements so that tables sharing the same runs
#: (e.g. Figure 9 / Table 6 / Table 8) do not recompute them.
_MEASUREMENT_CACHE: Dict[Tuple[str, int, int, int, bool, str, int], Dict[str, float]] = {}


def measure_one(
    dataset: str,
    query: TopKQuery,
    name: str,
    factory: AlgorithmFactory,
    stream_length: int,
) -> Dict[str, float]:
    """Measure one algorithm on one workload (memoised)."""
    key = (dataset, query.n, query.k, query.s, query.time_based, name, stream_length)
    cached = _MEASUREMENT_CACHE.get(key)
    if cached is not None:
        return dict(cached)
    objects = dataset_stream(dataset, stream_length)
    report = run_algorithm(factory(query), objects, keep_results=False)
    metrics = {
        "seconds": report.elapsed_seconds,
        "candidates": report.average_candidates,
        "memory_kb": report.average_memory_kb,
        "slides": float(report.slides),
    }
    _MEASUREMENT_CACHE[key] = dict(metrics)
    return metrics


def measure_algorithms(
    dataset: str,
    query: TopKQuery,
    factories: Mapping[str, AlgorithmFactory],
    stream_length: int,
) -> Dict[str, Dict[str, float]]:
    """Run every algorithm on the dataset and collect the three metrics."""
    return {
        name: measure_one(dataset, query, name, factory, stream_length)
        for name, factory in factories.items()
    }


def sweep_parameter(
    dataset: str,
    scale: BenchScale,
    parameter: str,
    values: Sequence[int],
    factories: Mapping[str, AlgorithmFactory],
) -> List[Dict[str, object]]:
    """Vary one query parameter (n, k, or s) keeping the others at their
    defaults — the structure of Figures 9/10 and Tables 3/5-9."""
    rows: List[Dict[str, object]] = []
    for value in values:
        n, k, s = scale.default_query_params()
        if parameter == "n":
            n = value
        elif parameter == "k":
            k = value
        elif parameter == "s":
            s = value
        else:
            raise ValueError(f"unknown parameter {parameter!r}")
        k = min(k, n)
        s = min(s, n)
        query = TopKQuery(n=n, k=k, s=s)
        measurements = measure_algorithms(dataset, query, factories, scale.stream_length)
        for name, metrics in measurements.items():
            rows.append(
                {
                    "dataset": dataset,
                    "parameter": parameter,
                    "value": value,
                    "algorithm": name,
                    **metrics,
                }
            )
    return rows


def equal_partition_sweep(
    dataset: str, scale: BenchScale, m_values: Optional[Sequence[int]] = None
) -> List[Dict[str, object]]:
    """Table 2: equal partition under different resolutions ``m``, comparing
    the non-delay policy, Algorithm 1, and Algorithm 1 + S-AVL."""
    n, k, s = scale.default_query_params()
    query = TopKQuery(n=n, k=k, s=s)
    rows: List[Dict[str, object]] = []
    variants: Dict[str, Callable[[int], ContinuousTopKAlgorithm]] = {
        "non-delay": lambda m: SAPTopK(
            query,
            partitioner=EqualPartitioner(m=m),
            meaningful_policy="eager",
            use_savl=False,
        ),
        "Algo1": lambda m: SAPTopK(
            query, partitioner=EqualPartitioner(m=m), use_savl=False
        ),
        "Algo1+S-AVL": lambda m: SAPTopK(query, partitioner=EqualPartitioner(m=m)),
    }
    objects = dataset_stream(dataset, scale.stream_length)
    for m in m_values or scale.m_values:
        for variant, builder in variants.items():
            report = run_algorithm(builder(m), objects, keep_results=False)
            rows.append(
                {
                    "dataset": dataset,
                    "m": m,
                    "m_star": query.m_star,
                    "variant": variant,
                    "seconds": report.elapsed_seconds,
                    "candidates": report.average_candidates,
                }
            )
    return rows


def partitioner_comparison(
    dataset: str, scale: BenchScale, parameter: str, values: Sequence[int]
) -> List[Dict[str, object]]:
    """Table 3: EQUAL vs DYNA vs EN-DYNA while varying one parameter."""
    return sweep_parameter(dataset, scale, parameter, values, PARTITIONER_FACTORIES)


def measure_multiquery_sharing(
    dataset: str,
    query_shape: Tuple[int, int],
    k_values: Sequence[int],
    algorithm: str,
    stream_length: int,
) -> Dict[str, object]:
    """Compare N independent engines against one shared multi-query plane.

    Runs ``len(k_values)`` queries of one window shape ``(n, s)`` — first
    each on its own :class:`~repro.engine.StreamEngine` (the pre-group
    architecture), then all on a single engine, where they form one query
    group and share slide batching and, when the algorithm supports it, a
    ``k_max`` execution plan.  Returns throughput (objects/second through
    the plane) and per-slide latency aggregates for both arrangements.
    """
    n, s = query_shape
    objects = dataset_stream(dataset, stream_length)
    queries = [TopKQuery(n=n, k=k, s=s) for k in k_values]

    def run_engines(shared: bool) -> Dict[str, float]:
        engines: List[StreamEngine] = []
        subscriptions = []
        if shared:
            engines.append(StreamEngine(keep_results=False, return_results=False))
        for query in queries:
            if not shared:
                engines.append(StreamEngine(keep_results=False, return_results=False))
            subscriptions.append(
                engines[-1].subscribe(f"k{query.k}-{len(subscriptions)}", query, algorithm=algorithm)
            )
        started = time.perf_counter()
        for engine in engines:
            engine.push_many(objects)
        elapsed = time.perf_counter() - started
        slide_latencies = [sub.metrics for sub in subscriptions]
        return {
            "seconds": elapsed,
            "events_per_second": len(objects) / elapsed if elapsed else float("inf"),
            "median_slide_latency": max(m.median_latency for m in slide_latencies),
            "p95_slide_latency": max(m.p95_latency for m in slide_latencies),
            "slides": sum(m.slides for m in slide_latencies),
        }

    independent = run_engines(shared=False)
    shared = run_engines(shared=True)
    return {
        "dataset": dataset,
        "algorithm": algorithm,
        "n": n,
        "s": s,
        "k_values": list(k_values),
        "queries": len(k_values),
        "stream_length": len(objects),
        "independent": independent,
        "shared": shared,
        "speedup": independent["seconds"] / shared["seconds"] if shared["seconds"] else float("inf"),
    }


def measure_sharding(
    dataset: str,
    workload: Sequence[Tuple[str, TopKQuery]],
    algorithm: str,
    stream_length: int,
    shards: int,
    placement: str = "hash-window",
    verify: bool = True,
    rebalance: bool = True,
    transport: str = "queue",
    repeats: int = 3,
) -> Dict[str, object]:
    """The sharded plane against one single-process engine.

    Runs a mixed-window ``workload`` twice — once on a single
    :class:`~repro.engine.StreamEngine` (every query on one core) and
    once on a :class:`~repro.cluster.ShardedStreamEngine` with ``shards``
    worker processes — and reports both throughputs.  Workload entries
    are ``(name, query)`` or ``(name, query, shard)``; an explicit shard
    pins the query (benchmarks pin so utilisation is deterministic
    instead of depending on how the shapes happen to hash).  With
    ``verify``, both planes are re-run retaining answers and the result
    sequences are checked to be byte-identical; with ``rebalance``, a
    third sharded run moves one subscription to another shard mid-stream
    and its answers are checked against the uninterrupted reference.

    ``transport`` picks the router's data path (``"queue"`` or ``"shm"``);
    the timing run also collects the router/worker transport counters and
    reports a per-batch breakdown (serialize/transfer/deserialize seconds
    plus bytes per event) under ``"transport_breakdown"``.  Both timing
    legs take the minimum over ``repeats`` fresh runs: a cold worker pool
    (process spawn, first-touch imports, scheduler placement) easily
    doubles a single measurement on a busy host.

    On a single-core host the sharded run measures IPC overhead rather
    than parallelism; ``cpu_count`` is recorded so trajectory numbers are
    interpreted against the hardware that produced them.
    """
    import os

    from ..cluster import ShardedStreamEngine

    objects = dataset_stream(dataset, stream_length)
    entries = [
        (entry[0], entry[1], entry[2] if len(entry) > 2 else None)
        for entry in workload
    ]
    names = [name for name, _, _ in entries]

    def run_single(keep: bool) -> Tuple[float, Dict[str, List]]:
        engine = StreamEngine(keep_results=keep, return_results=False)
        for name, query, _ in entries:
            engine.subscribe(name, query, algorithm=algorithm)
        started = time.perf_counter()
        engine.push_many(objects)
        engine.flush()
        elapsed = time.perf_counter() - started
        results = {name: engine.results(name) for name in names} if keep else {}
        return elapsed, results

    transport_stats: Dict[int, Dict[str, object]] = {}

    def run_sharded(
        keep: bool, move: Optional[Tuple[str, int]] = None
    ) -> Tuple[float, Dict[str, List]]:
        with ShardedStreamEngine(
            shards, placement=placement, keep_results=keep, transport=transport
        ) as engine:
            for name, query, shard in entries:
                engine.subscribe(name, query, algorithm=algorithm, shard=shard)
            started = time.perf_counter()
            if move is None:
                engine.push_many(objects)
            else:
                # Cut at a slide-aligned point past every window fill, so
                # the source shard sits at an exact boundary for capture.
                quantum = engine.slide_alignment()
                largest_n = max(query.n for _, query, _ in entries)
                half = max(1, (len(objects) // 2) // quantum) * quantum
                while half < largest_n and half + quantum <= len(objects):
                    half += quantum
                engine.push_many(objects[:half])
                name, offset = move
                target = (engine.shard_of(name) + offset) % shards
                engine.rebalance(name, target)
                engine.push_many(objects[half:])
            engine.flush()
            engine.synchronize()
            elapsed = time.perf_counter() - started
            if not keep and move is None:
                # The timing run doubles as the counter source: per-shard
                # serialize/send (router) and deserialize (worker) totals.
                transport_stats.update(engine.transport_stats())
            results = (
                {name: engine.results(name) for name in names} if keep else {}
            )
        return elapsed, results

    single_seconds = min(run_single(keep=False)[0] for _ in range(max(1, repeats)))
    sharded_seconds = None
    for _ in range(max(1, repeats)):
        transport_stats.clear()
        elapsed, _ = run_sharded(keep=False)
        sharded_seconds = elapsed if sharded_seconds is None else min(sharded_seconds, elapsed)

    def transport_breakdown() -> Dict[str, object]:
        """Collapse the per-shard counters into the headline data-path
        numbers: seconds spent in each stage and bytes moved per event."""
        total = lambda key: sum(
            float(entry.get(key, 0) or 0) for entry in transport_stats.values()
        )
        moved_bytes = int(total("bytes"))
        events = int(total("objects"))
        return {
            "per_shard": {
                shard: dict(entry) for shard, entry in sorted(transport_stats.items())
            },
            "serialize_seconds": total("encode_seconds"),
            "transfer_seconds": total("send_seconds"),
            "deserialize_seconds": total("decode_seconds"),
            "batches": int(total("batches")),
            "bytes": moved_bytes,
            "events": events,
            "bytes_per_event": moved_bytes / events if events else 0.0,
        }

    record: Dict[str, object] = {
        "dataset": dataset,
        "algorithm": algorithm,
        "queries": len(workload),
        "shapes": sorted({(query.n, query.s) for _, query, _ in entries}),
        "stream_length": len(objects),
        "shards": shards,
        "placement": placement,
        "pinned": any(shard is not None for _, _, shard in entries),
        "cpu_count": os.cpu_count(),
        "transport": transport,
        "transport_breakdown": transport_breakdown(),
        "single_process": {
            "seconds": single_seconds,
            "objects_per_second": len(objects) / single_seconds if single_seconds else float("inf"),
        },
        "sharded": {
            "seconds": sharded_seconds,
            "objects_per_second": len(objects) / sharded_seconds if sharded_seconds else float("inf"),
        },
        "speedup": single_seconds / sharded_seconds if sharded_seconds else float("inf"),
    }

    def identical(left: Dict[str, List], right: Dict[str, List]) -> bool:
        if left.keys() != right.keys():
            return False
        for name in left:
            a, b = left[name], right[name]
            if len(a) != len(b):
                return False
            if any(
                x.slide_index != y.slide_index or x.identity() != y.identity()
                for x, y in zip(a, b)
            ):
                return False
        return True

    if verify or rebalance:
        _, reference = run_single(keep=True)
    if verify:
        _, sharded_results = run_sharded(keep=True)
        record["exact"] = identical(reference, sharded_results)
    if rebalance:
        mover = names[0]
        _, moved_results = run_sharded(keep=True, move=(mover, 1))
        record["rebalance_exact"] = identical(reference, moved_results)
        record["rebalanced_subscription"] = mover
    return record


def measure_control_overhead(
    dataset: str,
    query: TopKQuery,
    algorithm: str,
    stream_length: int,
    repeats: int = 3,
) -> Dict[str, object]:
    """Controller overhead: bare engine vs the same engine under control.

    The controlled run attaches an :class:`~repro.control.AdaptiveController`
    with a *quiet* policy — the monitor records every slide and all three
    analyzers run on their normal cadence, but no rule ever fires — so the
    measured gap is pure control-plane overhead (telemetry + analysis),
    the cost every adaptive deployment pays even when nothing happens.

    Two measurements are reported:

    * ``overhead_fraction`` (the headline) — the control plane's per-slide
      cost measured in isolation on the live engine state (the monitor's
      record path, plus an analysis pass amortised over its cadence),
      relative to the bare engine's per-slide cost.  This component
      measurement is robust to scheduler noise, which easily exceeds the
      low-single-digit signal on whole-run timings.
    * ``wallclock_overhead_fraction`` — the classic A/B wall-clock delta
      over interleaved, GC-fenced runs (minimum of ``repeats``), kept as
      corroboration.
    """
    import gc

    from ..control import AdaptiveController, Policy
    from ..control.policy import DEFAULT_LATENCY_ANALYZER

    objects = dataset_stream(dataset, stream_length)
    chunk = max(query.s, (256 // query.s) * query.s)
    quiet = Policy(
        rules=[],
        latency_budget_seconds=1e9,
        analyzer_config={
            "latency": dict(DEFAULT_LATENCY_ANALYZER),
            "candidates": {"factor": 3.0, "window": 32},
            "drift": {"alpha": 0.01, "window": 16},
        },
    )

    def run(controlled: bool):
        engine = StreamEngine(keep_results=False, return_results=False)
        subscription = engine.subscribe("q", query, algorithm=algorithm)
        controller = None
        if controlled:
            controller = AdaptiveController(quiet)
            engine.attach_controller(controller)
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            engine.push_many(objects, chunk_size=chunk)
            engine.flush()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        return elapsed, engine, subscription, controller

    bare = controlled = float("inf")
    run(False)  # warm caches before the first timed pair
    for _ in range(repeats):
        bare = min(bare, run(False)[0])
        elapsed, engine, subscription, controller = run(True)
        controlled = min(controlled, elapsed)

    # Component measurement on the final controlled engine's live state.
    group = subscription.group
    monitor = controller.monitor
    result = subscription.latest()
    if result is None:  # keep_results=False: synthesise a k-sized answer
        from ..core.result import TopKResult

        result = TopKResult.from_objects(0, 0, objects[: query.k])
    from ..core.window import SlideEvent

    event_count = 2000
    sample_event = SlideEvent(index=1, arrivals=(), expirations=(), window_end=0)
    started = time.perf_counter()
    for _ in range(event_count):
        monitor.record_slide(group, subscription, sample_event, result)
    record_seconds = (time.perf_counter() - started) / event_count
    pass_count = 500
    started = time.perf_counter()
    for _ in range(pass_count):
        controller._analyze(group)
    analyze_seconds = (time.perf_counter() - started) / pass_count

    slides = max(1, int(subscription.stats()["slides"]))
    bare_per_slide = bare / slides
    per_slide_overhead = (
        record_seconds + analyze_seconds / quiet.analysis_interval_slides
    )
    overhead = per_slide_overhead / bare_per_slide if bare_per_slide else 0.0
    return {
        "dataset": dataset,
        "algorithm": algorithm,
        "stream_length": stream_length,
        "slides": slides,
        "bare_seconds": bare,
        "controlled_seconds": controlled,
        "overhead_fraction": overhead,
        "wallclock_overhead_fraction": controlled / bare - 1.0 if bare else 0.0,
        "monitor_seconds_per_slide": record_seconds,
        "analysis_pass_seconds": analyze_seconds,
        "bare_events_per_second": stream_length / bare if bare else float("inf"),
        "controlled_events_per_second": (
            stream_length / controlled if controlled else float("inf")
        ),
    }


def measure_drift_adaptation(
    dataset: str,
    query: TopKQuery,
    stream_length: int,
    repeats: int = 3,
) -> Dict[str, object]:
    """Adaptation win: a drifting stream under static vs adaptive config.

    Three runs over the same stream:

    * ``static-enhanced`` — SAP pinned to the enhanced dynamic partitioner
      (the paper's default, the configuration the workload *starts* on);
    * ``static-equal`` — SAP pinned to the equal partitioner (the oracle
      best for this regime-switching stream: under drift the WRT-driven
      sizing pays its statistical-test cost without candidate savings);
    * ``adaptive`` — starts on the enhanced partitioner under the default
      policy, whose drift rule swaps to the equal partitioner mid-run.

    The adaptive run's answers are verified byte-identical to both static
    runs (``exact_match``) — SAP is exact for any partitioning — and its
    speedup over the static starting configuration is the headline.  The
    applied tactics are returned so trajectory files record *when* the
    plane adapted.
    """
    from ..control import AdaptiveController, Policy

    objects = dataset_stream(dataset, stream_length)

    def run(algorithm: str, controlled: bool):
        engine = StreamEngine(return_results=False)
        subscription = engine.subscribe("q", query, algorithm=algorithm)
        controller = None
        if controlled:
            controller = AdaptiveController(Policy.default())
            engine.attach_controller(controller)
        started = time.perf_counter()
        engine.push_many(objects)
        engine.flush()
        elapsed = time.perf_counter() - started
        answers = [
            (result.slide_index, tuple(result.scores))
            for result in subscription.results()
        ]
        return elapsed, answers, controller

    equal_seconds = enhanced_seconds = adaptive_seconds = float("inf")
    for _ in range(repeats):
        seconds, equal_answers, _ = run("SAP-equal", False)
        equal_seconds = min(equal_seconds, seconds)
        seconds, enhanced_answers, _ = run("SAP-enhanced", False)
        enhanced_seconds = min(enhanced_seconds, seconds)
        seconds, adaptive_answers, controller = run("SAP-enhanced", True)
        adaptive_seconds = min(adaptive_seconds, seconds)
    events = [event.as_dict() for event in controller.events() if event.applied]
    return {
        "dataset": dataset,
        "stream_length": stream_length,
        "static_equal_seconds": equal_seconds,
        "static_enhanced_seconds": enhanced_seconds,
        "adaptive_seconds": adaptive_seconds,
        "speedup_vs_static": (
            enhanced_seconds / adaptive_seconds if adaptive_seconds else float("inf")
        ),
        "tactics_applied": events,
        "exact_match": (
            adaptive_answers == equal_answers == enhanced_answers
        ),
        "accuracy": controller.accuracy_report(),
    }


def _preference_vectors(users: int, dim: int, centers: int, seed: int) -> List[Tuple[float, ...]]:
    """Deterministic user vectors drawn around ``centers`` shared tastes.

    Mirrors the "millions of users, thousands of tastes" premise of the
    clustering plane: each user's vector is a small multiplicative
    perturbation of one of a few center vectors, so greedy cosine
    clustering recovers roughly one cluster per center.
    """
    import random

    rng = random.Random(seed)
    anchor = [
        tuple(rng.uniform(0.2, 1.0) for _ in range(dim)) for _ in range(centers)
    ]
    vectors = []
    for index in range(users):
        center = anchor[index % centers]
        vectors.append(
            tuple(max(0.0, w * (1.0 + rng.uniform(-0.05, 0.05))) for w in center)
        )
    return vectors


def _attribute_objects(length: int, dim: int, seed: int):
    """A stream of attribute-carrying objects (scores live in the vectors)."""
    import random

    from ..core.object import StreamObject

    rng = random.Random(seed)
    return [
        StreamObject(
            score=0.0,
            t=t,
            payload={"attributes": [rng.uniform(0.0, 100.0) for _ in range(dim)]},
        )
        for t in range(length)
    ]


def measure_preference_scale(
    users: int,
    query: TopKQuery,
    stream_length: int,
    *,
    dim: int = 4,
    centers: int = 16,
    baseline_users: int = 500,
    exactness_sample: int = 8,
    inner: str = "SAP",
    seed: int = 97,
) -> Dict[str, object]:
    """One tier of the subscription-scale experiment.

    Three legs, all over the same deterministic attribute stream:

    * **clustered** — ``users`` preference subscriptions on one engine,
      answered through padded-k cluster plans (the tentpole path).  Wall
      time and summed per-subscription memory are measured directly.
    * **baseline** — per-user exact plans (every subscription pinned to
      its own cluster id, so no plan forms and each user runs a private
      inner core).  Running every user this way at 10k+ is exactly the
      quadratic blow-up the clustering plane removes, so the baseline is
      *measured* on ``baseline_users`` subscriptions and extrapolated
      linearly; ``baseline_measured_users`` records the honest sample
      size.
    * **exactness** — ``exactness_sample`` members are re-run on fresh
      single-user engines (trivially exact) and compared byte-for-byte
      against the answers the shared plans produced for them.
    """
    from ..core.result import results_agree

    vectors = _preference_vectors(users, dim, centers, seed)
    objects = _attribute_objects(stream_length, dim, seed + 1)
    sample_step = max(1, users // max(1, exactness_sample))
    sampled = list(range(0, users, sample_step))[:exactness_sample]
    sampled_set = set(sampled)

    # Clustered leg: one engine, shared plans per preference cluster.
    engine = StreamEngine(keep_results=False)
    for index, vector in enumerate(vectors):
        engine.subscribe_preference(
            f"user-{index}",
            query,
            vector,
            algorithm=inner,
            keep_results=index in sampled_set,
            collect_metrics=False,
        )
    started = time.perf_counter()
    engine.push_many(objects, chunk_size=max(1, query.s))
    clustered_seconds = time.perf_counter() - started
    clustered_memory = sum(
        engine.subscription(name).algorithm.memory_bytes()
        for name in engine.subscriptions()
    )
    reranks = fallbacks = clusters = 0
    for group in engine.groups():
        for plan in group.get("plans", ()):
            if plan.get("kind") == "cluster":
                clusters += 1
                reranks += plan.get("reranks", 0)
                fallbacks += plan.get("fallbacks", 0)
    sampled_results = {index: engine.results(f"user-{index}") for index in sampled}
    engine.close()

    # Exactness leg: each sampled member alone on a fresh engine is a
    # lone cluster member, i.e. a private exact plan.
    exact = True
    for index in sampled:
        solo = StreamEngine(keep_results=True)
        solo.subscribe_preference(
            f"user-{index}", query, vectors[index], algorithm=inner
        )
        solo.push_many(objects, chunk_size=max(1, query.s))
        if not results_agree(solo.results(f"user-{index}"), sampled_results[index]):
            exact = False
        solo.close()

    # Baseline leg: per-user exact plans, measured on a subsample and
    # extrapolated linearly (each user carries a full private core, so
    # cost per user is constant in the user count).
    measured_users = min(users, baseline_users)
    baseline = StreamEngine(keep_results=False)
    for index in range(measured_users):
        baseline.subscribe_preference(
            f"user-{index}",
            query,
            vectors[index],
            algorithm=inner,
            cluster_id=index,  # unique id: bucket of one, no shared plan
            keep_results=False,
            collect_metrics=False,
        )
    started = time.perf_counter()
    baseline.push_many(objects, chunk_size=max(1, query.s))
    baseline_measured_seconds = time.perf_counter() - started
    baseline_measured_memory = sum(
        baseline.subscription(name).algorithm.memory_bytes()
        for name in baseline.subscriptions()
    )
    baseline.close()

    scale_factor = users / measured_users
    baseline_seconds = baseline_measured_seconds * scale_factor
    baseline_memory = baseline_measured_memory * scale_factor
    return {
        "users": users,
        "clusters": clusters,
        "inner": inner,
        "stream_length": stream_length,
        "clustered": {
            "seconds": round(clustered_seconds, 4),
            "events_per_second": round(stream_length / clustered_seconds, 1),
            "memory_bytes": int(clustered_memory),
        },
        "baseline": {
            "seconds": round(baseline_seconds, 4),
            "events_per_second": round(stream_length / baseline_seconds, 1),
            "memory_bytes": int(baseline_memory),
            "measured_users": measured_users,
            "measured_seconds": round(baseline_measured_seconds, 4),
        },
        "speedup": round(baseline_seconds / clustered_seconds, 3),
        "memory_ratio": round(clustered_memory / max(1.0, baseline_memory), 4),
        "reranks": reranks,
        "fallbacks": fallbacks,
        "exact": exact,
        "exactness_sample": len(sampled),
    }


def oracle_check(dataset: str, scale: BenchScale) -> bool:
    """Sanity helper: SAP agrees with the brute-force oracle on this scale's
    default query (used by the benchmark suite as a guard)."""
    from ..runner.comparison import compare_algorithms

    n, k, s = scale.default_query_params()
    query = TopKQuery(n=n, k=k, s=s)
    objects = dataset_stream(dataset, scale.stream_length)
    factories = algorithm_factories("brute-force", "SAP")
    outcome = compare_algorithms(list(factories.values()), objects, query)
    return outcome.agree


def main(argv: Sequence[str]) -> int:  # pragma: no cover - CLI convenience
    """Tiny CLI: ``python -m repro.bench.experiments fig9 STOCK``."""
    from .reporting import format_table
    from .workloads import scale_from_env

    if len(argv) < 2:
        print("usage: python -m repro.bench.experiments <fig9|table3|multiquery> <DATASET>")
        return 1
    scale = scale_from_env()
    kind, dataset = argv[0], argv[1]
    if kind == "fig9":
        rows = sweep_parameter(dataset, scale, "n", scale.n_values, ALGORITHM_FACTORIES)
    elif kind == "table3":
        rows = partitioner_comparison(dataset, scale, "k", scale.k_values)
    elif kind == "multiquery":
        n, _, s = scale.default_query_params()
        results = [
            measure_multiquery_sharing(
                dataset, (2 * n, max(1, n // 10)), tuple(scale.k_values), name, scale.stream_length
            )
            for name in ("SAP", "k-skyband", "MinTopK")
        ]
        table = format_table(
            f"multi-query sharing on {dataset} ({scale.name} scale)",
            ["algorithm", "queries", "indep s", "shared s", "speedup"],
            [
                [row["algorithm"], row["queries"], row["independent"]["seconds"],
                 row["shared"]["seconds"], row["speedup"]]
                for row in results
            ],
        )
        print(table)
        return 0
    else:
        print(f"unknown experiment {kind!r}")
        return 1
    table = format_table(
        f"{kind} on {dataset} ({scale.name} scale)",
        ["algorithm", "parameter", "value", "seconds", "candidates", "memory_kb"],
        [
            [row["algorithm"], row["parameter"], row["value"], row["seconds"], row["candidates"], row["memory_kb"]]
            for row in rows
        ],
    )
    print(table)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
