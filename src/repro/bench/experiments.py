"""Experiment drivers shared by the benchmark suite.

Each helper reproduces the measurement loop behind one family of the
paper's tables/figures: run a set of algorithms on a dataset under a query,
record running time, average candidate count, and average memory, and
return plain dictionaries the benchmark modules format into tables.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.framework import SAPTopK
from ..core.interface import ContinuousTopKAlgorithm
from ..core.query import TopKQuery
from ..engine import StreamEngine
from ..partitioning import EqualPartitioner
from ..registry import algorithm_factories, get_algorithm
from ..runner.engine import run_algorithm
from .workloads import BenchScale, dataset_stream

AlgorithmFactory = Callable[[TopKQuery], ContinuousTopKAlgorithm]

#: The algorithms compared throughout the evaluation section, keyed by the
#: names used in the paper's figures.  All factories come from the unified
#: registry (:mod:`repro.registry`); "SAP" there defaults to the enhanced
#: dynamic partitioner, exactly the configuration the figures evaluate.
ALGORITHM_FACTORIES: Dict[str, AlgorithmFactory] = algorithm_factories(
    "SAP", "MinTopK", "SMA", "k-skyband"
)

#: SAP configurations compared in Tables 2 and 3, keyed by the paper's
#: abbreviations but resolved through the same registry.
PARTITIONER_FACTORIES: Dict[str, AlgorithmFactory] = {
    "EQUAL": get_algorithm("SAP-equal").factory,
    "DYNA": get_algorithm("SAP-dynamic").factory,
    "EN-DYNA": get_algorithm("SAP-enhanced").factory,
}


#: Cache of individual measurements so that tables sharing the same runs
#: (e.g. Figure 9 / Table 6 / Table 8) do not recompute them.
_MEASUREMENT_CACHE: Dict[Tuple[str, int, int, int, bool, str, int], Dict[str, float]] = {}


def measure_one(
    dataset: str,
    query: TopKQuery,
    name: str,
    factory: AlgorithmFactory,
    stream_length: int,
) -> Dict[str, float]:
    """Measure one algorithm on one workload (memoised)."""
    key = (dataset, query.n, query.k, query.s, query.time_based, name, stream_length)
    cached = _MEASUREMENT_CACHE.get(key)
    if cached is not None:
        return dict(cached)
    objects = dataset_stream(dataset, stream_length)
    report = run_algorithm(factory(query), objects, keep_results=False)
    metrics = {
        "seconds": report.elapsed_seconds,
        "candidates": report.average_candidates,
        "memory_kb": report.average_memory_kb,
        "slides": float(report.slides),
    }
    _MEASUREMENT_CACHE[key] = dict(metrics)
    return metrics


def measure_algorithms(
    dataset: str,
    query: TopKQuery,
    factories: Mapping[str, AlgorithmFactory],
    stream_length: int,
) -> Dict[str, Dict[str, float]]:
    """Run every algorithm on the dataset and collect the three metrics."""
    return {
        name: measure_one(dataset, query, name, factory, stream_length)
        for name, factory in factories.items()
    }


def sweep_parameter(
    dataset: str,
    scale: BenchScale,
    parameter: str,
    values: Sequence[int],
    factories: Mapping[str, AlgorithmFactory],
) -> List[Dict[str, object]]:
    """Vary one query parameter (n, k, or s) keeping the others at their
    defaults — the structure of Figures 9/10 and Tables 3/5-9."""
    rows: List[Dict[str, object]] = []
    for value in values:
        n, k, s = scale.default_query_params()
        if parameter == "n":
            n = value
        elif parameter == "k":
            k = value
        elif parameter == "s":
            s = value
        else:
            raise ValueError(f"unknown parameter {parameter!r}")
        k = min(k, n)
        s = min(s, n)
        query = TopKQuery(n=n, k=k, s=s)
        measurements = measure_algorithms(dataset, query, factories, scale.stream_length)
        for name, metrics in measurements.items():
            rows.append(
                {
                    "dataset": dataset,
                    "parameter": parameter,
                    "value": value,
                    "algorithm": name,
                    **metrics,
                }
            )
    return rows


def equal_partition_sweep(
    dataset: str, scale: BenchScale, m_values: Optional[Sequence[int]] = None
) -> List[Dict[str, object]]:
    """Table 2: equal partition under different resolutions ``m``, comparing
    the non-delay policy, Algorithm 1, and Algorithm 1 + S-AVL."""
    n, k, s = scale.default_query_params()
    query = TopKQuery(n=n, k=k, s=s)
    rows: List[Dict[str, object]] = []
    variants: Dict[str, Callable[[int], ContinuousTopKAlgorithm]] = {
        "non-delay": lambda m: SAPTopK(
            query,
            partitioner=EqualPartitioner(m=m),
            meaningful_policy="eager",
            use_savl=False,
        ),
        "Algo1": lambda m: SAPTopK(
            query, partitioner=EqualPartitioner(m=m), use_savl=False
        ),
        "Algo1+S-AVL": lambda m: SAPTopK(query, partitioner=EqualPartitioner(m=m)),
    }
    objects = dataset_stream(dataset, scale.stream_length)
    for m in m_values or scale.m_values:
        for variant, builder in variants.items():
            report = run_algorithm(builder(m), objects, keep_results=False)
            rows.append(
                {
                    "dataset": dataset,
                    "m": m,
                    "m_star": query.m_star,
                    "variant": variant,
                    "seconds": report.elapsed_seconds,
                    "candidates": report.average_candidates,
                }
            )
    return rows


def partitioner_comparison(
    dataset: str, scale: BenchScale, parameter: str, values: Sequence[int]
) -> List[Dict[str, object]]:
    """Table 3: EQUAL vs DYNA vs EN-DYNA while varying one parameter."""
    return sweep_parameter(dataset, scale, parameter, values, PARTITIONER_FACTORIES)


def measure_multiquery_sharing(
    dataset: str,
    query_shape: Tuple[int, int],
    k_values: Sequence[int],
    algorithm: str,
    stream_length: int,
) -> Dict[str, object]:
    """Compare N independent engines against one shared multi-query plane.

    Runs ``len(k_values)`` queries of one window shape ``(n, s)`` — first
    each on its own :class:`~repro.engine.StreamEngine` (the pre-group
    architecture), then all on a single engine, where they form one query
    group and share slide batching and, when the algorithm supports it, a
    ``k_max`` execution plan.  Returns throughput (objects/second through
    the plane) and per-slide latency aggregates for both arrangements.
    """
    n, s = query_shape
    objects = dataset_stream(dataset, stream_length)
    queries = [TopKQuery(n=n, k=k, s=s) for k in k_values]

    def run_engines(shared: bool) -> Dict[str, float]:
        engines: List[StreamEngine] = []
        subscriptions = []
        if shared:
            engines.append(StreamEngine(keep_results=False, return_results=False))
        for query in queries:
            if not shared:
                engines.append(StreamEngine(keep_results=False, return_results=False))
            subscriptions.append(
                engines[-1].subscribe(f"k{query.k}-{len(subscriptions)}", query, algorithm=algorithm)
            )
        started = time.perf_counter()
        for engine in engines:
            engine.push_many(objects)
        elapsed = time.perf_counter() - started
        slide_latencies = [sub.metrics for sub in subscriptions]
        return {
            "seconds": elapsed,
            "events_per_second": len(objects) / elapsed if elapsed else float("inf"),
            "median_slide_latency": max(m.median_latency for m in slide_latencies),
            "p95_slide_latency": max(m.p95_latency for m in slide_latencies),
            "slides": sum(m.slides for m in slide_latencies),
        }

    independent = run_engines(shared=False)
    shared = run_engines(shared=True)
    return {
        "dataset": dataset,
        "algorithm": algorithm,
        "n": n,
        "s": s,
        "k_values": list(k_values),
        "queries": len(k_values),
        "stream_length": len(objects),
        "independent": independent,
        "shared": shared,
        "speedup": independent["seconds"] / shared["seconds"] if shared["seconds"] else float("inf"),
    }


def oracle_check(dataset: str, scale: BenchScale) -> bool:
    """Sanity helper: SAP agrees with the brute-force oracle on this scale's
    default query (used by the benchmark suite as a guard)."""
    from ..runner.comparison import compare_algorithms

    n, k, s = scale.default_query_params()
    query = TopKQuery(n=n, k=k, s=s)
    objects = dataset_stream(dataset, scale.stream_length)
    factories = algorithm_factories("brute-force", "SAP")
    outcome = compare_algorithms(list(factories.values()), objects, query)
    return outcome.agree


def main(argv: Sequence[str]) -> int:  # pragma: no cover - CLI convenience
    """Tiny CLI: ``python -m repro.bench.experiments fig9 STOCK``."""
    from .reporting import format_table
    from .workloads import scale_from_env

    if len(argv) < 2:
        print("usage: python -m repro.bench.experiments <fig9|table3|multiquery> <DATASET>")
        return 1
    scale = scale_from_env()
    kind, dataset = argv[0], argv[1]
    if kind == "fig9":
        rows = sweep_parameter(dataset, scale, "n", scale.n_values, ALGORITHM_FACTORIES)
    elif kind == "table3":
        rows = partitioner_comparison(dataset, scale, "k", scale.k_values)
    elif kind == "multiquery":
        n, _, s = scale.default_query_params()
        results = [
            measure_multiquery_sharing(
                dataset, (2 * n, max(1, n // 10)), tuple(scale.k_values), name, scale.stream_length
            )
            for name in ("SAP", "k-skyband", "MinTopK")
        ]
        table = format_table(
            f"multi-query sharing on {dataset} ({scale.name} scale)",
            ["algorithm", "queries", "indep s", "shared s", "speedup"],
            [
                [row["algorithm"], row["queries"], row["independent"]["seconds"],
                 row["shared"]["seconds"], row["speedup"]]
                for row in results
            ],
        )
        print(table)
        return 0
    else:
        print(f"unknown experiment {kind!r}")
        return 1
    table = format_table(
        f"{kind} on {dataset} ({scale.name} scale)",
        ["algorithm", "parameter", "value", "seconds", "candidates", "memory_kb"],
        [
            [row["algorithm"], row["parameter"], row["value"], row["seconds"], row["candidates"], row["memory_kb"]]
            for row in rows
        ],
    )
    print(table)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(sys.argv[1:]))
