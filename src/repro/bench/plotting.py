"""Text rendering of the paper's figures (running time vs parameter).

The benchmark harness runs headless, so the figure benchmarks render their
series as plain-text charts instead of image files: one column per swept
parameter value, one bar row per algorithm, values normalised to the
slowest algorithm of each column.  The rendering is deliberately simple —
its purpose is to make the *shape* of each sub-figure (who is fastest,
where curves cross) visible directly in the benchmark output and results
files.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

#: Width of one bar, in characters.
BAR_WIDTH = 40


def series_from_rows(
    rows: Sequence[Mapping[str, object]],
    value_key: str = "seconds",
) -> Dict[str, Dict[object, float]]:
    """Group sweep rows into ``{algorithm: {parameter value: metric}}``."""
    series: Dict[str, Dict[object, float]] = {}
    for row in rows:
        algorithm = str(row["algorithm"])
        series.setdefault(algorithm, {})[row["value"]] = float(row[value_key])
    return series


def render_series_chart(
    title: str,
    series: Mapping[str, Mapping[object, float]],
    unit: str = "s",
) -> str:
    """Render one text chart per swept value, bars scaled per value."""
    if not series:
        return title
    values: List[object] = []
    for per_algorithm in series.values():
        for value in per_algorithm:
            if value not in values:
                values.append(value)

    lines = [title, "=" * len(title)]
    name_width = max(len(name) for name in series)
    for value in values:
        lines.append(f"\nparameter value = {value}")
        column = {
            name: per_algorithm[value]
            for name, per_algorithm in series.items()
            if value in per_algorithm
        }
        worst = max(column.values()) or 1.0
        for name in series:
            if name not in column:
                continue
            metric = column[name]
            bar = "#" * max(1, int(round(BAR_WIDTH * metric / worst)))
            lines.append(f"  {name.ljust(name_width)}  {bar} {metric:.4f}{unit}")
    return "\n".join(lines)


def render_sweep(
    title: str,
    rows: Sequence[Mapping[str, object]],
    value_key: str = "seconds",
    unit: str = "s",
) -> str:
    """Convenience wrapper: group rows then render the chart."""
    return render_series_chart(title, series_from_rows(rows, value_key), unit=unit)
