"""Benchmark harness regenerating the paper's tables and figures.

The modules in this package are consumed by the ``benchmarks/`` pytest
suite (one module per table/figure of the paper) and can also be driven
directly, e.g.::

    python -m repro.bench.experiments fig9 STOCK
"""

from .workloads import BenchScale, QUICK_SCALE, FULL_SCALE, dataset_stream, scale_from_env
from .experiments import (
    ALGORITHM_FACTORIES,
    measure_algorithms,
    sweep_parameter,
    equal_partition_sweep,
    partitioner_comparison,
)
from .reporting import format_table, write_results

__all__ = [
    "BenchScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "scale_from_env",
    "dataset_stream",
    "ALGORITHM_FACTORIES",
    "measure_algorithms",
    "sweep_parameter",
    "equal_partition_sweep",
    "partitioner_comparison",
    "format_table",
    "write_results",
]
