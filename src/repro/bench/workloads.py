"""Workload definitions: scaled-down versions of the paper's parameters.

The paper streams gigabytes of data through C++ implementations; this
reproduction runs pure Python, so the harness scales every quantity down
while keeping the *ratios* the paper varies:

* the window covers a fixed fraction of the stream (the paper's default is
  ``n = 0.1%·|D|``; here the stream is short, so the window fraction is
  larger but still leaves dozens of window slides per run);
* the slide is a fraction of the window (paper default ``s = 0.1%·n``,
  swept up to ``10%·n``; tiny absolute slides are infeasible in Python so
  the quick scale starts at 1%);
* ``k`` is swept over the same ratios to the window size as in the paper.

Two scales are provided: ``QUICK_SCALE`` (default, minutes for the whole
suite) and ``FULL_SCALE`` (set ``REPRO_BENCH_SCALE=full``) for longer runs
that sharpen the measured ratios.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from ..core.object import StreamObject
from ..streams import make_dataset


@dataclass(frozen=True)
class BenchScale:
    """Sizes and parameter grids used by the benchmark suite."""

    name: str
    stream_length: int
    #: Default query parameters (n, k, s).
    default_n: int
    default_k: int
    default_s: int
    #: Values swept for the "effect of n / k / s" experiments.
    n_values: Tuple[int, ...]
    k_values: Tuple[int, ...]
    s_values: Tuple[int, ...]
    #: Partition resolutions for the Table 2 sweep.
    m_values: Tuple[int, ...]
    #: High-speed-stream parameters (Tables 5, 7, 9).
    highspeed_n: int = 0
    highspeed_k: int = 0
    highspeed_s: int = 0

    def default_query_params(self) -> Tuple[int, int, int]:
        return self.default_n, self.default_k, self.default_s


QUICK_SCALE = BenchScale(
    name="quick",
    stream_length=8_000,
    default_n=1_000,
    default_k=20,
    default_s=10,
    n_values=(500, 1_000, 2_000),
    k_values=(10, 20, 50),
    s_values=(10, 50, 100),
    m_values=(1, 2, 3, 5, 7, 9, 13, 17),
    highspeed_n=2_500,
    highspeed_k=100,
    highspeed_s=400,
)

FULL_SCALE = BenchScale(
    name="full",
    stream_length=12_000,
    default_n=1_200,
    default_k=50,
    default_s=60,
    n_values=(600, 1_200, 2_400),
    k_values=(10, 50, 200),
    s_values=(12, 60, 240),
    m_values=(1, 3, 5, 7, 9, 13, 17, 25, 33),
    highspeed_n=3_600,
    highspeed_k=200,
    highspeed_s=600,
)


#: Tiny scale for CI smoke jobs: a stream of a few thousand objects still
#: exercises every code path (window fills, partitions seal, the control
#: plane's analyzers see enough slides to fire) in a couple of seconds,
#: but the measured ratios are too noisy to compare against the paper.
SMOKE_SCALE = BenchScale(
    name="smoke",
    stream_length=3_000,
    default_n=400,
    default_k=10,
    default_s=20,
    n_values=(400,),
    k_values=(10,),
    s_values=(20,),
    m_values=(1, 3),
    highspeed_n=600,
    highspeed_k=20,
    highspeed_s=100,
)


def scale_from_env() -> BenchScale:
    """Pick the benchmark scale from ``REPRO_BENCH_SCALE`` (smoke/quick/full)."""
    value = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if value == "full":
        return FULL_SCALE
    if value == "smoke":
        return SMOKE_SCALE
    return QUICK_SCALE


@lru_cache(maxsize=16)
def _cached_stream(dataset: str, length: int) -> Tuple[StreamObject, ...]:
    return tuple(make_dataset(dataset).take(length))


def dataset_stream(dataset: str, length: int) -> List[StreamObject]:
    """Materialise (and cache) ``length`` objects of a named dataset."""
    return list(_cached_stream(dataset, length))


#: Dataset groups used by the individual experiments.
REAL_DATASETS: Tuple[str, ...] = ("STOCK", "TRIP", "PLANET")
SYNTHETIC_DATASETS: Tuple[str, ...] = ("TIMEU", "TIMER")
ALL_DATASETS: Tuple[str, ...] = REAL_DATASETS + SYNTHETIC_DATASETS
