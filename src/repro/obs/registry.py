"""A process-local, lock-cheap metrics registry.

Every layer of the stack registers named **instruments** here — counters,
gauges, and histograms, each with a frozen label set — instead of growing
its own ad-hoc stat dict.  One registry serves a whole process; worker
processes of the sharded plane each have their own, and the facade merges
their snapshots (:func:`repro.obs.exposition.merge_snapshots`) so a
``/metrics`` scrape sees the cluster as one.

Design constraints, in order:

* **Hot-path cost.**  Instruments are resolved once (at subscribe /
  construction time) and cached by the call sites; an increment is then a
  plain attribute method with no locking — CPython's GIL makes the rare
  lost-update race benign for monotone counters, and the alternative (a
  lock per increment) is exactly the overhead the <5% gate forbids.
  Instrument *creation* is locked (it mutates shared dicts).
* **No-op when disabled.**  A disabled registry hands out the shared
  :data:`NOOP` instrument from every factory, so instrumented code paths
  compile down to a method call on a do-nothing singleton — measured at
  ~0% in ``benchmarks/bench_obs_overhead.py``.
* **Bounded label cardinality.**  Each instrument family caps its series
  count (:data:`MAX_SERIES_PER_FAMILY`); past the cap, new label
  combinations all share one overflow series (labelled
  ``overflow="true"``) instead of growing memory forever or raising on a
  hot path.

Histogram buckets are **fixed log-linear**: boundaries at 1, 2, and 5
times each power of ten across a configured range, so bucket layout is
identical in every process (a hard requirement for cross-process
aggregation) and quantile estimates stay within a factor of ~2 at worst.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP",
    "NoopInstrument",
    "get_registry",
    "set_registry",
    "log_linear_buckets",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "MAX_SERIES_PER_FAMILY",
]

#: Series cap per instrument family (one family = one metric name).  High
#: enough for per-shard x per-algorithm x per-stage label products, low
#: enough that a runaway label (e.g. a user id) cannot exhaust memory.
MAX_SERIES_PER_FAMILY = 512

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def log_linear_buckets(low: float, high: float) -> Tuple[float, ...]:
    """Boundaries at 1/2/5 per decade covering ``[low, high]``.

    ``low`` and ``high`` are clamped to the nearest enclosing decade, so
    ``log_linear_buckets(1e-6, 10)`` yields ``1e-06, 2e-06, 5e-06, ...,
    5.0, 10.0``.  The implicit final bucket is +Inf.
    """
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got {low}, {high}")
    boundaries: List[float] = []
    # Integer decade exponents avoid accumulating float error across the
    # range; the 1e-9 slack admits boundaries equal to low/high despite
    # representation noise (10**-6 may land a hair above 1e-6).
    for exponent in range(
        math.floor(math.log10(low)) - 1, math.ceil(math.log10(high)) + 1
    ):
        for mantissa in (1, 2, 5):
            # Parse the decimal literal instead of multiplying floats so
            # boundaries render cleanly (5e-06, not 4.9999...e-06).
            boundary = float(f"{mantissa}e{exponent}")
            if low * (1 - 1e-9) <= boundary <= high * (1 + 1e-9):
                boundaries.append(boundary)
    return tuple(boundaries)


#: Default boundaries for second-valued histograms: 1µs to 10s.
LATENCY_BUCKETS = log_linear_buckets(1e-6, 10.0)

#: Default boundaries for count/byte-valued histograms: 1 to 1e9.
SIZE_BUCKETS = log_linear_buckets(1.0, 1e9)


class Counter:
    """A monotonically increasing value (events, bytes, drops)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (occupancy, pending, live clients)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A distribution over fixed buckets (latencies, sizes).

    ``observe`` is the hot operation: one bisect over the shared boundary
    tuple plus two adds.  ``counts[i]`` counts observations ``<=
    boundaries[i]``-exclusive-of-lower — i.e. the *non-cumulative* bucket
    populations; the final slot counts the +Inf overflow.  Exposition
    renders the cumulative Prometheus form.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "boundaries", "counts", "sum", "count")

    def __init__(
        self, name: str, labels: LabelItems, boundaries: Sequence[float]
    ) -> None:
        bounds = tuple(boundaries)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(f"bucket boundaries must strictly increase: {bounds}")
        self.name = name
        self.labels = labels
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, fraction: float) -> float:
        """Estimated percentile from the bucket populations.

        The nearest-rank target is located in its bucket and linearly
        interpolated across the bucket's span (Prometheus
        ``histogram_quantile`` semantics); 0.0 with no observations.
        Estimates are bucket-resolution approximations — exact percentile
        surfaces (``stats()``) use the retained samples instead.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(self.boundaries):
                    return self.boundaries[-1]
                upper = self.boundaries[index]
                lower = self.boundaries[index - 1] if index else 0.0
                inside = max(0.0, target - cumulative)
                return lower + (upper - lower) * min(1.0, inside / bucket_count)
            cumulative += bucket_count
        return self.boundaries[-1]


class NoopInstrument:
    """The disabled registry's universal instrument: every write is a
    no-op, every read is zero.  One shared instance serves all call
    sites, so a disabled registry costs one attribute call per would-be
    sample."""

    kind = "noop"
    name = ""
    labels: LabelItems = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, fraction: float) -> float:
        return 0.0


NOOP = NoopInstrument()


class _Family:
    """All series of one metric name: type, help text, and the label map."""

    __slots__ = ("name", "kind", "help", "boundaries", "series")

    def __init__(self, name, kind, help_text, boundaries) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.boundaries = boundaries
        self.series: Dict[LabelItems, object] = {}


class MetricsRegistry:
    """Named instruments of one process, plus pull-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    ``(name, labels)`` pair always returns the same instrument, so call
    sites may re-resolve freely (though hot paths should cache).
    Registering one name with two types (or two bucket layouts) is a
    programming error and raises.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}
        self._collectors: List = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        return self._series(name, "counter", help_text, labels, None)

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        return self._series(name, "gauge", help_text, labels, None)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._series(name, "histogram", help_text, labels, tuple(buckets))

    def _series(self, name, kind, help_text, labels, boundaries):
        if not self.enabled:
            return NOOP
        items = _label_items(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, boundaries)
                self._families[name] = family
            else:
                if family.kind != kind:
                    raise ValueError(
                        f"instrument {name!r} is a {family.kind}, not a {kind}"
                    )
                if kind == "histogram" and family.boundaries != boundaries:
                    raise ValueError(
                        f"histogram {name!r} was registered with different buckets"
                    )
                if help_text and not family.help:
                    family.help = help_text
            instrument = family.series.get(items)
            if instrument is None:
                if len(family.series) >= MAX_SERIES_PER_FAMILY:
                    # Cardinality guard: every overflowing label set shares
                    # one series instead of growing the family forever.
                    items = (("overflow", "true"),)
                    instrument = family.series.get(items)
                    if instrument is not None:
                        return instrument
                instrument = self._build(family, items)
                family.series[items] = instrument
            return instrument

    @staticmethod
    def _build(family: _Family, items: LabelItems):
        if family.kind == "counter":
            return Counter(family.name, items)
        if family.kind == "gauge":
            return Gauge(family.name, items)
        return Histogram(family.name, items, family.boundaries)

    # ------------------------------------------------------------------
    # Pull-time collectors
    # ------------------------------------------------------------------
    def add_collector(self, collector) -> None:
        """Register ``collector(registry)`` to run at every snapshot.

        Collectors convert cheap, already-maintained state (ring
        occupancy, pending batch sizes, dedupe window fill) into gauges
        at *pull* time, so components with natural state counters pay
        nothing per event."""
        if self.enabled:
            self._collectors.append(collector)

    def remove_collector(self, collector) -> None:
        if collector in self._collectors:
            self._collectors.remove(collector)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, object]]:
        """Every series as one JSON-friendly record list.

        The wire shape shared by ``/metrics.json``, the cluster merge,
        the MAPE-K knowledge feed, and ``repro top``: one record per
        series with ``name``, ``type``, ``help``, ``labels``, and either
        ``value`` (counter/gauge) or ``buckets``/``sum``/``count``
        (histogram, with non-cumulative bucket counts keyed by upper
        boundary).
        """
        for collector in list(self._collectors):
            collector(self)
        records: List[Dict[str, object]] = []
        with self._lock:
            families = [
                (family, list(family.series.values()))
                for family in self._families.values()
            ]
        for family, series in families:
            for instrument in series:
                record: Dict[str, object] = {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labels": dict(instrument.labels),
                }
                if family.kind == "histogram":
                    record["buckets"] = list(instrument.counts)
                    record["boundaries"] = list(instrument.boundaries)
                    record["sum"] = instrument.sum
                    record["count"] = instrument.count
                else:
                    record["value"] = instrument.value
                records.append(record)
        return records

    def family_names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)


# ----------------------------------------------------------------------
# The process default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry(enabled=True)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every built-in layer writes to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (tests, the overhead benchmark's disabled
    mode); returns the previous registry.  Instruments already resolved
    from the old registry keep writing to it — the swap governs
    everything constructed afterwards."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
