"""Metrics exposition: Prometheus text format 0.0.4 and snapshot merging.

The registry's :meth:`~repro.obs.registry.MetricsRegistry.snapshot` is
the single wire shape; this module turns snapshots into the two consumer
formats:

* :func:`render_prometheus` — the text exposition format served by
  ``GET /metrics`` on ``repro serve`` (scrapeable by any Prometheus);
* :func:`merge_snapshots` — cluster aggregation: per-worker snapshots
  (each its own process, its own registry) are merged into one, with an
  optional extra label (``shard="2"``) stamped on every series so
  per-shard detail survives the merge.  Series that end up with
  identical ``(name, labels)`` are combined by type: counters and
  histograms sum (their bucket layouts are fixed and identical by
  construction), gauges keep the last writer (merge callers stamp a
  disambiguating label when that matters).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "render_prometheus",
    "merge_snapshots",
    "snapshot_value",
    "find_series",
    "histogram_quantile",
]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items = sorted(items + [extra])
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label(str(val))}"' for key, val in items)
    return "{" + body + "}"


def render_prometheus(snapshot: Sequence[Dict[str, object]]) -> str:
    """Render one merged snapshot as Prometheus text format 0.0.4.

    Families are emitted in sorted name order with one ``# HELP`` /
    ``# TYPE`` header each; histograms expand to the cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    by_name: Dict[str, List[Dict[str, object]]] = {}
    for record in snapshot:
        by_name.setdefault(record["name"], []).append(record)
    lines: List[str] = []
    for name in sorted(by_name):
        records = by_name[name]
        kind = records[0]["type"]
        help_text = next((r["help"] for r in records if r.get("help")), "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for record in records:
            labels = dict(record.get("labels") or {})
            if kind == "histogram":
                cumulative = 0
                for boundary, count in zip(record["boundaries"], record["buckets"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, ('le', _format_value(boundary)))}"
                        f" {cumulative}"
                    )
                cumulative += record["buckets"][len(record["boundaries"])]
                lines.append(
                    f"{name}_bucket{_render_labels(labels, ('le', '+Inf'))} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {_format_value(record['sum'])}"
                )
                lines.append(f"{name}_count{_render_labels(labels)} {record['count']}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {_format_value(record['value'])}"
                )
    return "\n".join(lines) + "\n"


def merge_snapshots(
    snapshots: Iterable[Sequence[Dict[str, object]]],
    extra_labels: Optional[Sequence[Optional[Dict[str, str]]]] = None,
) -> List[Dict[str, object]]:
    """Combine several registries' snapshots into one.

    ``extra_labels[i]`` (when given) is stamped onto every series of
    ``snapshots[i]`` before merging — the cluster facade passes
    ``{"shard": str(i)}`` so worker series stay distinguishable.  After
    stamping, series with equal ``(name, labels)`` merge by type:
    counters and histogram buckets/sums/counts add, gauges keep the
    last value seen.
    """
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, object]] = {}
    snapshot_list = list(snapshots)
    for index, snapshot in enumerate(snapshot_list):
        extra = None
        if extra_labels is not None and index < len(extra_labels):
            extra = extra_labels[index]
        for record in snapshot or ():
            labels = dict(record.get("labels") or {})
            if extra:
                labels.update(extra)
            key = (record["name"], tuple(sorted(labels.items())))
            existing = merged.get(key)
            if existing is None:
                copied = dict(record)
                copied["labels"] = labels
                if record["type"] == "histogram":
                    copied["buckets"] = list(record["buckets"])
                    copied["boundaries"] = list(record["boundaries"])
                merged[key] = copied
                continue
            if existing["type"] != record["type"]:
                raise ValueError(
                    f"series {record['name']!r} merges a {existing['type']} "
                    f"with a {record['type']}"
                )
            if record["type"] == "counter":
                existing["value"] += record["value"]
            elif record["type"] == "gauge":
                existing["value"] = record["value"]
            else:
                if existing["boundaries"] != list(record["boundaries"]):
                    raise ValueError(
                        f"histogram {record['name']!r} merges different bucket layouts"
                    )
                existing["buckets"] = [
                    a + b for a, b in zip(existing["buckets"], record["buckets"])
                ]
                existing["sum"] += record["sum"]
                existing["count"] += record["count"]
    return list(merged.values())


# ----------------------------------------------------------------------
# Snapshot querying (repro top, tests, CI assertions)
# ----------------------------------------------------------------------
def find_series(
    snapshot: Sequence[Dict[str, object]],
    name: str,
    labels: Optional[Dict[str, str]] = None,
) -> List[Dict[str, object]]:
    """Series of one family whose labels include ``labels`` (subset match)."""
    wanted = labels or {}
    found = []
    for record in snapshot:
        if record["name"] != name:
            continue
        have = record.get("labels") or {}
        if all(have.get(k) == v for k, v in wanted.items()):
            found.append(record)
    return found


def histogram_quantile(
    record: Dict[str, object], fraction: float
) -> Optional[float]:
    """Estimate a quantile from one histogram snapshot record.

    Same rule as :meth:`repro.obs.registry.Histogram.quantile` — nearest
    rank to pick the bucket, linear interpolation inside it — but applied
    to the snapshot form, so it works on cluster-merged records too.
    Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    buckets = record["buckets"]
    boundaries = record["boundaries"]
    total = sum(buckets)
    if not total:
        return None
    target = fraction * total
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            if index >= len(boundaries):
                return float(boundaries[-1])
            upper = boundaries[index]
            lower = boundaries[index - 1] if index else 0.0
            inside = max(0.0, target - cumulative)
            return lower + (upper - lower) * min(1.0, inside / bucket_count)
        cumulative += bucket_count
    return float(boundaries[-1])


def snapshot_value(
    snapshot: Sequence[Dict[str, object]],
    name: str,
    labels: Optional[Dict[str, str]] = None,
) -> float:
    """Sum of the matching series' values (histograms contribute their
    ``sum``); 0.0 when nothing matches."""
    total = 0.0
    for record in find_series(snapshot, name, labels):
        total += record["sum"] if record["type"] == "histogram" else record["value"]
    return total
