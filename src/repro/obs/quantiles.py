"""The library's one percentile implementation.

Nearest-rank percentiles appear in three places with very different
inputs: the per-subscription :class:`~repro.core.metrics.MetricsCollector`
(a plain list of latencies), the cluster merge layer (per-shard samples
weighted by the slide counts they represent), and the serving layer's
stat reports.  They must agree bit-for-bit — a p95 computed one way on a
shard and another way on the facade would drift — so all of them call the
helpers here and nothing else implements a percentile.

The convention is nearest rank over the *sorted* sample: for a sample of
``m`` values, fraction ``f`` selects the value at index
``round(f * (m - 1))``.  The weighted variant generalises this to
``(value, weight)`` pairs — the value at the smallest cumulative-weight
position covering ``f`` of the total weight — and reduces to the
unweighted rule when all weights are equal.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: The fractions every stat surface reports, in reporting order.
STANDARD_FRACTIONS = (0.5, 0.95, 0.99)


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")


def nearest_rank(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    return nearest_ranks(values, (fraction,))[0]


def nearest_ranks(
    values: Sequence[float], fractions: Sequence[float]
) -> List[float]:
    """Several nearest-rank percentiles from one sort of the sample."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    ordered = sorted(values)
    last = len(ordered) - 1
    results: List[float] = []
    for fraction in fractions:
        _check_fraction(fraction)
        results.append(ordered[min(last, max(0, int(round(fraction * last))))])
    return results


def weighted_nearest_rank(
    samples: Sequence[Tuple[float, float]], fraction: float
) -> float:
    """Nearest-rank percentile of ``(value, weight)`` samples."""
    return weighted_nearest_ranks(samples, (fraction,))[0]


def weighted_nearest_ranks(
    samples: Sequence[Tuple[float, float]], fractions: Sequence[float]
) -> List[float]:
    """Several weighted percentiles from one sort of the sample.

    The value at the smallest cumulative-weight position covering each
    fraction of the total weight; matches :func:`nearest_ranks` when all
    weights are equal.
    """
    if not samples:
        raise ValueError("cannot take a percentile of no values")
    ordered = sorted(samples)
    total = sum(weight for _, weight in ordered)
    results: List[float] = []
    for fraction in fractions:
        _check_fraction(fraction)
        target = fraction * total
        cumulative = 0.0
        chosen = ordered[-1][0]
        for value, weight in ordered:
            cumulative += weight
            if cumulative >= target:
                chosen = value
                break
        results.append(chosen)
    return results
