"""Unified observability plane: metrics, tracing, exposition, dashboard.

Every layer of the system — engine, query groups, partition seals, the
shard router's transports, the shm ring, the serving layer's batcher and
dedupe window, the MAPE-K control loop — records into one process-local
:class:`MetricsRegistry` of named counters, gauges, and log-linear-bucket
histograms.  The registry is lock-free on the hot path (instruments are
resolved once and cached by their owners), and a disabled registry hands
out a shared no-op instrument so the whole plane compiles away to one
dead method call per sample.

Around the metrics sit three consumers:

* **tracing** (:class:`Tracer`): spans over the slide lifecycle
  (``ingest-batch → encode → send → decode → push → seal → merge →
  deliver``), shipped from worker processes over the existing control
  channel and exported as Chrome trace-event JSON via ``repro trace``;
* **exposition** (:func:`render_prometheus`, :func:`merge_snapshots`):
  ``GET /metrics`` on ``repro serve`` in Prometheus text format 0.0.4,
  cluster-aggregated across worker processes, plus the ``/metrics.json``
  snapshot feed that also lands in the MAPE-K ``Knowledge`` store;
* **dashboard** (``repro top``): a stdlib ANSI live view over the
  snapshot feed.

:mod:`repro.obs.quantiles` is also the library's single percentile
implementation — the per-subscription collector, the cluster merge
layer, and the serving stats all call it.
"""

from .exposition import (
    find_series,
    histogram_quantile,
    merge_snapshots,
    render_prometheus,
    snapshot_value,
)
from .quantiles import (
    STANDARD_FRACTIONS,
    nearest_rank,
    nearest_ranks,
    weighted_nearest_rank,
    weighted_nearest_ranks,
)
from .registry import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopInstrument,
    get_registry,
    log_linear_buckets,
    set_registry,
)
from .top import render_dashboard, run_top
from .tracing import (
    SPAN_CAPACITY,
    STAGES,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span_payload,
    spans_from_payload,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NoopInstrument",
    "SIZE_BUCKETS",
    "SPAN_CAPACITY",
    "STAGES",
    "STANDARD_FRACTIONS",
    "Span",
    "Tracer",
    "find_series",
    "get_registry",
    "get_tracer",
    "histogram_quantile",
    "log_linear_buckets",
    "merge_snapshots",
    "nearest_rank",
    "nearest_ranks",
    "render_dashboard",
    "render_prometheus",
    "run_top",
    "set_registry",
    "set_tracer",
    "snapshot_value",
    "span_payload",
    "spans_from_payload",
    "to_chrome_trace",
    "weighted_nearest_rank",
    "weighted_nearest_ranks",
    "write_chrome_trace",
]
