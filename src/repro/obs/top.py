"""``repro top``: a live terminal dashboard over the metrics snapshot feed.

The serving layer exposes its merged registry snapshot as JSON at
``/metrics.json``; this module polls that endpoint and renders a
compact ANSI dashboard — cluster-wide rates (events/s, slides/s,
deliveries/s), delivery latency quantiles from the merged histogram, and
a per-shard table (events, candidates, ring occupancy, shed and
backpressure counters).  Everything is stdlib: ``urllib`` to poll, ANSI
escapes to repaint.

The rendering itself is a pure function of two snapshots
(:func:`render_dashboard`), which is what the tests drive — the polling
loop is a thin shell around it.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from typing import Dict, List, Optional, Sequence, TextIO

from .exposition import find_series, histogram_quantile, snapshot_value

__all__ = ["render_dashboard", "run_top", "fetch_snapshot"]

CLEAR = "\x1b[H\x1b[2J"
BOLD = "\x1b[1m"
DIM = "\x1b[2m"
RESET = "\x1b[0m"


def _rate(
    current: Dict[str, object],
    previous: Optional[Dict[str, object]],
    name: str,
    labels: Optional[Dict[str, str]] = None,
) -> float:
    """Per-second increase of a counter family between two snapshots."""
    if previous is None:
        return 0.0
    dt = float(current.get("ts", 0.0)) - float(previous.get("ts", 0.0))
    if dt <= 0:
        return 0.0
    delta = snapshot_value(current.get("metrics", ()), name, labels) - snapshot_value(
        previous.get("metrics", ()), name, labels
    )
    return max(0.0, delta) / dt


def _fmt_count(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def _merged_histogram(
    metrics: Sequence[Dict[str, object]], name: str
) -> Optional[Dict[str, object]]:
    """All series of one histogram family folded into a single record."""
    merged: Optional[Dict[str, object]] = None
    for record in find_series(metrics, name):
        if record["type"] != "histogram":
            continue
        if merged is None:
            merged = {
                "buckets": list(record["buckets"]),
                "boundaries": list(record["boundaries"]),
            }
        elif merged["boundaries"] == list(record["boundaries"]):
            merged["buckets"] = [
                a + b for a, b in zip(merged["buckets"], record["buckets"])
            ]
    return merged


def _shard_ids(metrics: Sequence[Dict[str, object]]) -> List[str]:
    shards = set()
    for record in metrics:
        shard = (record.get("labels") or {}).get("shard")
        if shard is not None:
            shards.add(str(shard))
    return sorted(shards, key=lambda s: (len(s), s))


def _cluster_ids(metrics: Sequence[Dict[str, object]]) -> List[Dict[str, str]]:
    """The ``{cluster, inner}`` label sets of every preference cluster."""
    seen: Dict[tuple, Dict[str, str]] = {}
    for record in metrics:
        labels = record.get("labels") or {}
        cluster = labels.get("cluster")
        if cluster is None:
            continue
        key = (str(cluster), str(labels.get("inner", "?")))
        seen.setdefault(key, {"cluster": key[0], "inner": key[1]})
    return [seen[key] for key in sorted(seen, key=lambda k: (len(k[0]), k))]


def render_dashboard(
    current: Dict[str, object],
    previous: Optional[Dict[str, object]] = None,
    color: bool = True,
) -> str:
    """Render one dashboard frame from a ``/metrics.json`` document.

    ``current`` / ``previous`` are the endpoint's JSON dicts
    (``{"ts": epoch_seconds, "metrics": [snapshot records]}``); rates
    need both, everything else reads ``current`` alone.
    """
    bold, dim, reset = (BOLD, DIM, RESET) if color else ("", "", "")
    metrics = current.get("metrics", ())
    lines: List[str] = []
    stamp = time.strftime("%H:%M:%S", time.localtime(float(current.get("ts", 0.0))))
    lines.append(f"{bold}repro top{reset}  {dim}{stamp}{reset}")

    events_rate = _rate(current, previous, "repro_events_ingested_total")
    slides_rate = _rate(current, previous, "repro_slides_total")
    deliver_rate = _rate(current, previous, "repro_results_delivered_total")
    lines.append(
        f"  events/s {bold}{_fmt_count(events_rate)}{reset}"
        f"   slides/s {bold}{_fmt_count(slides_rate)}{reset}"
        f"   deliveries/s {bold}{_fmt_count(deliver_rate)}{reset}"
    )

    latency = _merged_histogram(metrics, "repro_deliver_latency_seconds")
    if latency is not None:
        p50 = histogram_quantile(latency, 0.5)
        p95 = histogram_quantile(latency, 0.95)
        p99 = histogram_quantile(latency, 0.99)
        lines.append(
            f"  latency p50 {bold}{_fmt_seconds(p50)}{reset}"
            f"   p95 {bold}{_fmt_seconds(p95)}{reset}"
            f"   p99 {bold}{_fmt_seconds(p99)}{reset}"
        )

    shed = snapshot_value(metrics, "repro_shed_objects_total")
    backpressure = snapshot_value(metrics, "repro_backpressure_waits_total")
    dropped = snapshot_value(metrics, "repro_results_dropped_total")
    lines.append(
        f"  shed {_fmt_count(shed)}   backpressure {_fmt_count(backpressure)}"
        f"   dropped {_fmt_count(dropped)}"
    )

    shards = _shard_ids(metrics)
    if shards:
        lines.append("")
        lines.append(
            f"  {dim}{'shard':>6} {'events':>10} {'slides':>8} "
            f"{'cands':>8} {'ring':>6} {'shed':>6} {'bp':>6}{reset}"
        )
        for shard in shards:
            sel = {"shard": shard}
            events = snapshot_value(metrics, "repro_events_ingested_total", sel)
            slides = snapshot_value(metrics, "repro_slides_total", sel)
            cands = snapshot_value(metrics, "repro_candidates_last", sel)
            ring = snapshot_value(metrics, "repro_ring_occupancy", sel)
            shard_shed = snapshot_value(metrics, "repro_shed_objects_total", sel)
            shard_bp = snapshot_value(metrics, "repro_backpressure_waits_total", sel)
            lines.append(
                f"  {shard:>6} {_fmt_count(events):>10} {_fmt_count(slides):>8} "
                f"{_fmt_count(cands):>8} {_fmt_count(ring):>6} "
                f"{_fmt_count(shard_shed):>6} {_fmt_count(shard_bp):>6}"
            )

    clusters = _cluster_ids(metrics)
    if clusters:
        lines.append("")
        lines.append(
            f"  {dim}{'cluster':>8} {'inner':>8} {'members':>8} {'rerank/s':>9} "
            f"{'fallbk/s':>9} {'hit%':>6} {'drift':>6}{reset}"
        )
        for sel in clusters:
            members = snapshot_value(metrics, "repro_cluster_members", sel)
            reranks = _rate(current, previous, "repro_cluster_rerank_total", sel)
            fallbacks = _rate(current, previous, "repro_cluster_fallback_total", sel)
            # Lifetime hit rate: shared answers over all answers (the
            # MAPE-K signal — a falling hit rate says the cluster's
            # envelope is too loose for its members).
            total_rerank = snapshot_value(metrics, "repro_cluster_rerank_total", sel)
            total_fallback = snapshot_value(metrics, "repro_cluster_fallback_total", sel)
            answered = total_rerank + total_fallback
            hit = f"{100.0 * total_rerank / answered:.1f}" if answered else "-"
            drift = snapshot_value(metrics, "repro_cluster_drift_total", sel)
            lines.append(
                f"  {sel['cluster']:>8} {sel['inner']:>8} {_fmt_count(members):>8} "
                f"{_fmt_count(reranks):>9} {_fmt_count(fallbacks):>9} "
                f"{hit:>6} {_fmt_count(drift):>6}"
            )

    stage = _merged_histogram(metrics, "repro_stage_seconds")
    if stage is None:
        per_stage = []
    else:
        per_stage = [
            (rec["labels"].get("stage", "?"), rec)
            for rec in find_series(metrics, "repro_stage_seconds")
            if rec["type"] == "histogram" and sum(rec["buckets"])
        ]
    if per_stage:
        lines.append("")
        lines.append(f"  {dim}{'stage':>14} {'count':>8} {'p50':>10} {'p99':>10}{reset}")
        folded: Dict[str, Dict[str, object]] = {}
        for stage_name, rec in per_stage:
            slot = folded.get(stage_name)
            if slot is None:
                folded[stage_name] = {
                    "buckets": list(rec["buckets"]),
                    "boundaries": list(rec["boundaries"]),
                }
            elif slot["boundaries"] == list(rec["boundaries"]):
                slot["buckets"] = [
                    a + b for a, b in zip(slot["buckets"], rec["buckets"])
                ]
        for stage_name in sorted(folded):
            rec = folded[stage_name]
            count = sum(rec["buckets"])
            lines.append(
                f"  {stage_name:>14} {_fmt_count(count):>8} "
                f"{_fmt_seconds(histogram_quantile(rec, 0.5)):>10} "
                f"{_fmt_seconds(histogram_quantile(rec, 0.99)):>10}"
            )

    return "\n".join(lines) + "\n"


def fetch_snapshot(url: str, timeout: float = 5.0) -> Dict[str, object]:
    """GET one ``/metrics.json`` document."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_top(
    url: str,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
    color: Optional[bool] = None,
) -> int:
    """Poll ``url`` and repaint the dashboard until interrupted.

    ``iterations`` bounds the number of frames (None = run forever);
    returns the number of frames drawn.
    """
    out = stream if stream is not None else sys.stdout
    if color is None:
        color = hasattr(out, "isatty") and out.isatty()
    previous: Optional[Dict[str, object]] = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            current = fetch_snapshot(url)
            frame = render_dashboard(current, previous, color=color)
            if color:
                out.write(CLEAR)
            out.write(frame)
            out.flush()
            previous = current
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames
