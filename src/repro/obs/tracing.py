"""Pipeline tracing: spans over the slide lifecycle, across processes.

A **span** is one timed stage of one unit of stream data: the facade
batches a chunk (``ingest-batch``), the router packs it (``encode``) and
moves it to a shard (``send``), the worker unpacks it (``decode``) and
pushes it through its engine (``push``), the SAP framework seals
partitions (``seal``), and each subscription delivers an answer
(``deliver``).  Spans carry a correlation id — the router's per-shard
chunk sequence number for transport stages, the slide index for
engine-side stages — so a trace stitched from several processes still
reads as one pipeline.

Workers buffer their spans in a bounded ring and ship them back over the
existing control/fence channel (the ``spans`` opcode); the facade merges
them with its own and :func:`to_chrome_trace` renders the whole thing as
Chrome trace-event JSON (load it at ``chrome://tracing`` or in Perfetto).

Tracing is **off by default** and costs one attribute check per
potential span while off.  Span timestamps use the epoch clock
(``time.time``) rather than ``perf_counter`` because perf_counter's
origin is per-process — epoch time is what makes spans from different
processes line up on one timeline.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "to_chrome_trace",
    "STAGES",
    "SPAN_CAPACITY",
]

#: The slide-lifecycle stages, in pipeline order.  Stage names are the
#: vocabulary shared by spans, the ``stage`` instrument label, and the
#: README's lifecycle diagram.
STAGES = (
    "ingest-batch",
    "encode",
    "send",
    "decode",
    "push",
    "seal",
    "merge",
    "deliver",
)

#: Bounded span buffer per tracer: long traces keep the most recent spans.
SPAN_CAPACITY = 65_536


class Span(NamedTuple):
    """One timed pipeline stage (a Chrome trace "complete" event)."""

    stage: str
    #: Correlation id: chunk sequence number for transport stages, slide
    #: index for engine-side stages (stitching key across processes).
    slide: int
    #: Epoch start time in seconds (cross-process comparable).
    start: float
    #: Duration in seconds.
    duration: float
    #: Origin: -1 for the facade/router process, the shard id in workers.
    shard: int
    #: Free-form annotation (subscription name, byte count, ...).
    detail: str = ""


class Tracer:
    """A bounded per-process span buffer behind one ``enabled`` flag.

    Hot paths guard on ``tracer.enabled`` (one attribute read) before
    computing anything span-related; ``record`` is only reached while
    tracing is on.
    """

    def __init__(self, capacity: int = SPAN_CAPACITY, shard: int = -1) -> None:
        self.enabled = False
        self.shard = shard
        self._spans: Deque[Span] = deque(maxlen=capacity)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(
        self,
        stage: str,
        slide: int,
        start: float,
        duration: float,
        detail: str = "",
    ) -> None:
        """Append one finished span (caller timed it; no clocks here)."""
        self._spans.append(Span(stage, slide, start, duration, self.shard, detail))

    def span(self, stage: str, slide: int, detail: str = "") -> "_OpenSpan":
        """Context manager timing a block as one span."""
        return _OpenSpan(self, stage, slide, detail)

    def drain(self) -> List[Span]:
        """Remove and return the buffered spans, oldest first."""
        spans = list(self._spans)
        self._spans.clear()
        return spans

    def __len__(self) -> int:
        return len(self._spans)


class _OpenSpan:
    __slots__ = ("_tracer", "_stage", "_slide", "_detail", "_start")

    def __init__(self, tracer: Tracer, stage: str, slide: int, detail: str) -> None:
        self._tracer = tracer
        self._stage = stage
        self._slide = slide
        self._detail = detail

    def __enter__(self) -> "_OpenSpan":
        self._start = time.time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.record(
            self._stage, self._slide, self._start, time.time() - self._start, self._detail
        )


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def span_payload(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """Spans as plain dicts (the picklable wire form of the ``spans``
    opcode and the JSON form of the trace file's raw section)."""
    return [span._asdict() for span in spans]


def spans_from_payload(payload: Sequence[Dict[str, object]]) -> List[Span]:
    return [Span(**record) for record in payload]


def to_chrome_trace(spans: Sequence[Span]) -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON document.

    One "complete" (``ph: X``) event per span: ``pid`` is the shard
    (-1 = the facade/router), ``tid`` is the pipeline stage (kept in
    pipeline order via metadata events), timestamps are microseconds
    rebased to the earliest span so the trace starts near zero.  The
    correlation id rides in ``args.slide``, which is what lets a viewer
    follow one slide across processes.
    """
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(span.start for span in spans)
    events: List[Dict[str, object]] = []
    seen_processes = set()
    for span in spans:
        if span.shard not in seen_processes:
            seen_processes.add(span.shard)
            name = "facade/router" if span.shard < 0 else f"shard {span.shard}"
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": span.shard,
                    "args": {"name": name},
                }
            )
            for order, stage in enumerate(STAGES):
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": span.shard,
                        "tid": order,
                        "args": {"name": stage},
                    }
                )
        tid = STAGES.index(span.stage) if span.stage in STAGES else len(STAGES)
        events.append(
            {
                "ph": "X",
                "name": f"{span.stage} #{span.slide}",
                "cat": span.stage,
                "pid": span.shard,
                "tid": tid,
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "args": {"slide": span.slide, "detail": span.detail},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str) -> Dict[str, object]:
    """Write the Chrome trace JSON for ``spans`` to ``path``; returns it."""
    document = to_chrome_trace(spans)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


# ----------------------------------------------------------------------
# The process default tracer
# ----------------------------------------------------------------------
_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer every built-in layer records into."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous
