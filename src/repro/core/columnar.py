"""Columnar slide representation: the zero-copy data plane.

Every :class:`~repro.core.object.StreamObject` is a Python dataclass, and
the per-object cost of walking, pickling, and sorting those dataclasses is
what caps the runtime well below the paper's ``costF``-per-object model.
This module packs a slide's ``(score, t, timestamp)`` columns into
contiguous buffers so the hot paths can operate on whole columns at once:

* :class:`SlideBlock` — one batch of stream objects in column form, with
  an exact round-trip to/from ``StreamObject`` sequences.  Scores are
  ``float64`` (NaN/inf bit patterns preserved), arrival orders ``int64``,
  timestamps an optional ``int64`` column plus a presence mask (so
  ``timestamp=None`` survives the round trip).  Payloads are carried
  *out of band* — a plain Python list riding alongside the columns — and
  only when at least one object actually has one.
* a wire format (:meth:`SlideBlock.to_bytes` / :func:`encode_chunk` /
  :func:`decode_chunk`) used by the cluster transports: the columns are
  written as raw little-endian buffers (a memcpy, not a per-object pickle
  walk), with an automatic whole-chunk pickle fallback for objects the
  columns cannot represent (arrival orders beyond int64, exotic score
  types).
* vectorized ordering helpers (:func:`rank_descending`,
  :func:`topk_objects`) implementing the library-wide total order
  ``(score, t)`` over columns via ``numpy.lexsort`` — used by partition
  sealing and the shared plans instead of per-object Python sorts.

numpy is optional: when it is unavailable (or explicitly disabled) every
entry point falls back to the stdlib ``array`` module and plain Python
sorts, producing bit-identical results.  The backend only changes speed,
never answers — the property tests assert the round trip under both.
"""

from __future__ import annotations

import pickle
import struct
from typing import Iterator, List, Optional, Sequence, Tuple

from .object import StreamObject, top_k

try:  # pragma: no cover - exercised via both-backend parametrized tests
    import numpy as _np
except ImportError:  # pragma: no cover - the stdlib fallback path
    _np = None

#: Backend names accepted by :meth:`SlideBlock.from_objects`.
BACKENDS = ("numpy", "stdlib")

#: The default backend: numpy when importable, stdlib otherwise.
DEFAULT_BACKEND = "numpy" if _np is not None else "stdlib"

#: int64 bounds; arrival orders outside them cannot be packed as columns.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# Wire format -----------------------------------------------------------
#: Header: magic, version, format, flags, count.
_HEADER = struct.Struct("<HBBBxxxQ")
_MAGIC = 0x5B1C
_WIRE_VERSION = 1
#: ``format`` byte: columnar payload vs whole-chunk pickle fallback.
FORMAT_COLUMNAR = 1
FORMAT_PICKLED = 2
#: ``flags`` bits of a columnar payload.
_FLAG_TIMESTAMPS = 1
_FLAG_PAYLOADS = 2


class BlockPackError(ValueError):
    """The objects cannot be represented as columns (use the fallback)."""


def _as_float_scores(objects: Sequence[StreamObject]) -> List[float]:
    scores: List[float] = []
    for obj in objects:
        score = obj.score
        if type(score) is not float:
            # Accept exact ints etc. only when float() preserves the value
            # and the ordering semantics; anything lossy must take the
            # pickle fallback instead of silently changing rank keys.
            try:
                as_float = float(score)
            except (TypeError, ValueError, OverflowError) as exc:
                raise BlockPackError(f"score {score!r} is not packable") from exc
            if as_float != score:
                raise BlockPackError(f"score {score!r} does not survive float64")
            score = as_float
        scores.append(score)
    return scores


class SlideBlock:
    """One batch of stream objects in columnar form.

    The columns are ``scores`` (float64) and ``ts`` (int64), plus an
    optional ``timestamps`` column with a byte ``timestamp_mask`` (1 where
    the object carried an explicit timestamp) and an optional out-of-band
    ``payloads`` list.  Instances are immutable by convention: the engine
    shares them freely between plans and members.
    """

    __slots__ = ("backend", "count", "scores", "ts", "timestamps", "timestamp_mask", "payloads")

    def __init__(self, backend, count, scores, ts, timestamps, timestamp_mask, payloads) -> None:
        self.backend = backend
        self.count = count
        self.scores = scores
        self.ts = ts
        self.timestamps = timestamps
        self.timestamp_mask = timestamp_mask
        self.payloads = payloads

    # ------------------------------------------------------------------
    @classmethod
    def from_objects(
        cls, objects: Sequence[StreamObject], backend: Optional[str] = None
    ) -> "SlideBlock":
        """Pack objects into columns (raises :class:`BlockPackError` when
        a score or arrival order cannot be represented)."""
        if backend is None:
            backend = DEFAULT_BACKEND
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if backend == "numpy" and _np is None:
            raise ValueError("the numpy backend is unavailable (numpy not importable)")
        count = len(objects)
        scores = _as_float_scores(objects)
        ts: List[int] = []
        for obj in objects:
            t = obj.t
            if type(t) is not int:
                if isinstance(t, bool) or not isinstance(t, int):
                    raise BlockPackError(f"arrival order {t!r} is not an int")
            if not _INT64_MIN <= t <= _INT64_MAX:
                raise BlockPackError(f"arrival order {t!r} overflows int64")
            ts.append(t)
        timestamps: Optional[List[int]] = None
        mask: Optional[bytearray] = None
        for index, obj in enumerate(objects):
            stamp = obj.timestamp
            if stamp is None:
                continue
            if not isinstance(stamp, int) or isinstance(stamp, bool):
                raise BlockPackError(f"timestamp {stamp!r} is not an int")
            if not _INT64_MIN <= stamp <= _INT64_MAX:
                raise BlockPackError(f"timestamp {stamp!r} overflows int64")
            if timestamps is None:
                timestamps = [0] * count
                mask = bytearray(count)
            timestamps[index] = stamp
            mask[index] = 1
        payloads: Optional[List[object]] = None
        for index, obj in enumerate(objects):
            if obj.payload is not None:
                if payloads is None:
                    payloads = [None] * count
                payloads[index] = obj.payload
        if backend == "numpy":
            score_col = _np.array(scores, dtype=_np.float64)
            t_col = _np.array(ts, dtype=_np.int64)
            stamp_col = None if timestamps is None else _np.array(timestamps, dtype=_np.int64)
        else:
            import array

            score_col = array.array("d", scores)
            t_col = array.array("q", ts)
            stamp_col = None if timestamps is None else array.array("q", timestamps)
        return cls(
            backend=backend,
            count=count,
            scores=score_col,
            ts=t_col,
            timestamps=stamp_col,
            timestamp_mask=bytes(mask) if mask is not None else None,
            payloads=payloads,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def slice(self, start: int, stop: int) -> "SlideBlock":
        """A sub-block over ``[start, stop)`` — column views, no copies
        (numpy slices share the parent's buffers)."""
        if not 0 <= start <= stop <= self.count:
            raise IndexError(f"slice [{start}:{stop}) outside block of {self.count}")
        return SlideBlock(
            backend=self.backend,
            count=stop - start,
            scores=self.scores[start:stop],
            ts=self.ts[start:stop],
            timestamps=self.timestamps[start:stop] if self.timestamps is not None else None,
            timestamp_mask=(
                self.timestamp_mask[start:stop] if self.timestamp_mask is not None else None
            ),
            payloads=self.payloads[start:stop] if self.payloads is not None else None,
        )

    def to_objects(self) -> List[StreamObject]:
        """Materialise the exact ``StreamObject`` sequence of this block."""
        scores = self.scores.tolist()
        ts = self.ts.tolist()
        stamps = self.timestamps.tolist() if self.timestamps is not None else None
        mask = self.timestamp_mask
        payloads = self.payloads
        objects: List[StreamObject] = []
        for index in range(self.count):
            objects.append(
                StreamObject(
                    score=scores[index],
                    t=ts[index],
                    payload=payloads[index] if payloads is not None else None,
                    timestamp=stamps[index] if stamps is not None and mask[index] else None,
                )
            )
        return objects

    def iter_objects(self) -> Iterator[StreamObject]:
        return iter(self.to_objects())

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize: header + raw little-endian column buffers (+ pickled
        payload list when present).  Near-memcpy for payload-free blocks."""
        flags = 0
        parts: List[bytes] = []
        if self.backend == "numpy":
            score_bytes = _np.ascontiguousarray(self.scores, dtype="<f8").tobytes()
            t_bytes = _np.ascontiguousarray(self.ts, dtype="<i8").tobytes()
            stamp_bytes = (
                _np.ascontiguousarray(self.timestamps, dtype="<i8").tobytes()
                if self.timestamps is not None
                else None
            )
        else:
            score_bytes = struct.pack(f"<{self.count}d", *self.scores)
            t_bytes = struct.pack(f"<{self.count}q", *self.ts)
            stamp_bytes = (
                struct.pack(f"<{self.count}q", *self.timestamps)
                if self.timestamps is not None
                else None
            )
        parts.append(score_bytes)
        parts.append(t_bytes)
        if stamp_bytes is not None:
            flags |= _FLAG_TIMESTAMPS
            parts.append(self.timestamp_mask)
            parts.append(stamp_bytes)
        if self.payloads is not None:
            flags |= _FLAG_PAYLOADS
            parts.append(pickle.dumps(self.payloads, protocol=pickle.HIGHEST_PROTOCOL))
        header = _HEADER.pack(_MAGIC, _WIRE_VERSION, FORMAT_COLUMNAR, flags, self.count)
        return header + b"".join(parts)

    @classmethod
    def from_bytes(cls, data, backend: Optional[str] = None) -> "SlideBlock":
        """Decode a block written by :meth:`to_bytes`."""
        if backend is None:
            backend = DEFAULT_BACKEND
        magic, version, wire_format, flags, count = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise ValueError(f"not a SlideBlock payload (magic {magic:#x})")
        if version != _WIRE_VERSION:
            raise ValueError(f"unsupported SlideBlock wire version {version}")
        if wire_format != FORMAT_COLUMNAR:
            raise ValueError(f"payload is not columnar (format {wire_format})")
        offset = _HEADER.size
        view = memoryview(data)
        col = 8 * count

        def take(length: int) -> memoryview:
            nonlocal offset
            piece = view[offset : offset + length]
            offset += length
            return piece

        if backend == "numpy" and _np is not None:
            scores = _np.frombuffer(take(col), dtype="<f8")
            ts = _np.frombuffer(take(col), dtype="<i8")
            if flags & _FLAG_TIMESTAMPS:
                mask = bytes(take(count))
                timestamps = _np.frombuffer(take(col), dtype="<i8")
            else:
                mask = None
                timestamps = None
        else:
            import array

            scores = array.array("d")
            scores.frombytes(take(col))
            ts = array.array("q")
            ts.frombytes(take(col))
            if flags & _FLAG_TIMESTAMPS:
                mask = bytes(take(count))
                timestamps = array.array("q")
                timestamps.frombytes(take(col))
            else:
                mask = None
                timestamps = None
        payloads = pickle.loads(view[offset:]) if flags & _FLAG_PAYLOADS else None
        return cls(
            backend=backend if not (backend == "numpy" and _np is None) else "stdlib",
            count=count,
            scores=scores,
            ts=ts,
            timestamps=timestamps,
            timestamp_mask=mask,
            payloads=payloads,
        )


# ----------------------------------------------------------------------
# Chunk codec (the cluster transports' unit of transfer)
# ----------------------------------------------------------------------
def encode_chunk(objects: Sequence[StreamObject], backend: Optional[str] = None) -> bytes:
    """Encode a chunk of stream objects for transport.

    Columnar when possible; otherwise (exotic scores, arrival orders past
    int64) the whole chunk is pickled behind the same header, so every
    consumer handles every chunk through one entry point.
    """
    try:
        return SlideBlock.from_objects(objects, backend=backend).to_bytes()
    except BlockPackError:
        header = _HEADER.pack(_MAGIC, _WIRE_VERSION, FORMAT_PICKLED, 0, len(objects))
        return header + pickle.dumps(list(objects), protocol=pickle.HIGHEST_PROTOCOL)


def decode_chunk(
    data, backend: Optional[str] = None, materialize: bool = True
) -> Tuple[List[StreamObject], Optional[SlideBlock]]:
    """Decode a chunk written by :func:`encode_chunk`.

    Returns ``(objects, block)``; ``block`` is ``None`` for the pickle
    fallback format (the objects then carry everything).  Consumers that
    feed columnar chunks onward in block form pass ``materialize=False``
    to skip building the object list (``objects`` is then empty whenever
    ``block`` is not ``None``) — materialising here *and* in the block
    consumer would double the per-object cost of the hot path.
    """
    magic, version, wire_format, _flags, _count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError(f"not a chunk payload (magic {magic:#x})")
    if version != _WIRE_VERSION:
        raise ValueError(f"unsupported chunk wire version {version}")
    if wire_format == FORMAT_PICKLED:
        return pickle.loads(memoryview(data)[_HEADER.size :]), None
    block = SlideBlock.from_bytes(data, backend=backend)
    return (block.to_objects() if materialize else []), block


# ----------------------------------------------------------------------
# Vectorized ordering (the library-wide total order over columns)
# ----------------------------------------------------------------------
def _columns_of(
    objects: Sequence[StreamObject],
) -> Optional[Tuple["object", "object"]]:
    """Extract (scores, ts) as numpy columns, or ``None`` when the
    vectorized order would not match the Python tuple order (no numpy,
    NaN scores, ints beyond int64)."""
    if _np is None:
        return None
    try:
        scores = _np.array([obj.score for obj in objects], dtype=_np.float64)
        ts = _np.array([obj.t for obj in objects], dtype=_np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    if _np.isnan(scores).any():
        # Python tuple comparison and numpy lexsort disagree on NaN.
        return None
    return scores, ts


def rank_descending(scores, ts) -> "object":
    """Indices ordering the columns best-first under ``(score, t)``.

    Requires numpy columns with no NaN scores; callers go through
    :func:`topk_objects`, which performs that check.
    """
    return _np.lexsort((ts, scores))[::-1]


def topk_objects(objects: Sequence[StreamObject], k: int) -> List[StreamObject]:
    """The ``k`` best objects, best first — vectorized :func:`~repro.core.object.top_k`.

    Bit-identical to the per-object sort: ``numpy.lexsort`` over the
    ``(score, t)`` columns realises the same total order (NaN scores and
    non-int64 arrival orders fall back to the object sort).
    """
    if k <= 0:
        return []
    size = len(objects)
    if size == 0:
        return []
    if size <= 16 or _np is None:
        # Tiny inputs: column extraction costs more than the sort saves.
        return top_k(objects, k)
    columns = _columns_of(objects)
    if columns is None:
        return top_k(objects, k)
    scores, ts = columns
    if k >= size:
        order = rank_descending(scores, ts)
        return [objects[i] for i in order.tolist()]
    order = rank_descending(scores, ts)[:k]
    return [objects[i] for i in order.tolist()]
