"""Metric collection for the paper's three performance measures.

The evaluation section of the paper reports, for every algorithm:

* total running time over the whole stream,
* the average size of the candidate set, sampled every time the window
  slides (Appendix E),
* the memory consumed by the algorithm's own structures (Appendix F).

:class:`MetricsCollector` samples the latter two after every slide and keeps
simple aggregates so that benchmarks never retain per-slide lists for very
long streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..obs.quantiles import nearest_rank, nearest_ranks


def bytes_to_kb(value: float) -> float:
    """Convert a byte count to kilobytes (the unit used by the paper)."""
    return value / 1024.0


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty list (fraction in [0, 1]).

    Alias for :func:`repro.obs.quantiles.nearest_rank`, the library's one
    percentile implementation.
    """
    return nearest_rank(values, fraction)


#: Cap on retained per-slide latency samples.  Once reached, the sample is
#: decimated (every other value dropped, stride doubled), so the collector
#: stays O(1) in stream length while the percentile estimates remain
#: representative.  Totals and maxima are exact regardless.
LATENCY_SAMPLE_CAP = 8192


@dataclass
class MetricsCollector:
    """Streaming aggregates of candidate counts, memory usage, and latency.

    The paper reports total running time; a production consumer also cares
    about the per-slide latency distribution (a window slide must be
    answered before the next one arrives), so the collector optionally
    retains a bounded sample of per-slide latencies and exposes p50/p95,
    plus exact running totals and maxima.
    """

    slides: int = 0
    candidate_total: float = 0.0
    candidate_max: int = 0
    memory_total: float = 0.0
    memory_max: int = 0
    latency_total: float = 0.0
    latency_max: float = 0.0
    latencies: List[float] = field(default_factory=list, repr=False)
    #: Values of the most recent slide, read by the control plane's monitor
    #: so telemetry never recomputes what the collector already sampled.
    last_candidates: int = 0
    last_memory_bytes: int = 0
    last_latency: float = 0.0
    _latency_seen: int = field(default=0, repr=False)
    _latency_stride: int = field(default=1, repr=False)

    def record(
        self,
        candidate_count: int,
        memory_bytes: int,
        latency_seconds: Optional[float] = None,
    ) -> None:
        self.slides += 1
        self.candidate_total += candidate_count
        self.candidate_max = max(self.candidate_max, candidate_count)
        self.memory_total += memory_bytes
        self.memory_max = max(self.memory_max, memory_bytes)
        self.last_candidates = candidate_count
        self.last_memory_bytes = memory_bytes
        if latency_seconds is not None:
            self.last_latency = latency_seconds
            self.latency_total += latency_seconds
            self.latency_max = max(self.latency_max, latency_seconds)
            self._latency_seen += 1
            if self._latency_seen % self._latency_stride == 0:
                self.latencies.append(latency_seconds)
                if len(self.latencies) >= LATENCY_SAMPLE_CAP:
                    self.latencies = self.latencies[::2]
                    self._latency_stride *= 2

    @property
    def average_candidates(self) -> float:
        return self.candidate_total / self.slides if self.slides else 0.0

    @property
    def average_memory_bytes(self) -> float:
        return self.memory_total / self.slides if self.slides else 0.0

    @property
    def average_memory_kb(self) -> float:
        return bytes_to_kb(self.average_memory_bytes)

    # ------------------------------------------------------------------
    # Per-slide latency distribution
    # ------------------------------------------------------------------
    def latency_percentile(self, fraction: float) -> float:
        """Any percentile of the retained latency sample (0.0 when empty)."""
        return percentile(self.latencies, fraction) if self.latencies else 0.0

    def latency_percentiles(self, fractions) -> List[float]:
        """Several percentiles from one sort of the retained sample."""
        if not self.latencies:
            return [0.0] * len(fractions)
        return nearest_ranks(self.latencies, fractions)

    @property
    def median_latency(self) -> float:
        return self.latency_percentile(0.5)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(0.95)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(0.99)

    @property
    def max_latency(self) -> float:
        return self.latency_max
