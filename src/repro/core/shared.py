"""Shared-slide artifacts exchanged between a query group and its members.

The per-partition state the SAP framework maintains (partition boundaries,
local top-k ``P_i^k``, unit summaries) and the candidate structures of the
one-pass baselines depend only on the window shape ``(n, s)`` and on the
*largest* ``k`` among the queries watching that shape — never on each
individual ``k``.  The engine's :class:`repro.engine.group.QueryGroup`
therefore performs that work exactly once per slide, at ``k_max``, and fans
the result out to every member query, which slices its own answer out of
the shared artifact (``top_k(X, k) == top_k(X, k_max)[:k]`` for any
``k <= k_max`` under the library-wide total order).

This module defines the data carried across that boundary:

* :class:`SharedPartition` — one partition sealed by the group's shared
  sealer, with its object run, optional unit summaries, and local top-k
  computed at ``k_max``;
* :class:`SharedSlide` — one window movement enriched with everything the
  group precomputed for it;
* :class:`SharedPlan` — base class of the per-algorithm sharing plans
  (``SAPSharedPlan``, ``KSkybandSharedPlan``, ``MinTopKSharedPlan``).

Algorithms that cannot share anything simply ignore the extras: the default
:meth:`ContinuousTopKAlgorithm.process_shared_slide` falls back to the raw
:class:`~repro.core.window.SlideEvent` inside the shared slide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .exceptions import AlgorithmStateError
from .object import StreamObject
from .partition import UnitSummary
from .result import TopKResult
from .window import SlideEvent


@dataclass(frozen=True)
class SharedPartition:
    """One partition sealed once by a query group's shared sealer.

    Attributes
    ----------
    objects:
        The partition's object run, oldest first.  The list is shared by
        every member of the plan and must never be mutated.
    units:
        Unit summaries produced by the sealing partitioner (enhanced
        dynamic only).  They were computed at ``k``, so members with a
        smaller result size must not reuse them for UBSA construction.
    topk:
        The partition's local top-``k`` (best first), computed once at the
        plan's ``k_max``.  A member with result size ``k' <= k`` obtains
        its own local top-k as ``topk[:k']``.
    k:
        The result size the shared artifacts were computed at (``k_max``).
    """

    objects: List[StreamObject]
    units: Optional[List[UnitSummary]]
    topk: List[StreamObject]
    k: int

    def topk_for(self, k: int) -> List[StreamObject]:
        """Local top-``k`` of the partition for any ``k <= self.k``."""
        if k > self.k:
            raise ValueError(
                f"shared partition was built at k={self.k}, cannot serve k={k}"
            )
        return self.topk[:k]

    def __len__(self) -> int:
        return len(self.objects)


@dataclass(frozen=True)
class SharedSlide:
    """One window movement plus the artifacts a plan precomputed for it.

    Attributes
    ----------
    event:
        The raw slide event (arrivals / expirations / index).
    pre_seals:
        Partitions force-sealed *before* this slide's expirations are
        applied (the safety valve for windows holding a single partition).
    seals:
        Partitions sealed by this slide's arrivals, in seal order.
    pending_topk:
        Top-``k_max`` of the not-yet-sealed stream suffix, best first.
    window_topk:
        Top-``k_max`` of the whole current window, best first (produced by
        the baseline plans whose shared core *is* the answer).
    prep_share:
        Seconds of shared preparation attributed to each open member (the
        plan's total preparation time divided by the member count), so
        per-query latency metrics still account for the shared work.
    """

    event: SlideEvent
    pre_seals: Tuple[SharedPartition, ...] = ()
    seals: Tuple[SharedPartition, ...] = ()
    pending_topk: Tuple[StreamObject, ...] = ()
    window_topk: Tuple[StreamObject, ...] = ()
    prep_share: float = 0.0


class SharedPlan:
    """Base class of the per-algorithm sharing plans of a query group.

    A plan owns whatever state is computed once per slide for all member
    queries (a sealing partitioner, a k-skyband core, ...) and exposes it
    through :meth:`prepare`, called exactly once per slide event before any
    member processes it.  Members are the engine's subscription handles;
    the plan only relies on their ``closed``, ``name``, ``query``, and
    ``algorithm`` attributes.
    """

    #: Short label used by introspection (``StreamEngine.groups()``).
    kind: str = "shared"

    def __init__(self, subscriptions: Sequence[object]) -> None:
        if not subscriptions:
            raise ValueError("a shared plan needs at least one member")
        self._subs: List[object] = list(subscriptions)
        self.k_max: int = max(sub.query.k for sub in self._subs)

    # ------------------------------------------------------------------
    def subscriptions(self) -> List[object]:
        """The member subscriptions, in registration order."""
        return list(self._subs)

    def discard(self, subscription: object) -> None:
        """Forget an unsubscribed member (remaining members keep sharing)."""
        if subscription in self._subs:
            self._subs.remove(subscription)

    def has_open_members(self) -> bool:
        return any(not sub.closed for sub in self._subs)

    def open_member_count(self) -> int:
        return sum(1 for sub in self._subs if not sub.closed)

    def describe(self) -> Dict[str, object]:
        """Introspection record shown by ``StreamEngine.groups()``."""
        return {
            "kind": self.kind,
            "k_max": self.k_max,
            "members": [sub.name for sub in self._subs],
        }

    # ------------------------------------------------------------------
    def fast_forward(self, slide_index: int) -> None:
        """Align any internal slide clock before a mid-stream rebuild.

        Called by the control plane when a plan is formed over a window
        that is already full (see :meth:`repro.engine.group.QueryGroup.rebuild`).
        The default is a no-op; plans hosting a full algorithm core forward
        the call to it.
        """

    def prepare(self, event: SlideEvent) -> SharedSlide:
        """Do the shared per-slide work once; called before any member."""
        raise NotImplementedError


class CoreSharedPlan(SharedPlan):
    """A plan hosting one full algorithm instance (the *core*) at ``k_max``.

    For one-pass baselines whose candidate state at ``k_max`` subsumes the
    state at every smaller ``k`` (the k-skyband of the window, MinTopK's
    predicted result sets), nothing per-member remains: the plan runs a
    single core and every member slices its answer out of the core's
    top-``k_max`` (``window_topk`` on the shared slide).  Subclasses build
    the core; the per-slide driving, timing attribution, and bookkeeping
    delegation live here.
    """

    def __init__(self, subscriptions: Sequence[object], core: object) -> None:
        super().__init__(subscriptions)
        self._core = core
        for sub in self._subs:
            sub.algorithm.join_shared_plan(self)

    def candidate_count(self) -> int:
        return self._core.candidate_count()

    def memory_bytes(self) -> int:
        return self._core.memory_bytes()

    def fast_forward(self, slide_index: int) -> None:
        self._core.fast_forward(slide_index)

    def prepare(self, event: SlideEvent) -> SharedSlide:
        started = time.perf_counter()
        result = self._core.process_slide(event)
        members = self.open_member_count() or 1
        prep = time.perf_counter() - started
        return SharedSlide(
            event=event,
            window_topk=result.objects,
            prep_share=prep / members,
        )


class SharedCoreMember:
    """Member-side half of :class:`CoreSharedPlan`, mixed into algorithms.

    Mix in *before* ``ContinuousTopKAlgorithm`` so the shared-slide
    overrides take precedence.  The algorithm keeps its independent
    behaviour until :meth:`join_shared_plan` is called; afterwards its
    answers are sliced from the plan core and its bookkeeping reports the
    shared structures (count as-is, memory amortised over the members).
    Subclasses implement the three ``_local_*``/``_sharing_started``
    hooks.
    """

    _shared_plan: Optional[CoreSharedPlan] = None

    # ------------------------------------------------------------------
    def _sharing_started(self) -> bool:
        """Whether the algorithm already processed anything (no late joins)."""
        raise NotImplementedError

    def _local_candidate_count(self) -> int:
        """Candidate count of the algorithm's own (unshared) structures."""
        raise NotImplementedError

    def _local_memory_bytes(self) -> int:
        """Memory estimate of the algorithm's own (unshared) structures."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def join_shared_plan(self, plan: CoreSharedPlan) -> None:
        if self._sharing_started():
            raise AlgorithmStateError(
                "cannot join a shared plan after processing has begun"
            )
        self._shared_plan = plan

    def process_shared_slide(self, shared: SharedSlide) -> TopKResult:
        if self._shared_plan is None:
            return self.process_slide(shared.event)
        return TopKResult.from_objects(
            shared.event.index,
            shared.event.window_end,
            shared.window_topk[: self.query.k],
        )

    def candidate_count(self) -> int:
        # Members of a shared plan hold no candidates of their own; they
        # report the shared core so the paper's bookkeeping stays visible.
        if self._shared_plan is not None:
            return self._shared_plan.candidate_count()
        return self._local_candidate_count()

    def memory_bytes(self) -> int:
        if self._shared_plan is not None:
            # The shared core's structures, amortised over the members.
            return self._shared_plan.memory_bytes() // max(
                1, len(self._shared_plan.subscriptions())
            )
        return self._local_memory_bytes()
