"""Result objects emitted by continuous top-k algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .object import StreamObject


@dataclass(frozen=True)
class TopKResult:
    """The answer reported for one window position.

    Attributes
    ----------
    slide_index:
        Zero-based index of the window position (0 = the first full window).
    window_end:
        Arrival order / timestamp of the most recent object in the window.
    objects:
        The top-k objects, best first, under the library-wide total order.
    """

    slide_index: int
    window_end: int
    objects: Tuple[StreamObject, ...]

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[StreamObject]:
        return iter(self.objects)

    @property
    def scores(self) -> List[float]:
        """Scores of the result objects, best first."""
        return [o.score for o in self.objects]

    @property
    def arrival_orders(self) -> List[int]:
        """Arrival orders of the result objects, best first."""
        return [o.t for o in self.objects]

    def identity(self) -> Tuple[Tuple[float, int], ...]:
        """Hashable identity of the result used to compare algorithms.

        Two algorithms agree on a window when they return the same ordered
        sequence of ``(score, t)`` pairs.
        """
        return tuple(o.rank_key for o in self.objects)

    @staticmethod
    def from_objects(
        slide_index: int, window_end: int, objects: Sequence[StreamObject]
    ) -> "TopKResult":
        """Build a result, normalising the object order to best-first."""
        ordered = tuple(sorted(objects, key=lambda o: o.rank_key, reverse=True))
        return TopKResult(slide_index=slide_index, window_end=window_end, objects=ordered)


def results_agree(left: Sequence[TopKResult], right: Sequence[TopKResult]) -> bool:
    """True when two result streams are identical window by window."""
    if len(left) != len(right):
        return False
    return all(a.identity() == b.identity() for a, b in zip(left, right))
