"""Serializable runtime state: the contract that moves queries between processes.

Every algorithm in the library computes exact answers from the live window
contents alone, which makes its *transportable* state tiny: a fresh
(configuration-only) instance, the window contents, and the slide clock.
Restoring is the same drain-and-replay mechanism the control plane's
:meth:`repro.engine.group.QueryGroup.rebuild` uses for live algorithm
swaps — respawn, :meth:`fast_forward` to the captured slide index, then
replay the window as one synthetic slide event whose answer is discarded
(that window was already reported).  The result stream after a restore is
therefore byte-identical to an uninterrupted run, no matter which process
the state lands in.

:class:`SubscriptionState` is the unit the sharded execution plane
(:mod:`repro.cluster`) moves between shard workers when it rebalances a
query; it additionally carries the retained answers and metric aggregates
so the move is invisible to consumers of the subscription.

All state objects are plain picklable dataclasses stamped with
:data:`STATE_FORMAT_VERSION`.  :func:`dumps` / :func:`loads` are the
byte-level entry points; :func:`loads` refuses payloads written by an
incompatible format version with :class:`StateVersionError` instead of
mis-restoring them.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Tuple

from .exceptions import ReproError
from .interface import ContinuousTopKAlgorithm
from .metrics import MetricsCollector
from .object import StreamObject
from .result import TopKResult
from .window import SlideEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.subscription import Subscription

#: Version stamp of the state format.  Bump on any incompatible change to
#: the dataclasses below; :func:`loads` rejects mismatching payloads.
STATE_FORMAT_VERSION = 1

#: Pickle protocol used for state payloads: the highest protocol shared by
#: every supported interpreter (3.8+), chosen explicitly so two processes
#: of different patch versions always speak the same wire format.
PICKLE_PROTOCOL = min(pickle.HIGHEST_PROTOCOL, 5)


class StateVersionError(ReproError):
    """A serialized state payload uses an incompatible format version."""


class StateSerializationError(ReproError):
    """A runtime object cannot be serialized (e.g. a closure preference)."""


@dataclass(frozen=True)
class AlgorithmState:
    """Transportable state of one algorithm at a slide boundary.

    ``algorithm`` is a *fresh* instance (the captured one's
    :meth:`~repro.core.interface.ContinuousTopKAlgorithm.respawn`): it
    carries the full configuration — query, partitioner, policies — but no
    window-derived structures, so it pickles compactly and never drags
    closures created during processing across the process boundary.
    """

    version: int
    algorithm: ContinuousTopKAlgorithm
    window: Tuple[StreamObject, ...]
    slide_index: Optional[int]


@dataclass(frozen=True)
class SubscriptionState:
    """Everything needed to re-home a subscription in another engine.

    Beyond the algorithm state this carries the subscription's retention
    policy, its retained answers, the delivery counter, and the metric
    aggregates, so percentiles and result history survive a rebalance.
    """

    version: int
    name: str
    algorithm: ContinuousTopKAlgorithm
    window: Tuple[StreamObject, ...]
    slide_index: Optional[int]
    keep_results: bool = True
    result_buffer: Optional[int] = None
    collect_metrics: bool = True
    results: Tuple[TopKResult, ...] = ()
    results_delivered: int = 0
    metrics: MetricsCollector = field(default_factory=MetricsCollector)

    def renamed(self, name: str) -> "SubscriptionState":
        """The same state under a different subscription name."""
        return replace(self, name=name)


@dataclass(frozen=True)
class EngineCheckpoint:
    """A whole engine at one slide boundary: every subscription's state
    plus the write-ahead-log position the snapshot corresponds to.

    This is the unit the durability plane (:mod:`repro.durability`)
    persists: restoring the states and replaying the WAL records past
    ``wal_records`` reproduces the pre-crash engine byte-identically.
    ``ingested`` is the engine's lifetime object count at capture time
    (the barrier accounting a resurrected shard worker resumes from) and
    ``last_t`` the highest arrival order seen (-1 before the first push),
    from which the serving layer continues its arrival clock.
    """

    version: int
    wal_records: int
    ingested: int
    last_t: int
    states: Tuple[SubscriptionState, ...]
    #: Lifetime count of ingested *chunks* at capture time.  WAL
    #: truncation deletes the records this would otherwise be counted
    #: from, and a shard router resurrecting a worker compares exactly
    #: this number (plus the replayed tail) against its send counter to
    #: decide which retained chunks to re-send.
    chunks: int = 0


# ----------------------------------------------------------------------
# Algorithm-level capture / restore
# ----------------------------------------------------------------------
def capture_algorithm(
    algorithm: ContinuousTopKAlgorithm,
    window: Tuple[StreamObject, ...],
    slide_index: Optional[int],
) -> AlgorithmState:
    """Capture an algorithm's transportable state at a slide boundary.

    ``window`` must be the live window contents feeding the algorithm and
    ``slide_index`` the index of the last reported slide (``None`` when the
    window has not filled yet, in which case ``window`` must be empty —
    partially filled windows are not slide boundaries).
    """
    if slide_index is None and window:
        raise ValueError(
            "a partially filled window is not a slide boundary; "
            "capture before the first object or at a reported slide"
        )
    return AlgorithmState(
        version=STATE_FORMAT_VERSION,
        algorithm=algorithm.respawn(),
        window=tuple(window),
        slide_index=slide_index,
    )


def restore_algorithm(state: AlgorithmState) -> ContinuousTopKAlgorithm:
    """Rebuild a live algorithm from captured state (drain-and-replay).

    The returned instance has consumed the captured window as one synthetic
    slide event (answer discarded — that window was already reported) and
    will produce byte-identical results to the uninterrupted original for
    every subsequent slide.
    """
    check_version(state.version)
    algorithm = state.algorithm.respawn()
    if state.slide_index is None:
        return algorithm
    algorithm.fast_forward(state.slide_index)
    algorithm.process_slide(replay_event(state.window, state.slide_index))
    return algorithm


def replay_event(
    window: Tuple[StreamObject, ...], slide_index: int
) -> SlideEvent:
    """The synthetic window-fill event used by every drain-and-replay path
    (control-plane rebuilds, state restores, shard rebalances)."""
    return SlideEvent(
        index=slide_index,
        arrivals=tuple(window),
        expirations=(),
        window_end=window[-1].t if window else 0,
    )


# ----------------------------------------------------------------------
# Subscription-level capture (restore lives in EngineCore, which owns the
# group bookkeeping a subscription must be re-homed into)
# ----------------------------------------------------------------------
def capture_subscription(
    subscription: "Subscription",
    window: Tuple[StreamObject, ...],
    slide_index: Optional[int],
) -> SubscriptionState:
    """Capture a subscription (algorithm state + retention + metrics).

    The state is a true point-in-time snapshot: the metric aggregates are
    deep-copied, because the captured subscription may keep running (the
    local capture API leaves it subscribed) and must not mutate the state
    after the fact.
    """
    if slide_index is None and window:
        raise ValueError(
            "a partially filled window is not a slide boundary; "
            "capture before the first object or at a reported slide"
        )
    buffer = subscription._results.maxlen
    return SubscriptionState(
        version=STATE_FORMAT_VERSION,
        name=subscription.name,
        algorithm=subscription.algorithm.respawn(),
        window=tuple(window),
        slide_index=slide_index,
        keep_results=subscription._keep_results,
        result_buffer=buffer,
        collect_metrics=subscription._collect_metrics,
        results=tuple(subscription._results),
        results_delivered=subscription.results_delivered,
        metrics=copy.deepcopy(subscription.metrics),
    )


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def check_version(version: int) -> None:
    """Reject state written by an incompatible format version."""
    if version != STATE_FORMAT_VERSION:
        raise StateVersionError(
            f"state format version {version} is not supported by this "
            f"library (expected {STATE_FORMAT_VERSION}); re-capture the "
            "state with a matching version"
        )


def dumps(state: object) -> bytes:
    """Pickle a state object, converting pickling failures into a clear
    error (the usual cause: a lambda/closure preference function)."""
    try:
        return pickle.dumps(state, protocol=PICKLE_PROTOCOL)
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        raise StateSerializationError(
            f"cannot serialize {type(state).__name__}: {exc}; "
            "preference functions and algorithm options must be module-level "
            "(picklable) to cross a process boundary"
        ) from exc


def loads(payload: bytes) -> object:
    """Unpickle a state object and verify its format version."""
    state = pickle.loads(payload)
    version = getattr(state, "version", None)
    if version is not None:
        check_version(version)
    return state
