"""Continuous top-k query specification.

A continuous top-k query is the tuple ``⟨n, k, s, F⟩`` from the paper:

* ``n``  — window size (number of objects for count-based windows, or a
  duration in time units for time-based windows);
* ``k``  — number of result objects reported at every slide;
* ``s``  — slide size (number of newly arrived objects, or a time interval);
* ``F``  — preference function mapping a raw record to a numeric score.

The query object also exposes the derived quantities the SAP partitioners
need: the suggested number of equal partitions ``m*``, the minimal partition
size ``l_min`` and the maximal partition size ``l_max``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .exceptions import InvalidQueryError

#: A preference function maps an application record to a numeric score.
PreferenceFunction = Callable[[Any], float]


def identity_preference(value: Any) -> float:
    """Default preference function: the record *is* the score."""
    return float(value)


@dataclass(frozen=True)
class TopKQuery:
    """Immutable description of a continuous top-k query.

    Parameters
    ----------
    n:
        Window size.  Must be positive and at least ``k`` and at least ``s``.
    k:
        Number of results per slide.  Must be positive.
    s:
        Slide size.  Must be positive and no larger than ``n``.
    preference:
        Preference function ``F``.  Defaults to interpreting the raw record
        as the score itself.
    time_based:
        ``False`` (default) for count-based windows, ``True`` for time-based
        windows where ``n`` and ``s`` are durations.
    """

    n: int
    k: int
    s: int = 1
    preference: PreferenceFunction = field(default=identity_preference, compare=False)
    time_based: bool = False

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise InvalidQueryError(f"window size n must be positive, got {self.n}")
        if self.k <= 0:
            raise InvalidQueryError(f"result size k must be positive, got {self.k}")
        if self.s <= 0:
            raise InvalidQueryError(f"slide s must be positive, got {self.s}")
        if self.s > self.n:
            raise InvalidQueryError(
                f"slide s={self.s} cannot exceed the window size n={self.n}"
            )
        if not self.time_based and self.k > self.n:
            raise InvalidQueryError(
                f"k={self.k} cannot exceed the count-based window size n={self.n}"
            )

    # ------------------------------------------------------------------
    # Derived quantities used by the SAP partitioners (Section 4).
    # ------------------------------------------------------------------
    @property
    def slides_per_window(self) -> int:
        """Number of slides that fit in one window (``n / s`` rounded up)."""
        return max(1, math.ceil(self.n / self.s))

    @property
    def m_star(self) -> int:
        """``m* = ⌈√(n / max(s, k))⌉`` — the equal-partition resolution that
        minimises the upper bound of ``|C ∪ M0|`` (Section 4.1)."""
        return max(1, math.ceil(math.sqrt(self.n / max(self.s, self.k))))

    @property
    def l_min(self) -> int:
        """Minimal partition size ``l_min = n / m*`` (Section 4.2).

        The value is rounded up to a whole number of slides and never drops
        below ``max(s, k)`` so that every partition can hold ``P_i^k`` and a
        whole number of simultaneously arriving objects.
        """
        raw = self.n / self.m_star
        floor = max(self.s, self.k, int(math.ceil(raw)))
        return self._round_up_to_slide(floor)

    def l_max(self, eta: float) -> int:
        """Maximal partition size, the solution of ``(n - l_max)/l_max = η``
        (Section 4.2), i.e. ``l_max = n / (1 + η)``, floored to a whole
        number of slides but never below ``l_min``."""
        raw = int(self.n / (1.0 + eta))
        candidate = max(self.l_min, self._round_down_to_slide(raw))
        return candidate

    # ------------------------------------------------------------------
    def score(self, record: Any) -> float:
        """Apply the preference function to an application record."""
        return float(self.preference(record))

    def _round_up_to_slide(self, value: int) -> int:
        if value % self.s == 0:
            return value
        return (value // self.s + 1) * self.s

    def _round_down_to_slide(self, value: int) -> int:
        if value < self.s:
            return self.s
        return (value // self.s) * self.s

    def describe(self) -> str:
        """Human-readable one-line description of the query."""
        kind = "time-based" if self.time_based else "count-based"
        return f"top-{self.k} over a {kind} window of {self.n} (slide {self.s})"


def make_query(
    n: int,
    k: int,
    s: int = 1,
    preference: Optional[PreferenceFunction] = None,
    time_based: bool = False,
) -> TopKQuery:
    """Convenience constructor mirroring the paper's ``⟨n, k, s, F⟩`` tuple."""
    return TopKQuery(
        n=n,
        k=k,
        s=s,
        preference=preference if preference is not None else identity_preference,
        time_based=time_based,
    )
