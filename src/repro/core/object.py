"""Stream objects and the total order used throughout the library.

The paper reasons about objects ``o`` carrying a preference score ``F(o)``
and an arrival order ``o.t``.  Dominance (Section 2.1) is defined as::

    o' dominates o   iff   F(o) < F(o')  and  o.t <= o'.t

i.e. the dominating object arrived no earlier and scores strictly higher,
therefore it stays in the window at least as long as ``o`` and always beats
it.  Ties on the raw score are possible in real streams, so every algorithm
in this library uses the same deterministic total order: an object ranks
above another when its ``(score, arrival)`` pair is larger.  Newer objects
win score ties, which matches the intuition that the newer object will also
outlive the older one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class StreamObject:
    """A single element of the data stream.

    Attributes
    ----------
    score:
        The preference score ``F(o)`` of the object.  Scores are computed
        once, when the object enters the system, so that every algorithm
        pays ``costF`` exactly once per object.
    t:
        Arrival order.  Must be unique and strictly increasing within a
        stream; it doubles as the tie breaker of the total order.
    payload:
        Optional application data (e.g. the original transaction record).
        It never influences query processing.
    timestamp:
        Wall-clock arrival time, used only by time-based windows.  Several
        objects may share a timestamp (they arrive "simultaneously"); when
        omitted, the arrival order ``t`` is used as the timestamp.
    """

    score: float
    t: int
    payload: Any = field(default=None, compare=False, hash=False)
    timestamp: Optional[int] = None

    @property
    def arrival_time(self) -> int:
        """Timestamp used by time-based windows (defaults to ``t``)."""
        return self.t if self.timestamp is None else self.timestamp

    @property
    def rank_key(self) -> Tuple[float, int]:
        """Total-order key: higher key means better (preferred) object."""
        return (self.score, self.t)

    def beats(self, other: "StreamObject") -> bool:
        """Return True when this object ranks above ``other``."""
        return self.rank_key > other.rank_key

    def dominated_by(self, other: "StreamObject") -> bool:
        """Return True when ``other`` dominates this object.

        Dominance follows the paper's definition with the library-wide tie
        break: the dominator arrived no earlier and has a larger rank key.
        """
        return other.t >= self.t and other.rank_key > self.rank_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamObject(score={self.score!r}, t={self.t!r})"


def sort_by_rank(objects: Iterable[StreamObject], reverse: bool = True) -> List[StreamObject]:
    """Sort objects by the library-wide total order.

    ``reverse=True`` (default) places the best object first.
    """
    return sorted(objects, key=lambda o: o.rank_key, reverse=reverse)


def top_k(objects: Iterable[StreamObject], k: int) -> List[StreamObject]:
    """Return the ``k`` best objects under the library-wide total order.

    The result is sorted best-first.  Fewer than ``k`` objects are returned
    when the input is smaller than ``k``.
    """
    if k <= 0:
        return []
    ranked = sort_by_rank(objects)
    return ranked[:k]


def kth_score(objects: Iterable[StreamObject], k: int) -> float:
    """Score of the k-th best object, or ``-inf`` if fewer than ``k`` exist."""
    best = top_k(objects, k)
    if len(best) < k:
        return float("-inf")
    return best[-1].score
