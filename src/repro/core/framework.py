"""The SAP framework: self-adaptive partition based continuous top-k.

This module implements Algorithm 1 of the paper (the Top-k maintenance
procedure) on top of the building blocks of the other modules:

* the window is split into partitions by a pluggable
  :class:`~repro.partitioning.base.Partitioner` (equal, dynamic, enhanced
  dynamic);
* every sealed partition contributes its local top-k ``P_i^k`` to the global
  candidate set ``C``, which is refined with dominance counters during the
  merge (Figure 4);
* the front partition additionally owns a *meaningful object set* ``M_0``
  holding its k-skyband objects outside ``P_0^k``.  ``M_0`` is only formed
  when needed — when the partition reaches the front of the window and its
  group dominance number ``ρ`` is below ``k`` — and is stored either in the
  S-AVL structure (Section 5), in the UBSA segmented S-AVL when unit
  metadata is available (Section 5.2), or in a plain sorted list when the
  S-AVL is disabled (the ablation rows of Table 2);
* whenever a front candidate expires, the best live object of ``M_0`` is
  promoted into ``C`` in ``O(log k)`` so the candidate set always covers
  the true top-k;
* the query answer at every slide is the k best objects of
  ``C ∪ P_m^k`` where ``P_m^k`` is the top-k of the not-yet-sealed suffix
  of the stream.
"""

from __future__ import annotations

import time
import weakref
from bisect import insort
from collections import deque
from operator import itemgetter
from typing import Callable, Deque, Dict, Hashable, List, Optional, Sequence, Tuple

from ..partitioning.base import PartitionContext, Partitioner
from ..partitioning.enhanced import EnhancedDynamicPartitioner
from ..savl.amortized import AmortizedSAVLBuilder
from ..savl.meaningful import EmptyMeaningfulSet, MeaningfulSet, SortedMeaningfulSet
from ..obs.registry import LATENCY_BUCKETS, SIZE_BUCKETS, get_registry
from ..obs.tracing import get_tracer
from ..savl.savl import SAVL
from ..savl.segmented import SegmentedSAVL
from ..stats.dominance import k_skyband
from .candidates import CandidateSet
from .columnar import topk_objects
from .exceptions import AlgorithmStateError
from .interface import (
    OBJECT_FOOTPRINT_BYTES,
    POINTER_FOOTPRINT_BYTES,
    ContinuousTopKAlgorithm,
)
from .object import StreamObject
from .partition import Partition, build_partition
from .query import TopKQuery
from .result import TopKResult
from .shared import SharedPartition, SharedPlan, SharedSlide
from .window import SlideEvent

RankKey = Tuple[float, int]

#: Sort key of a ``(rank_key, obj)`` pending-top-k entry.  Sorting on the
#: rank key alone keeps entry comparison away from ``StreamObject`` (keys
#: are unique within a window, so ties never reach the object).
_entry_rank = itemgetter(0)

#: Seal-path instruments per registry.  SAP algorithms are pickled for
#: capture/rebalance, so observability handles must not live on the
#: instance; resolving them through the registry on every seal costs a
#: lock, so the seal path caches them here instead (weakly keyed: a
#: swapped-out registry — tests, the overhead benchmark — stays
#: collectable).
_seal_instrument_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _seal_instruments(registry):
    """``(stage histogram, sealed counter, size histogram)`` of ``registry``."""
    cached = _seal_instrument_cache.get(registry)
    if cached is None:
        cached = (
            registry.histogram(
                "repro_stage_seconds",
                "Pipeline stage timings over the slide lifecycle.",
                {"stage": "seal"},
                LATENCY_BUCKETS,
            ),
            registry.counter(
                "repro_partitions_sealed_total", "Partitions sealed and adopted."
            ),
            registry.histogram(
                "repro_seal_partition_size",
                "Objects per sealed partition.",
                None,
                SIZE_BUCKETS,
            ),
        )
        _seal_instrument_cache[registry] = cached
    return cached


class FrameworkStats:
    """Counters describing how much work the SAP framework actually did.

    These are the quantities the paper's discussion sections reason about:
    how many partitions were sealed, how often the meaningful object set was
    formed versus skipped thanks to the group dominance number, how many
    promotions the S-AVL served, and how many candidates the merge-refine
    step eliminated.
    """

    __slots__ = (
        "partitions_sealed",
        "fronts_prepared",
        "meaningful_formed",
        "meaningful_skipped",
        "promotions",
        "refine_removals",
    )

    def __init__(self) -> None:
        self.partitions_sealed = 0
        self.fronts_prepared = 0
        self.meaningful_formed = 0
        self.meaningful_skipped = 0
        self.promotions = 0
        self.refine_removals = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"FrameworkStats({inner})"


#: Policies controlling when the meaningful object set of a partition is
#: formed.  ``lazy`` is Algorithm 1 (form when the partition reaches the
#: front of the window); ``eager`` is the "non-delay" strawman of Table 2
#: (form at seal time, without the benefit of the group dominance number or
#: the global threshold); ``amortized`` spreads the formation of the next
#: partition's S-AVL over the slides during which the front partition
#: expires (the amortized proactive formation of Section 5.1).
MEANINGFUL_POLICIES = ("lazy", "eager", "amortized")


class SAPTopK(ContinuousTopKAlgorithm):
    """Continuous top-k monitoring with the SAP framework.

    Parameters
    ----------
    query:
        The continuous query ``⟨n, k, s, F⟩``.
    partitioner:
        Partitioning strategy; defaults to the enhanced dynamic partitioner,
        the configuration the paper evaluates as "SAP".
    meaningful_policy:
        ``"lazy"`` (default, Algorithm 1) or ``"eager"`` (the non-delay
        variant used as a baseline in Table 2).
    use_savl:
        When True (default) the meaningful object set is stored in the
        S-AVL structure (or its segmented variant when unit metadata is
        available); when False a plain re-scan plus sorted list is used.
    """

    name = "SAP"

    def __init__(
        self,
        query: TopKQuery,
        partitioner: Optional[Partitioner] = None,
        meaningful_policy: str = "lazy",
        use_savl: bool = True,
    ) -> None:
        super().__init__(query)
        if meaningful_policy not in MEANINGFUL_POLICIES:
            raise ValueError(
                f"meaningful_policy must be one of {MEANINGFUL_POLICIES}, "
                f"got {meaningful_policy!r}"
            )
        self._partitioner = partitioner if partitioner is not None else EnhancedDynamicPartitioner()
        self._partitioner.bind(query, PartitionContext(self._top_candidate_scores))
        self._policy = meaningful_policy
        self._use_savl = use_savl
        self.name = f"SAP[{self._partitioner.name}]"

        self._partitions: Deque[Partition] = deque()
        self._candidates = CandidateSet()
        self._pending_topk: List[Tuple[RankKey, StreamObject]] = []
        self._premade: Dict[int, MeaningfulSet] = {}
        self._front_meaningful: Optional[MeaningfulSet] = None
        self._front_prepared = False
        self._front_candidate_live = 0
        self._next_partition_id = 0
        self._watermark = 0
        self._slides_processed = 0
        # Amortized proactive formation of the next partition's S-AVL.
        self._amortized_builder: Optional[AmortizedSAVLBuilder] = None
        self._amortized_skip_id: Optional[int] = None
        # Set when the instance consumes partitions sealed by a query
        # group's shared plan instead of running its own partitioner.
        self._shared_plan: Optional["SAPSharedPlan"] = None
        self.stats = FrameworkStats()
        #: Telemetry tap of the adaptive control plane: when set, called as
        #: ``seal_listener(partition)`` for every partition this instance
        #: adopts (own seals and plan-provided ones alike).
        self.seal_listener: Optional[Callable[[Partition], None]] = None

    # ------------------------------------------------------------------
    # Public protocol
    # ------------------------------------------------------------------
    def process_slide(self, event: SlideEvent) -> TopKResult:
        if self._shared_plan is not None:
            raise AlgorithmStateError(
                "this SAP instance is attached to a shared plan; "
                "drive it through its StreamEngine"
            )
        self._handle_expirations(event.expirations)
        self._handle_arrivals(event.arrivals)
        if self._policy == "amortized":
            self._advance_amortized(len(event.expirations))
        self._replenish_front()
        self._slides_processed += 1
        return self._current_result(event)

    # ------------------------------------------------------------------
    # Shared-slide lifecycle (multi-query execution plane)
    # ------------------------------------------------------------------
    def shared_plan_key(self) -> Optional[Hashable]:
        # Sealing decisions are partitioner-specific; the meaningful-set
        # policy and the S-AVL toggle only affect how each member consumes
        # the sealed partitions, so they can differ within one plan.
        return ("SAP", self._partitioner.plan_key())

    def build_shared_plan(self, subscriptions: Sequence[object]) -> "SAPSharedPlan":
        return SAPSharedPlan(subscriptions)

    def enable_shared_sealing(self, plan: "SAPSharedPlan") -> None:
        """Switch to consuming partitions sealed by ``plan``.

        Must be called before any slide is processed: the instance's own
        partitioner is abandoned, so mid-stream adoption would lose the
        objects it has already buffered.
        """
        if self._slides_processed or self._partitions or self._next_partition_id:
            raise AlgorithmStateError(
                "cannot attach a shared plan after processing has begun"
            )
        self._shared_plan = plan

    def process_shared_slide(self, shared: SharedSlide) -> TopKResult:
        if self._shared_plan is None:
            return ContinuousTopKAlgorithm.process_shared_slide(self, shared)
        event = shared.event
        # Pre-seals are the force-seal safety valve, applied by the plan
        # before expirations would reach into the unsealed buffer.
        for shared_partition in shared.pre_seals:
            self._adopt_shared_partition(shared_partition)
        self._handle_expirations(event.expirations)
        for shared_partition in shared.seals:
            self._adopt_shared_partition(shared_partition)
        self._set_pending_topk(shared.pending_topk)
        if self._policy == "amortized":
            self._advance_amortized(len(event.expirations))
        self._replenish_front()
        self._slides_processed += 1
        return self._current_result(event)

    def _adopt_shared_partition(self, shared_partition: SharedPartition) -> None:
        """Seal a partition pre-built by the shared plan at ``k_max``.

        The local top-k is the ``k``-prefix of the shared top-``k_max``
        (the total order makes ``top_k(X, k) == top_k(X, k_max)[:k]``), so
        no per-member scan or sort of the partition is needed.  Unit
        summaries were computed at the plan's ``k_max`` and are only safe
        for members with exactly that result size.
        """
        k = self.query.k
        units = shared_partition.units if shared_partition.k == k else None
        partition = Partition(
            partition_id=self._next_partition_id,
            objects=shared_partition.objects,
            k=k,
            units=units,
            topk=list(shared_partition.topk_for(k)),
        )
        self._adopt_partition(partition)

    def _set_pending_topk(self, pending_topk: Sequence[StreamObject]) -> None:
        """Adopt the plan's top-``k_max`` of the unsealed suffix, sliced."""
        best_first = pending_topk[: self.query.k]
        self._pending_topk = [(obj.rank_key, obj) for obj in reversed(best_first)]

    def candidate_count(self) -> int:
        meaningful = len(self._front_meaningful) if self._front_meaningful else 0
        return len(self._candidates) + len(self._pending_topk) + meaningful

    def memory_bytes(self) -> int:
        candidates = len(self._candidates) + len(self._pending_topk)
        meaningful = len(self._front_meaningful) if self._front_meaningful else 0
        premade = sum(len(ms) for ms in self._premade.values())
        structural = (len(self._partitions) + 1) * POINTER_FOOTPRINT_BYTES
        per_partition_topk = sum(len(p.topk) for p in self._partitions)
        return (
            (candidates + meaningful + premade) * OBJECT_FOOTPRINT_BYTES
            + per_partition_topk * POINTER_FOOTPRINT_BYTES
            + structural
        )

    # ------------------------------------------------------------------
    # Introspection used by tests, benchmarks, and the control plane
    # ------------------------------------------------------------------
    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def partitioner(self) -> Partitioner:
        return self._partitioner

    def partition_sizes(self) -> List[int]:
        return [len(p) for p in self._partitions]

    def front_partition(self) -> Optional[Partition]:
        return self._partitions[0] if self._partitions else None

    def seal_stats(self) -> Dict[str, object]:
        """Sealing behaviour of whichever pipeline feeds this instance.

        When the instance is a member of a shared plan, sealing happens in
        the plan's group-level partitioner; otherwise in the instance's
        own.  Either way the record also carries the framework counters, so
        the control plane sees sizing and consumption in one place.
        """
        if self._shared_plan is not None:
            base = self._shared_plan.seal_stats()
        else:
            base = self._partitioner.seal_stats()
        base["partitions_live"] = len(self._partitions)
        base["framework"] = self.stats.as_dict()
        return base

    def respawn(self) -> "SAPTopK":
        """A fresh SAP instance with this configuration, empty state."""
        return self.with_partitioner(self._partitioner.spawn())

    def with_partitioner(self, partitioner: Partitioner) -> "SAPTopK":
        """A fresh SAP instance using ``partitioner``, all other
        configuration (meaningful-set policy, S-AVL toggle) preserved.
        The control plane's partitioner-swap and η-retune tactics build
        their replacement instances through this."""
        return SAPTopK(
            self.query,
            partitioner=partitioner,
            meaningful_policy=self._policy,
            use_savl=self._use_savl,
        )

    # ------------------------------------------------------------------
    # Expirations
    # ------------------------------------------------------------------
    def _handle_expirations(self, expirations: Sequence[StreamObject]) -> None:
        if not expirations:
            return
        partitions = self._partitions
        candidates = self._candidates
        index = 0
        total = len(expirations)
        while index < total:
            front = partitions[0] if partitions else self._front_for_expiry()
            if not self._front_prepared:
                self._prepare_front(front)
            # Absorb the longest run this front can take in one batch; the
            # dict-backed candidate set makes the (common) non-candidate
            # removal probe a single hash miss.
            run = min(front.live_count, total - index)
            batch = expirations[index : index + run]
            front.expire_batch(batch)
            front_id = front.partition_id
            for obj in batch:
                entry = candidates.remove(obj.rank_key)
                if entry is not None and entry.partition_id == front_id:
                    self._front_candidate_live -= 1
            index += run
            if front.fully_expired:
                self._retire_front()
        self._watermark = max(self._watermark, expirations[-1].t + 1)
        if self._front_meaningful is not None:
            self._front_meaningful.prune_expired(self._watermark)

    def _front_for_expiry(self) -> Partition:
        if not self._partitions:
            if self._shared_plan is not None:
                # The plan force-seals ahead of expirations (pre_seals), so
                # running dry here means the plane and the member disagree.
                raise AlgorithmStateError(
                    "shared plan did not seal ahead of expirations"
                )
            # Safety valve: expirations would reach into the unsealed buffer
            # (only possible with a single partition per window); seal it.
            spec = self._partitioner.force_seal()
            if spec is None:
                raise AlgorithmStateError("expiration requested on an empty window")
            self._seal(spec.objects, spec.units)
            self._rebuild_pending_topk()
        return self._partitions[0]

    def _retire_front(self) -> None:
        old = self._partitions.popleft()
        self._premade.pop(old.partition_id, None)
        self._front_meaningful = None
        self._front_prepared = False
        self._front_candidate_live = 0

    def _ensure_front_prepared(self) -> None:
        if self._front_prepared or not self._partitions:
            return
        self._prepare_front(self._partitions[0])

    def _prepare_front(self, partition: Partition) -> None:
        """Finalize the front partition: compute ``ρ`` and form ``M_0``."""
        self._front_prepared = True
        self.stats.fronts_prepared += 1
        k = self.query.k
        rho = self._candidates.group_dominance(partition.kth_key, partition.partition_id, k)
        partition.rho = rho
        self._front_candidate_live = self._candidates.count_for_partition(
            partition.partition_id
        )
        if self._policy == "eager":
            self._front_meaningful = self._premade.pop(
                partition.partition_id, EmptyMeaningfulSet()
            )
            self.stats.meaningful_formed += 1
        elif self._policy == "amortized" and self._amortized_covers(partition):
            self._front_meaningful = self._take_amortized(partition)
            if isinstance(self._front_meaningful, EmptyMeaningfulSet):
                self.stats.meaningful_skipped += 1
            else:
                self.stats.meaningful_formed += 1
        elif rho >= k:
            self._front_meaningful = EmptyMeaningfulSet()
            self.stats.meaningful_skipped += 1
        else:
            self._front_meaningful = self._form_meaningful(partition, rho)
            self.stats.meaningful_formed += 1
        self._front_meaningful.prune_expired(self._watermark)

    def _form_meaningful(self, partition: Partition, rho: int) -> MeaningfulSet:
        k = self.query.k
        stacks = max(1, k - rho)
        exclude = set(partition.topk_keys())
        threshold = self._candidates.global_threshold(partition.partition_id, k)
        if self._use_savl and partition.units:
            return SegmentedSAVL(
                partition,
                num_stacks=stacks,
                threshold_provider=lambda: self._candidates.global_threshold(
                    partition.partition_id, k
                ),
                exclude_keys=exclude,
            )
        if self._use_savl:
            if not self.query.time_based and self.query.s > 1:
                # Appendix C: objects arriving in the same slide expire
                # together, so only the best (k - rho) per slide can ever
                # become meaningful.
                return SAVL.build_batched(
                    partition.objects,
                    batch_size=self.query.s,
                    num_stacks=stacks,
                    global_threshold=threshold,
                    exclude_keys=exclude,
                )
            return SAVL.build(
                partition.objects,
                num_stacks=stacks,
                global_threshold=threshold,
                exclude_keys=exclude,
            )
        # Plain re-scan: local k-skyband with (k - rho) allowed dominators,
        # followed by the global threshold filter.
        local = k_skyband(partition.objects, stacks)
        qualifying = [
            obj
            for obj in local
            if obj.rank_key not in exclude
            and (threshold is None or obj.rank_key >= threshold)
        ]
        return SortedMeaningfulSet(qualifying)

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _handle_arrivals(self, arrivals: Sequence[StreamObject]) -> None:
        if not arrivals:
            return
        self._push_pending_topk_many(arrivals)
        specs = self._partitioner.observe(arrivals)
        for spec in specs:
            self._seal(spec.objects, spec.units)
        if specs:
            self._rebuild_pending_topk()

    def _seal(self, objects: Sequence[StreamObject], units) -> None:
        # The observability handles come from the module-level per-registry
        # cache (never the instance): SAP algorithms are pickled for
        # capture/rebalance, so instruments must not ride on ``self``.
        registry = get_registry()
        tracer = get_tracer()
        timed = registry.enabled or tracer.enabled
        started = time.perf_counter() if timed else 0.0
        partition = build_partition(
            self._next_partition_id, objects, self.query.k, units
        )
        self._adopt_partition(partition)
        if timed:
            seal_seconds = time.perf_counter() - started
            _seal_instruments(registry)[0].observe(seal_seconds)
            if tracer.enabled:
                tracer.record(
                    "seal",
                    self._slides_processed,
                    time.time() - seal_seconds,
                    seal_seconds,
                    f"objects={len(objects)}",
                )

    def _adopt_partition(self, partition: Partition) -> None:
        """Register a freshly sealed partition (own or plan-provided)."""
        self._next_partition_id += 1
        self.stats.partitions_sealed += 1
        registry = get_registry()
        if registry.enabled:
            _, sealed_total, partition_size = _seal_instruments(registry)
            sealed_total.inc()
            partition_size.observe(len(partition.objects))
        if self.seal_listener is not None:
            self.seal_listener(partition)
        removed = self._candidates.merge_partition_topk(
            partition.topk, partition.partition_id, self.query.k
        )
        self.stats.refine_removals += len(removed)
        if self._partitions:
            front_id = self._partitions[0].partition_id
            for entry in removed:
                if entry.partition_id == front_id:
                    self._front_candidate_live -= 1
        self._partitions.append(partition)
        if self._policy == "eager":
            self._premade[partition.partition_id] = self._build_premade(partition)

    def _build_premade(self, partition: Partition) -> MeaningfulSet:
        """Non-delay variant: form ``M_i`` at seal time.

        At seal time the partition is the newest in the window, so neither
        the group dominance number nor the global threshold can prune
        anything — which is exactly why this policy is slower (Table 2).
        """
        k = self.query.k
        exclude = set(partition.topk_keys())
        if self._use_savl:
            return SAVL.build(
                partition.objects,
                num_stacks=k,
                global_threshold=None,
                exclude_keys=exclude,
            )
        local = k_skyband(partition.objects, k)
        return SortedMeaningfulSet(
            [obj for obj in local if obj.rank_key not in exclude]
        )

    def _push_pending_topk(self, obj: StreamObject) -> None:
        k = self.query.k
        entry = (obj.rank_key, obj)
        if len(self._pending_topk) < k:
            insort(self._pending_topk, entry)
            return
        if entry > self._pending_topk[0]:
            self._pending_topk.pop(0)
            insort(self._pending_topk, entry)

    def _push_pending_topk_many(self, objects: Sequence[StreamObject]) -> None:
        # top_k(A ∪ B) == top_k(top_k(A) ∪ B): merge the kept entries with
        # the whole batch and keep the k best.  Timsort exploits the sorted
        # prefix, so this beats per-object insort by a wide margin.
        merged = self._pending_topk + [(obj.rank_key, obj) for obj in objects]
        merged.sort(key=_entry_rank)
        excess = len(merged) - self.query.k
        if excess > 0:
            del merged[:excess]
        self._pending_topk = merged

    def _rebuild_pending_topk(self) -> None:
        pending = self._partitioner.pending_objects()
        best = topk_objects(pending, self.query.k)
        self._pending_topk = sorted((obj.rank_key, obj) for obj in best)

    # ------------------------------------------------------------------
    # Amortized proactive formation (Section 5.1)
    # ------------------------------------------------------------------
    def _advance_amortized(self, expired_count: int) -> None:
        """Spread the construction of the next partition's S-AVL over the
        slides during which the current front expires."""
        if not self._use_savl or len(self._partitions) < 2:
            return
        front = self._partitions[0]
        target = self._partitions[1]
        builder = self._amortized_builder
        if (
            (builder is None or builder.partition is not target)
            and self._amortized_skip_id != target.partition_id
        ):
            builder = self._start_amortized(front, target)
        if builder is not None and builder.partition is target and not builder.done:
            builder.step(max(expired_count, self.query.s))

    def _start_amortized(
        self, front: Partition, target: Partition
    ) -> Optional[AmortizedSAVLBuilder]:
        """Create the builder for ``target`` (the partition right behind the
        front), or record that its meaningful set is provably empty."""
        k = self.query.k
        excluded = {front.partition_id, target.partition_id}
        rho = self._candidates.group_dominance_excluding(target.kth_key, excluded, k)
        if rho >= k:
            # rho only grows as new candidates arrive, so skipping is final.
            self._amortized_skip_id = target.partition_id
            self._amortized_builder = None
            return None
        threshold = self._candidates.global_threshold_excluding(excluded, k)
        builder = AmortizedSAVLBuilder(
            target,
            num_stacks=max(1, k - rho),
            global_threshold=threshold,
            exclude_keys=set(target.topk_keys()),
        )
        self._amortized_builder = builder
        return builder

    def _amortized_covers(self, partition: Partition) -> bool:
        builder = self._amortized_builder
        if builder is not None and builder.partition is partition:
            return True
        return self._amortized_skip_id == partition.partition_id

    def _take_amortized(self, partition: Partition) -> MeaningfulSet:
        if self._amortized_skip_id == partition.partition_id:
            self._amortized_skip_id = None
            return EmptyMeaningfulSet()
        builder = self._amortized_builder
        assert builder is not None and builder.partition is partition
        self._amortized_builder = None
        return builder.finish()

    # ------------------------------------------------------------------
    # Promotion from M_0
    # ------------------------------------------------------------------
    def _replenish_front(self) -> None:
        if not self._partitions:
            return
        self._ensure_front_prepared()
        front = self._partitions[0]
        meaningful = self._front_meaningful
        if meaningful is None:
            return
        meaningful.advance(front.expired_prefix)
        k = self.query.k
        while self._front_candidate_live < k:
            obj = meaningful.pop_best(self._watermark)
            if obj is None:
                break
            if obj.rank_key in self._candidates:
                continue
            self._candidates.add(obj, front.partition_id)
            self._front_candidate_live += 1
            self.stats.promotions += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _current_result(self, event: SlideEvent) -> TopKResult:
        # Merge the two already-ordered sources — the candidate set
        # (descending walk) and the pending top-k (ascending list) — so
        # the answer needs no sort.  The sources are disjoint: candidates
        # come from sealed partitions, pending objects are unsealed.
        k = self.query.k
        pending = self._pending_topk
        pending_index = len(pending) - 1
        candidates = self._candidates.iter_descending()
        candidate = next(candidates, None)
        best: List[StreamObject] = []
        while len(best) < k:
            if candidate is not None and (
                pending_index < 0 or candidate.rank_key > pending[pending_index][0]
            ):
                best.append(candidate.obj)
                candidate = next(candidates, None)
            elif pending_index >= 0:
                best.append(pending[pending_index][1])
                pending_index -= 1
            else:
                break
        return TopKResult(
            slide_index=event.index, window_end=event.window_end, objects=tuple(best)
        )

    # ------------------------------------------------------------------
    # Candidate view shared with the dynamic partitioner
    # ------------------------------------------------------------------
    def _top_candidate_scores(self, count: int) -> List[float]:
        return self._candidates.top_scores(count)


class _SharedPendingTopK:
    """Incremental top-``k_max`` of the shared plane's unsealed suffix.

    Mirrors :meth:`SAPTopK._push_pending_topk`, maintained once per plan so
    that no member has to scan the pending buffer; members slice their own
    ``k``-prefix out of :meth:`best_first`.
    """

    def __init__(self, k: int) -> None:
        self._k = k
        self._entries: List[Tuple[RankKey, StreamObject]] = []  # ascending

    def push_many(self, objects: Sequence[StreamObject]) -> None:
        # Same batch merge as SAPTopK._push_pending_topk_many: keep the
        # k_max best of (kept ∪ batch) in one sort instead of s insorts.
        merged = self._entries + [(obj.rank_key, obj) for obj in objects]
        merged.sort(key=_entry_rank)
        excess = len(merged) - self._k
        if excess > 0:
            del merged[:excess]
        self._entries = merged

    def rebuild(self, pending: Sequence[StreamObject]) -> None:
        best = topk_objects(pending, self._k)
        self._entries = sorted((obj.rank_key, obj) for obj in best)

    def clear(self) -> None:
        self._entries = []

    def best_first(self) -> Tuple[StreamObject, ...]:
        return tuple(obj for _, obj in reversed(self._entries))


class SAPSharedPlan(SharedPlan):
    """One sealing pipeline serving every SAP query of a window shape.

    The plan owns a single partitioner — a clone of the leading member's
    configuration, bound to the group's window shape at ``k_max`` — and
    performs partition sealing, local top-k computation, and pending-suffix
    top-k maintenance exactly once per slide.  Members adopt the sealed
    partitions through :meth:`SAPTopK.process_shared_slide`, slicing their
    own ``k``-prefix out of the shared top-``k_max`` artifacts; their
    candidate sets, meaningful object sets, and promotions stay per-query,
    which keeps every member exact for its own ``k``.

    The dynamic partitioners consult the candidate scores of the *live
    member with the largest k* (the best approximation of the reference
    interval at ``k_max``); partition boundaries may therefore differ from
    an independent run, but SAP's answers are exact for any boundary
    choice, so the produced result sequences are identical.
    """

    kind = "SAP"

    def __init__(self, subscriptions: Sequence[object]) -> None:
        super().__init__(subscriptions)
        algorithms: List[SAPTopK] = [sub.algorithm for sub in self._subs]
        shape = algorithms[0].query
        self._seal_query = TopKQuery(
            n=shape.n,
            k=self.k_max,
            s=shape.s,
            time_based=shape.time_based,
        )
        self._partitioner = algorithms[0].partitioner.spawn()
        self._partitioner.bind(
            self._seal_query, PartitionContext(self._leader_candidate_scores)
        )
        self._sealed_live = 0
        self._pending_topk = _SharedPendingTopK(self.k_max)
        for algorithm in algorithms:
            algorithm.enable_shared_sealing(self)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["partitioner"] = self._partitioner.name
        return info

    def seal_stats(self) -> Dict[str, object]:
        """Sealing behaviour of the plan's group-level partitioner."""
        return self._partitioner.seal_stats()

    def _leader_candidate_scores(self, count: int) -> List[float]:
        leader: Optional[object] = None
        for sub in self._subs:
            if sub.closed:
                continue
            if leader is None or sub.query.k > leader.query.k:
                leader = sub
        if leader is None:
            return []
        return leader.algorithm._top_candidate_scores(count)

    # ------------------------------------------------------------------
    def prepare(self, event: SlideEvent) -> SharedSlide:
        started = time.perf_counter()
        pre_seals: Tuple[SharedPartition, ...] = ()
        expired = len(event.expirations)
        if expired > self._sealed_live:
            # Expirations would reach into the unsealed buffer: seal it now
            # (once for the whole plan) so every member's front partition
            # chain covers the expiring objects.
            spec = self._partitioner.force_seal()
            if spec is not None:
                pre_seals = (self._share(spec),)
                self._pending_topk.clear()
        self._sealed_live = max(0, self._sealed_live - expired)
        seals: Tuple[SharedPartition, ...] = ()
        if event.arrivals:
            specs = self._partitioner.observe(event.arrivals)
            if specs:
                seals = tuple(self._share(spec) for spec in specs)
                self._pending_topk.rebuild(self._partitioner.pending_objects())
            else:
                self._pending_topk.push_many(event.arrivals)
        members = self.open_member_count() or 1
        prep = time.perf_counter() - started
        return SharedSlide(
            event=event,
            pre_seals=pre_seals,
            seals=seals,
            pending_topk=self._pending_topk.best_first(),
            prep_share=prep / members,
        )

    def _share(self, spec) -> SharedPartition:
        """Build the shared ``k_max`` artifacts of one sealed partition."""
        self._sealed_live += len(spec.objects)
        partition = build_partition(0, spec.objects, self.k_max, spec.units)
        return SharedPartition(
            objects=partition.objects,
            units=spec.units,
            topk=partition.topk,
            k=self.k_max,
        )
