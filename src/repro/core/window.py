"""Sliding-window substrate.

The algorithms in this library are all driven by a common abstraction: a
sequence of :class:`SlideEvent` objects.  Each event describes one movement
of the window and carries

* ``arrivals`` — the objects that entered the window during this slide, and
* ``expirations`` — the objects that left the window during this slide.

For the classic count-based window ``⟨n, s⟩`` every event (after the window
has filled) contains exactly ``s`` arrivals and ``s`` expirations.  For a
time-based window the counts vary from slide to slide.  Algorithms that are
window-type agnostic (SAP, the brute-force oracle, k-skyband) simply consume
the events; algorithms that exploit the count-based structure (MinTopK)
assert it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Iterator, List, Optional, Sequence, Tuple

from .columnar import SlideBlock
from .exceptions import InvalidQueryError
from .object import StreamObject
from .query import TopKQuery


@dataclass(frozen=True)
class SlideEvent:
    """One movement of the sliding window.

    Attributes
    ----------
    index:
        Zero-based index of the reported window (0 = first full window).
    arrivals:
        Objects that entered the window since the previous report, oldest
        first.
    expirations:
        Objects that left the window since the previous report, oldest
        first.
    window_end:
        Arrival order / timestamp of the newest object in the window.
    block:
        Optional columnar form of ``arrivals`` — attached by
        :meth:`SlideBatcher.push_block` when the arrivals came in as a
        :class:`~repro.core.columnar.SlideBlock` slice, lazily built (and
        cached) otherwise via :meth:`arrivals_block`.  Carries no identity:
        it is excluded from comparison and never serialized.
    """

    index: int
    arrivals: Tuple[StreamObject, ...]
    expirations: Tuple[StreamObject, ...]
    window_end: int
    block: Optional[SlideBlock] = field(default=None, compare=False, repr=False)

    def arrivals_block(self) -> Optional[SlideBlock]:
        """The arrivals as a column block (cached on the event), or ``None``
        when they cannot be packed (exotic scores, t beyond int64)."""
        if self.block is None:
            from .columnar import BlockPackError

            try:
                object.__setattr__(
                    self, "block", SlideBlock.from_objects(self.arrivals)
                )
            except BlockPackError:
                return None
        return self.block


class SlidingWindow:
    """Materialised view of the current window contents.

    The class is a thin wrapper around a deque that additionally checks the
    fundamental invariant of sliding windows: objects expire in exactly the
    order they arrived.
    """

    def __init__(self) -> None:
        self._objects: Deque[StreamObject] = deque()

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StreamObject]:
        return iter(self._objects)

    @property
    def oldest(self) -> StreamObject:
        return self._objects[0]

    @property
    def newest(self) -> StreamObject:
        return self._objects[-1]

    def contents(self) -> List[StreamObject]:
        """Snapshot of the window contents, oldest first."""
        return list(self._objects)

    def append(self, obj: StreamObject) -> None:
        if self._objects and obj.t < self._objects[-1].t:
            raise InvalidQueryError(
                "stream objects must arrive in non-decreasing order of t; "
                f"got t={obj.t} after t={self._objects[-1].t}"
            )
        self._objects.append(obj)

    def expire_oldest(self, count: int) -> List[StreamObject]:
        """Remove and return the ``count`` oldest objects."""
        removed = []
        for _ in range(count):
            removed.append(self._objects.popleft())
        return removed

    def expire_older_than(self, cutoff: int) -> List[StreamObject]:
        """Remove and return every object whose arrival time precedes
        ``cutoff`` (time-based windows)."""
        removed = []
        while self._objects and self._objects[0].arrival_time < cutoff:
            removed.append(self._objects.popleft())
        return removed


class SlideBatcher:
    """Incremental slide-event builder (one object at a time).

    The generator functions below consume a whole stream; the batcher is
    their push-based counterpart, used when several queries must share a
    single pass over the stream — every query group of the engine owns
    exactly one batcher for its window shape (see
    :class:`repro.engine.group.QueryGroup`).  Feeding the same
    objects to a batcher produces exactly the same events as the
    corresponding generator, except that time-based windows emit their final
    (end-of-stream) report only when :meth:`flush` is called.
    """

    def __init__(self, query: TopKQuery) -> None:
        self.query = query
        self._window = SlidingWindow()
        self._pending: List[StreamObject] = []
        self._index = 0
        self._filled = False
        self._report_time: Optional[int] = None

    # ------------------------------------------------------------------
    def push(self, obj: StreamObject) -> List[SlideEvent]:
        """Feed one object; return the slide events it completes (0+)."""
        if self.query.time_based:
            return self._push_time_based(obj)
        return self._push_count_based(obj)

    def push_batch(self, objects: Sequence[StreamObject]) -> List[SlideEvent]:
        """Feed a batch of objects at once; return the events it completes.

        Equivalent to pushing each object individually, but the count-based
        path advances in whole-slide strides, so the multi-query engine can
        move a chunk of stream through a query group with one call instead
        of one dispatch per object per query.
        """
        if self.query.time_based:
            events: List[SlideEvent] = []
            for obj in objects:
                events.extend(self._push_time_based(obj))
            return events
        return self._push_count_batch(objects)

    def push_block(self, block: SlideBlock) -> List[SlideEvent]:
        """Feed a column block; emitted events keep their arrivals in block
        form (zero-copy slices of ``block``) whenever they align.

        An event whose arrivals are drawn entirely from this block (the
        common steady-state case: no partial slide pending from an earlier
        batch) gets the matching ``block.slice`` attached; events that mix
        in earlier objects fall back to :meth:`SlideEvent.arrivals_block`'s
        lazy path.  Time-based windows never attach slices — their reports
        may drop arrivals that expired before becoming visible.
        """
        lead = len(self._pending)
        events = self.push_batch(block.to_objects())
        if self.query.time_based:
            return events
        # Event j's arrivals span a contiguous run of (pending-before +
        # block); a run starting at or past the lead lies fully inside the
        # block and can be served as a column slice.
        offset = -lead
        for event in events:
            size = len(event.arrivals)
            if offset >= 0:
                object.__setattr__(event, "block", block.slice(offset, offset + size))
            offset += size
        return events

    def flush(self) -> List[SlideEvent]:
        """Emit the final report of a time-based window (if any)."""
        if not self.query.time_based or self._report_time is None:
            return []
        event = self._emit_time_based(self._report_time)
        self._report_time = None
        return [event]

    def seed(self, contents: Sequence[StreamObject], last_index: int) -> None:
        """Load captured window state into a never-pushed batcher.

        After seeding, the batcher behaves exactly as if it had consumed a
        stream ending at the slide boundary ``last_index`` whose window
        contents were ``contents``: the next ``s`` arrivals complete slide
        ``last_index + 1`` with the correct expirations.  This is the
        restore half of the serialization layer (:mod:`repro.core.state`);
        only exact boundaries can be captured, so only full count-based
        windows can be seeded.
        """
        if self.query.time_based:
            raise InvalidQueryError("only count-based windows can be seeded")
        if self._index or self._filled or self._pending or len(self._window):
            raise InvalidQueryError("cannot seed a batcher that has consumed objects")
        if len(contents) != self.query.n:
            raise InvalidQueryError(
                f"seeding needs exactly n={self.query.n} objects "
                f"(a full window), got {len(contents)}"
            )
        if last_index < 0:
            raise InvalidQueryError(f"last_index must be >= 0, got {last_index}")
        for obj in contents:
            self._window.append(obj)
        self._filled = True
        self._index = last_index + 1

    def window_size(self) -> int:
        """Number of stream objects currently held by the window."""
        return len(self._window)

    def window_contents(self) -> List[StreamObject]:
        """Snapshot of the buffered window, oldest first.

        Used by the control plane to rebuild an algorithm's state from the
        live window when a tactic swaps it out mid-run.
        """
        return self._window.contents()

    def pending_count(self) -> int:
        """Objects accumulated since the last emitted slide event."""
        return len(self._pending)

    @property
    def last_index(self) -> Optional[int]:
        """Index of the most recently emitted slide event (None before the
        window first fills)."""
        return self._index - 1 if self._index else None

    def at_slide_boundary(self) -> bool:
        """True when the window state corresponds exactly to the last
        emitted slide event — i.e. the window has filled and no partial
        slide has accumulated since.  Only count-based windows have exact
        boundaries; time-based windows buffer ahead of their reports."""
        return (
            not self.query.time_based
            and self._index > 0
            and not self._pending
        )

    # ------------------------------------------------------------------
    def _push_count_based(self, obj: StreamObject) -> List[SlideEvent]:
        self._window.append(obj)
        self._pending.append(obj)
        if not self._filled:
            if len(self._window) < self.query.n:
                return []
            self._filled = True
            return [self._emit(expirations=[])]
        if len(self._pending) < self.query.s:
            return []
        expired = self._window.expire_oldest(self.query.s)
        return [self._emit(expirations=expired)]

    def _push_count_batch(self, objects: Sequence[StreamObject]) -> List[SlideEvent]:
        events: List[SlideEvent] = []
        window, query = self._window, self.query
        total = len(objects)
        position = 0
        while position < total:
            if not self._filled:
                take = min(query.n - len(window), total - position)
            else:
                take = min(query.s - len(self._pending), total - position)
            chunk = objects[position : position + take]
            for obj in chunk:
                window.append(obj)
            self._pending.extend(chunk)
            position += take
            if not self._filled:
                if len(window) == query.n:
                    self._filled = True
                    events.append(self._emit(expirations=[]))
            elif len(self._pending) == query.s:
                expired = window.expire_oldest(query.s)
                events.append(self._emit(expirations=expired))
        return events

    def _push_time_based(self, obj: StreamObject) -> List[SlideEvent]:
        events: List[SlideEvent] = []
        if self._report_time is None:
            self._report_time = obj.arrival_time + self.query.n
        while obj.arrival_time > self._report_time:
            events.append(self._emit_time_based(self._report_time))
            self._report_time += self.query.s
        self._window.append(obj)
        self._pending.append(obj)
        return events

    def _emit_time_based(self, now: int) -> SlideEvent:
        expired = self._window.expire_older_than(now - self.query.n + 1)
        expired_ids = {o.t for o in expired}
        pending_ids = {o.t for o in self._pending}
        arrivals = [o for o in self._pending if o.t not in expired_ids]
        expirations = [o for o in expired if o.t not in pending_ids]
        event = SlideEvent(
            index=self._index,
            arrivals=tuple(arrivals),
            expirations=tuple(expirations),
            window_end=now,
        )
        self._index += 1
        self._pending = []
        return event

    def _emit(self, expirations: Sequence[StreamObject]) -> SlideEvent:
        event = SlideEvent(
            index=self._index,
            arrivals=tuple(self._pending),
            expirations=tuple(expirations),
            window_end=self._pending[-1].t if self._pending else self._window.newest.t,
        )
        self._index += 1
        self._pending = []
        return event


def count_based_slides(
    objects: Iterable[StreamObject], query: TopKQuery
) -> Iterator[SlideEvent]:
    """Generate slide events for a count-based window.

    The first event is emitted when ``n`` objects have arrived; afterwards
    one event is emitted per ``s`` arrivals.  Trailing objects that do not
    fill a whole slide are discarded, mirroring the paper's setup where
    ``s`` divides the processed stream length.
    """
    if query.time_based:
        raise InvalidQueryError("count_based_slides requires a count-based query")

    window = SlidingWindow()
    pending_arrivals: List[StreamObject] = []
    pending_expirations: List[StreamObject] = []
    index = 0
    filled = False

    for obj in objects:
        window.append(obj)
        pending_arrivals.append(obj)
        if not filled:
            if len(window) == query.n:
                filled = True
                yield SlideEvent(
                    index=index,
                    arrivals=tuple(pending_arrivals),
                    expirations=tuple(pending_expirations),
                    window_end=obj.t,
                )
                index += 1
                pending_arrivals = []
                pending_expirations = []
            continue

        if len(pending_arrivals) == query.s:
            pending_expirations = window.expire_oldest(query.s)
            yield SlideEvent(
                index=index,
                arrivals=tuple(pending_arrivals),
                expirations=tuple(pending_expirations),
                window_end=obj.t,
            )
            index += 1
            pending_arrivals = []
            pending_expirations = []


def time_based_slides(
    objects: Iterable[StreamObject], query: TopKQuery
) -> Iterator[SlideEvent]:
    """Generate slide events for a time-based window.

    ``query.n`` is the window duration and ``query.s`` the slide duration,
    both in the same time unit as ``StreamObject.t``.  A report is produced
    at every multiple of ``s`` once at least one full window duration has
    elapsed since the first object.  Objects are assumed sorted by ``t``.
    """
    if not query.time_based:
        raise InvalidQueryError("time_based_slides requires a time-based query")

    window = SlidingWindow()
    iterator = iter(objects)
    try:
        first = next(iterator)
    except StopIteration:
        return

    window.append(first)
    start_time = first.arrival_time
    pending_arrivals: List[StreamObject] = [first]
    # The first report covers the window ending at start_time + n.
    report_time = start_time + query.n
    index = 0

    def make_event(now: int, expirations: Sequence[StreamObject]) -> SlideEvent:
        # An object that arrives and falls out of the window before the very
        # first report was never visible to any consumer: drop it from both
        # lists instead of reporting a phantom expiration.
        expired_ids = {obj.t for obj in expirations}
        pending_ids = {obj.t for obj in pending_arrivals}
        visible_arrivals = [obj for obj in pending_arrivals if obj.t not in expired_ids]
        visible_expirations = [obj for obj in expirations if obj.t not in pending_ids]
        return SlideEvent(
            index=index,
            arrivals=tuple(visible_arrivals),
            expirations=tuple(visible_expirations),
            window_end=now,
        )

    for obj in iterator:
        while obj.arrival_time > report_time:
            expirations = window.expire_older_than(report_time - query.n + 1)
            yield make_event(report_time, expirations)
            index += 1
            pending_arrivals = []
            report_time += query.s
        window.append(obj)
        pending_arrivals.append(obj)

    # Final report covering the last full window.
    expirations = window.expire_older_than(report_time - query.n + 1)
    yield make_event(report_time, expirations)


def slides_for_query(
    objects: Iterable[StreamObject], query: TopKQuery
) -> Iterator[SlideEvent]:
    """Dispatch to the count-based or time-based slide generator."""
    if query.time_based:
        return time_based_slides(objects, query)
    return count_based_slides(objects, query)
