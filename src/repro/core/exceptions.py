"""Exception hierarchy for the SAP reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this library."""


class InvalidQueryError(ReproError):
    """Raised when a continuous top-k query specification is inconsistent.

    Examples: non-positive window size, a slide larger than the window, or a
    ``k`` larger than the window size.
    """


class InvalidPartitionError(ReproError):
    """Raised when a partitioning decision violates the SAP constraints.

    The SAP framework requires every partition to contain a whole number of
    slides and at least ``max(s, k)`` objects (Section 4 of the paper).
    """


class StreamExhaustedError(ReproError):
    """Raised when a stream source is asked for objects it cannot supply."""


class AlgorithmStateError(ReproError):
    """Raised when an algorithm is driven through an invalid state
    transition (for example, asking for results before the first full
    window has been observed)."""
