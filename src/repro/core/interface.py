"""Common interface of every continuous top-k algorithm in the library.

All algorithms — the SAP framework and the three competitors from the paper
(k-skyband, MinTopK, SMA) plus the brute-force oracle — consume the same
slide events produced by :mod:`repro.core.window` and emit one
:class:`~repro.core.result.TopKResult` per window position.  They also
expose the two bookkeeping quantities the paper's evaluation tracks:
the current candidate-set size and an estimate of the memory occupied by
the algorithm's own structures (excluding the raw stream).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List

from .query import TopKQuery
from .result import TopKResult
from .window import SlideEvent, slides_for_query
from ..core.object import StreamObject

#: Approximate footprint of one candidate record (object reference, score,
#: arrival order, counters).  Matches the scale of the per-candidate memory
#: the paper reports (tens of bytes per candidate).
OBJECT_FOOTPRINT_BYTES = 32
#: Approximate footprint of one auxiliary pointer (lbp entries, stack cells,
#: tree nodes, grid cell headers).
POINTER_FOOTPRINT_BYTES = 16


class ContinuousTopKAlgorithm(ABC):
    """Base class of every continuous top-k algorithm."""

    #: Display name used in benchmark tables.
    name: str = "algorithm"

    def __init__(self, query: TopKQuery) -> None:
        self.query = query

    # ------------------------------------------------------------------
    @abstractmethod
    def process_slide(self, event: SlideEvent) -> TopKResult:
        """Consume one window movement and return the current top-k."""

    # ------------------------------------------------------------------
    def candidate_count(self) -> int:
        """Number of candidate objects currently maintained.

        This is the quantity reported in Tables 6 and 7 of the paper.  The
        default of zero is only suitable for algorithms without a candidate
        set (the brute-force oracle).
        """
        return 0

    def memory_bytes(self) -> int:
        """Estimated memory footprint of the algorithm's own structures."""
        return self.candidate_count() * OBJECT_FOOTPRINT_BYTES

    # ------------------------------------------------------------------
    def run(self, objects: Iterable[StreamObject]) -> List[TopKResult]:
        """Convenience driver: push a whole stream through the algorithm."""
        return [self.process_slide(event) for event in slides_for_query(objects, self.query)]
