"""Common interface of every continuous top-k algorithm in the library.

All algorithms — the SAP framework and the three competitors from the paper
(k-skyband, MinTopK, SMA) plus the brute-force oracle — consume the same
slide events produced by :mod:`repro.core.window` and emit one
:class:`~repro.core.result.TopKResult` per window position.  They also
expose the two bookkeeping quantities the paper's evaluation tracks:
the current candidate-set size and an estimate of the memory occupied by
the algorithm's own structures (excluding the raw stream).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from .query import TopKQuery
from .result import TopKResult
from .shared import SharedPlan, SharedSlide
from .window import SlideBatcher, SlideEvent, slides_for_query
from ..core.object import StreamObject

#: Approximate footprint of one candidate record (object reference, score,
#: arrival order, counters).  Matches the scale of the per-candidate memory
#: the paper reports (tens of bytes per candidate).
OBJECT_FOOTPRINT_BYTES = 32
#: Approximate footprint of one auxiliary pointer (lbp entries, stack cells,
#: tree nodes, grid cell headers).
POINTER_FOOTPRINT_BYTES = 16


class ContinuousTopKAlgorithm(ABC):
    """Base class of every continuous top-k algorithm."""

    #: Display name used in benchmark tables.
    name: str = "algorithm"

    def __init__(self, query: TopKQuery) -> None:
        self.query = query
        self._push_batcher: Optional[SlideBatcher] = None

    # ------------------------------------------------------------------
    @abstractmethod
    def process_slide(self, event: SlideEvent) -> TopKResult:
        """Consume one window movement and return the current top-k."""

    # ------------------------------------------------------------------
    # Shared-slide lifecycle (multi-query execution plane)
    # ------------------------------------------------------------------
    # Queries that share the window shape ``(n, s)`` differ only in ``k``,
    # so the expensive per-slide work (partition sealing, skyband
    # maintenance, per-position predicted sets) can be done once at the
    # largest ``k`` and sliced per query.  The engine's QueryGroup asks
    # each algorithm whether — and with whom — it can share, through the
    # three hooks below.  The defaults decline: the algorithm then simply
    # receives the raw slide event of each shared slide, which keeps every
    # baseline correct without any opt-in work.
    def shared_plan_key(self) -> Optional[Hashable]:
        """Key identifying which co-windowed algorithms can share one plan.

        Algorithms returning equal keys (and sharing a window shape) are
        bucketed into one :class:`~repro.core.shared.SharedPlan`.  ``None``
        (the default) opts out of sharing entirely.
        """
        return None

    def build_shared_plan(self, subscriptions: Sequence[object]) -> Optional[SharedPlan]:
        """Create the sharing plan for a bucket of same-key subscriptions.

        Called once, on the first member of the bucket, before any object
        is processed.  Returning ``None`` (the default) leaves every member
        running independently.
        """
        return None

    def process_shared_slide(self, shared: SharedSlide) -> TopKResult:
        """Consume one window movement prepared by a shared plan.

        The default implementation ignores the shared artifacts and
        processes the raw event — the correct fallback for algorithms
        that cannot exploit cross-query sharing.
        """
        return self.process_slide(shared.event)

    # ------------------------------------------------------------------
    # Live re-planning (adaptive control plane)
    # ------------------------------------------------------------------
    # The control plane (:mod:`repro.control`) can replace a running
    # algorithm at a slide boundary: a fresh instance is built, fast-
    # forwarded to the stream position, and fed the live window contents as
    # one synthetic slide event.  Both hooks have safe defaults; algorithms
    # with construction-time configuration override ``respawn`` and
    # algorithms with an internal slide clock override ``fast_forward``.
    def respawn(self) -> "ContinuousTopKAlgorithm":
        """A fresh instance with this instance's configuration, empty state.

        The default rebuilds from the query alone, which is correct for
        every algorithm whose constructor signature is ``cls(query)``.

        This is also the serialization contract of the library
        (:mod:`repro.core.state`): the respawned instance must (a) carry
        *every* construction-time option, not just the query, and (b) be
        picklable, because transportable state is ``respawn() + window +
        slide index`` — a restored instance is fast-forwarded and fed the
        captured window as one synthetic slide, after which it must produce
        byte-identical results to the uninterrupted original.  Algorithms
        with extra constructor options must override this (see
        :meth:`repro.baselines.sma.SMATopK.respawn`).
        """
        return type(self)(self.query)

    def fast_forward(self, slide_index: int) -> None:
        """Align any internal slide clock to ``slide_index`` before a
        mid-stream rebuild replays the live window.  The default is a
        no-op: most algorithms derive their position from the events.
        Called on *fresh* instances only — both by the control plane's
        live rebuilds and by state restores across process boundaries."""

    def capture_state(self, window: Sequence[StreamObject], slide_index: Optional[int]):
        """Transportable state at a slide boundary (see
        :mod:`repro.core.state`): a versioned, picklable record from which
        :func:`repro.core.state.restore_algorithm` rebuilds an equivalent
        live instance in any process.
        """
        from .state import capture_algorithm

        return capture_algorithm(self, tuple(window), slide_index)

    # ------------------------------------------------------------------
    def candidate_count(self) -> int:
        """Number of candidate objects currently maintained.

        This is the quantity reported in Tables 6 and 7 of the paper.  The
        default of zero is only suitable for algorithms without a candidate
        set (the brute-force oracle).
        """
        return 0

    def memory_bytes(self) -> int:
        """Estimated memory footprint of the algorithm's own structures."""
        return self.candidate_count() * OBJECT_FOOTPRINT_BYTES

    # ------------------------------------------------------------------
    # Push lifecycle
    # ------------------------------------------------------------------
    # Algorithms consume slide events, but callers usually hold raw stream
    # objects.  ``push``/``finish`` bridge the two with an internal slide
    # batcher so any algorithm can be driven one object at a time; the
    # :class:`repro.engine.StreamEngine` facade builds on the same model
    # (with its own batcher, so it can share one pass across queries).
    def push(self, obj: StreamObject) -> List[TopKResult]:
        """Feed one stream object; return the answers it completed (0+)."""
        if self._push_batcher is None:
            self._push_batcher = SlideBatcher(self.query)
        return [self.process_slide(event) for event in self._push_batcher.push(obj)]

    def finish(self) -> List[TopKResult]:
        """Signal end-of-stream: emit a time-based window's final report."""
        if self._push_batcher is None:
            return []
        return [self.process_slide(event) for event in self._push_batcher.flush()]

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time description of the algorithm's state."""
        return {
            "algorithm": self.name,
            "query": self.query.describe(),
            "candidate_count": self.candidate_count(),
            "memory_bytes": self.memory_bytes(),
        }

    def close(self) -> None:
        """Release per-run resources.  The default implementation is a no-op
        hook; algorithms holding external resources override it."""

    # ------------------------------------------------------------------
    def run(self, objects: Iterable[StreamObject]) -> List[TopKResult]:
        """Convenience driver: push a whole stream through the algorithm."""
        return [self.process_slide(event) for event in slides_for_query(objects, self.query)]
