"""Partitions (sub-windows) of the SAP framework.

A partition ``P_i`` is a contiguous run of stream objects.  The framework
keeps, for every sealed partition, its full object list (needed to form the
meaningful object set when the partition reaches the front of the window),
its local top-k ``P_i^k``, and — when the partition was produced by the
enhanced dynamic partitioner — the per-unit summaries ``L_i`` used by the
segmentation-based S-AVL construction (UBSA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .object import StreamObject, top_k

RankKey = Tuple[float, int]


@dataclass
class UnitSummary:
    """Summary ``L_i[v]`` of one unit of a partition (Section 4.3).

    ``start`` / ``end`` delimit the unit inside the partition's object list
    (``end`` exclusive).  For a k-unit the summary holds the unit's true
    top-k objects ``U_v^k``; for a non-k-unit it holds only the single
    highest-scored object.
    """

    start: int
    end: int
    is_k_unit: bool
    summary: List[StreamObject]

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def max_key(self) -> RankKey:
        return max(obj.rank_key for obj in self.summary)

    @property
    def min_summary_key(self) -> RankKey:
        return min(obj.rank_key for obj in self.summary)


@dataclass
class PartitionSpec:
    """Decision returned by a partitioner: seal these pending objects as a
    new partition, optionally with unit metadata for UBSA."""

    objects: List[StreamObject]
    units: Optional[List[UnitSummary]] = None

    @property
    def size(self) -> int:
        return len(self.objects)


@dataclass
class Partition:
    """A sealed partition ``P_i`` of the query window."""

    partition_id: int
    objects: List[StreamObject]
    k: int
    units: Optional[List[UnitSummary]] = None
    #: How many of ``objects`` (a prefix) have already expired.
    expired_prefix: int = 0
    #: Group dominance number, computed when the partition becomes the front.
    rho: Optional[int] = None
    #: The local top-k ``P_i^k`` (best first), computed at seal time.
    topk: List[StreamObject] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.objects:
            raise ValueError("a partition cannot be empty")
        if not self.topk:
            self.topk = top_k(self.objects, self.k)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.objects)

    @property
    def live_count(self) -> int:
        return len(self.objects) - self.expired_prefix

    @property
    def fully_expired(self) -> bool:
        return self.expired_prefix >= len(self.objects)

    @property
    def kth_key(self) -> RankKey:
        """Rank key of the k-th best object of the partition (its weakest
        candidate)."""
        return self.topk[-1].rank_key

    @property
    def oldest_live_t(self) -> Optional[int]:
        if self.fully_expired:
            return None
        return self.objects[self.expired_prefix].t

    def topk_keys(self) -> List[RankKey]:
        return [obj.rank_key for obj in self.topk]

    def non_candidate_objects(self) -> List[StreamObject]:
        """Objects of the partition outside ``P_i^k`` (any order)."""
        candidate_keys = set(self.topk_keys())
        return [obj for obj in self.objects if obj.rank_key not in candidate_keys]

    def expire_one(self, obj: StreamObject) -> None:
        """Record the expiration of the partition's oldest live object."""
        expected = self.objects[self.expired_prefix]
        if expected.t != obj.t:
            raise ValueError(
                f"expiration order violated: expected t={expected.t}, got t={obj.t}"
            )
        self.expired_prefix += 1


def build_partition(
    partition_id: int,
    objects: Sequence[StreamObject],
    k: int,
    units: Optional[List[UnitSummary]] = None,
) -> Partition:
    """Create a sealed partition, deriving ``P_i^k`` from unit summaries when
    available (the union of unit summaries is a superset of the partition's
    top-k) and from a direct scan otherwise."""
    objects = list(objects)
    if units:
        pool: List[StreamObject] = []
        for unit in units:
            pool.extend(unit.summary)
        topk = top_k(pool, k)
        # Unit summaries of non-k-units only keep the top-1 object, so for
        # very small partitions the pooled summaries may not contain k
        # objects; fall back to a direct scan in that case.
        if len(topk) < min(k, len(objects)):
            topk = top_k(objects, k)
    else:
        topk = top_k(objects, k)
    return Partition(
        partition_id=partition_id, objects=objects, k=k, units=units, topk=topk
    )
