"""Partitions (sub-windows) of the SAP framework.

A partition ``P_i`` is a contiguous run of stream objects.  The framework
keeps, for every sealed partition, its full object list (needed to form the
meaningful object set when the partition reaches the front of the window),
its local top-k ``P_i^k``, and — when the partition was produced by the
enhanced dynamic partitioner — the per-unit summaries ``L_i`` used by the
segmentation-based S-AVL construction (UBSA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .columnar import topk_objects
from .object import StreamObject

RankKey = Tuple[float, int]


@dataclass
class UnitSummary:
    """Summary ``L_i[v]`` of one unit of a partition (Section 4.3).

    ``start`` / ``end`` delimit the unit inside the partition's object list
    (``end`` exclusive).  For a k-unit the summary holds the unit's true
    top-k objects ``U_v^k``; for a non-k-unit it holds only the single
    highest-scored object.
    """

    start: int
    end: int
    is_k_unit: bool
    summary: List[StreamObject]

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def max_key(self) -> RankKey:
        return max(obj.rank_key for obj in self.summary)

    @property
    def min_summary_key(self) -> RankKey:
        return min(obj.rank_key for obj in self.summary)


@dataclass
class PartitionSpec:
    """Decision returned by a partitioner: seal these pending objects as a
    new partition, optionally with unit metadata for UBSA."""

    objects: List[StreamObject]
    units: Optional[List[UnitSummary]] = None

    @property
    def size(self) -> int:
        return len(self.objects)


@dataclass
class Partition:
    """A sealed partition ``P_i`` of the query window."""

    partition_id: int
    objects: List[StreamObject]
    k: int
    units: Optional[List[UnitSummary]] = None
    #: How many of ``objects`` (a prefix) have already expired.
    expired_prefix: int = 0
    #: Group dominance number, computed when the partition becomes the front.
    rho: Optional[int] = None
    #: The local top-k ``P_i^k`` (best first), computed at seal time.
    topk: List[StreamObject] = field(default_factory=list)
    #: Lazy caches over ``topk``; rebuilt after seal/insert via
    #: :meth:`invalidate_caches`.
    _topk_keys: Optional[List[RankKey]] = field(
        default=None, repr=False, compare=False
    )
    _candidate_keys: Optional[set] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.objects:
            raise ValueError("a partition cannot be empty")
        if not self.topk:
            self.topk = topk_objects(self.objects, self.k)
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop the derived-key caches (call after replacing ``topk``)."""
        self._topk_keys = None
        self._candidate_keys = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.objects)

    @property
    def live_count(self) -> int:
        return len(self.objects) - self.expired_prefix

    @property
    def fully_expired(self) -> bool:
        return self.expired_prefix >= len(self.objects)

    @property
    def kth_key(self) -> RankKey:
        """Rank key of the k-th best object of the partition (its weakest
        candidate)."""
        return self.topk[-1].rank_key

    @property
    def oldest_live_t(self) -> Optional[int]:
        if self.fully_expired:
            return None
        return self.objects[self.expired_prefix].t

    def topk_keys(self) -> List[RankKey]:
        if self._topk_keys is None:
            self._topk_keys = [obj.rank_key for obj in self.topk]
        return self._topk_keys

    @property
    def candidate_keys(self) -> set:
        """The rank keys of ``P_i^k`` as a set (cached)."""
        if self._candidate_keys is None:
            self._candidate_keys = set(self.topk_keys())
        return self._candidate_keys

    def non_candidate_objects(self) -> List[StreamObject]:
        """Objects of the partition outside ``P_i^k`` (any order)."""
        candidate_keys = self.candidate_keys
        return [obj for obj in self.objects if obj.rank_key not in candidate_keys]

    def expire_one(self, obj: StreamObject) -> None:
        """Record the expiration of the partition's oldest live object."""
        expected = self.objects[self.expired_prefix]
        if expected.t != obj.t:
            raise ValueError(
                f"expiration order violated: expected t={expected.t}, got t={obj.t}"
            )
        self.expired_prefix += 1

    def expire_batch(self, objs: Sequence[StreamObject]) -> None:
        """Record the expiration of a run of oldest live objects at once.

        Equivalent to calling :meth:`expire_one` for each object, including
        which object a mismatch is reported for, but advances the expired
        prefix in one step."""
        start = self.expired_prefix
        end = start + len(objs)
        if end > len(self.objects):
            raise ValueError(
                f"expiring {len(objs)} objects but only "
                f"{len(self.objects) - start} remain live"
            )
        expected = self.objects[start:end]
        for have, got in zip(expected, objs):
            if have.t != got.t:
                raise ValueError(
                    f"expiration order violated: expected t={have.t}, got t={got.t}"
                )
        self.expired_prefix = end


def build_partition(
    partition_id: int,
    objects: Sequence[StreamObject],
    k: int,
    units: Optional[List[UnitSummary]] = None,
) -> Partition:
    """Create a sealed partition, deriving ``P_i^k`` from unit summaries when
    available (the union of unit summaries is a superset of the partition's
    top-k) and from a direct scan otherwise."""
    objects = list(objects)
    if units:
        pool: List[StreamObject] = []
        for unit in units:
            pool.extend(unit.summary)
        topk = topk_objects(pool, k)
        # Unit summaries of non-k-units only keep the top-1 object, so for
        # very small partitions the pooled summaries may not contain k
        # objects; fall back to a direct scan in that case.
        if len(topk) < min(k, len(objects)):
            topk = topk_objects(objects, k)
    else:
        topk = topk_objects(objects, k)
    return Partition(
        partition_id=partition_id, objects=objects, k=k, units=units, topk=topk
    )
