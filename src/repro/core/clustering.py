"""Preference clustering: cross-function plan sharing (ROADMAP item 5).

The shared multi-query plane (:mod:`repro.core.shared`) dedupes
subscriptions that differ only in ``k`` inside one window shape; this
module extends plan sharing across *scoring functions*.  Every member
declares a linear preference vector ``w`` over non-negative attribute
vectors carried in the stream payloads (``score_w(x) = w · x``, the
``F = price × volume`` shape of the paper's application scenarios).
Similar vectors are clustered (:class:`ClusterSpace`); one shared plan
per cluster (:class:`ClusterSharedPlan`) runs a single registry
algorithm at a padded result size ``k_pad`` over the cluster's
*dominating score bound*, and each member answers by vectorized
re-ranking of the shared candidate set.

Why this is exact
-----------------
Let ``U`` be the cluster's **upper envelope**: the elementwise maximum of
the member vectors.  For any member ``w`` (so ``w <= U`` elementwise) and
any attribute vector ``x >= 0``::

    score_w(x) = w · x  <=  U · x = score_U(x)

The shared core maintains the exact top-``k_pad`` of the window under
``score_U``.  Let ``tau_U`` be the ``k_pad``-th best ``U``-score.  Every
object *outside* the candidate set has ``score_w <= score_U <= tau_U``,
so whenever a member's ``k``-th best candidate ``w``-score is *strictly*
greater than ``tau_U`` (strict, so total-order ties on ``(score, t)``
cannot sneak an outside object in), the member's exact top-k is a subset
of the candidates — the **exactness guard**.  When the guard fails (or an
object with a negative attribute taints the window, or a member's vector
drifts above the envelope after :meth:`ClusteredTopK.update_vector`), the
member falls back to a vectorized full-window scan, which is exact by
construction; the fallback and drift counters are MAPE-K-visible so the
control plane can re-cluster.

Byte-identity
-------------
All paths — shared re-ranking, the fallback scan, the private per-member
plan, and any independent engine fed a pre-scored stream — must produce
bit-identical float scores.  They all funnel through one canonical
scorer, :func:`linear_scores`: with numpy, an elementwise product
followed by a *row-wise* reduction (``(m * w).sum(axis=1)``), whose
pairwise summation depends only on the vector dimension, never on the
batch size; without numpy, an exactly-rounded ``math.fsum`` per object.
The backend can change the rounding between installs, never within one
process — which is what the byte-identity property tests compare.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..obs.registry import get_registry
from .exceptions import AlgorithmStateError, InvalidQueryError
from .interface import (
    OBJECT_FOOTPRINT_BYTES,
    POINTER_FOOTPRINT_BYTES,
    ContinuousTopKAlgorithm,
)
from .object import StreamObject
from .query import TopKQuery
from .result import TopKResult
from .shared import SharedPlan, SharedSlide
from .window import SlideEvent

try:  # pragma: no cover - exercised via both-backend parametrized tests
    import numpy as _np
except ImportError:  # pragma: no cover - the stdlib fallback path
    _np = None

__all__ = [
    "DEFAULT_PAD_FACTOR",
    "DEFAULT_SIMILARITY",
    "ClusterSpace",
    "ClusterSharedPlan",
    "ClusteredTopK",
    "attributes_of",
    "k_pad_for",
    "linear_score",
    "linear_scores",
    "upper_envelope",
    "validate_vector",
]

#: Default padding of the shared candidate set: ``k_pad ~ 4 * k_max``.
#: Larger pads make the exactness guard pass more often (fewer fallback
#: scans) at the cost of a bigger shared core; 4x keeps the guard hit
#: rate high for clusters of cosine-similar vectors while the core stays
#: O(k) sized.
DEFAULT_PAD_FACTOR = 4.0

#: Default cosine-similarity threshold of :class:`ClusterSpace`: vectors
#: at least this similar to a cluster's centroid join that cluster.  The
#: threshold is deliberately tight: preference vectors are non-negative,
#: and in the positive orthant even unrelated tastes measure ~0.9 cosine
#: similarity, so a loose threshold would merge everything into one
#: cluster whose envelope is too wide for the exactness guard to hold
#: (every answer degrades to a fallback scan).  0.995 admits small
#: per-user perturbations of a shared taste (~±10% per weight) while
#: keeping distinct tastes in separate clusters.
DEFAULT_SIMILARITY = 0.995

#: Score of an object whose payload carries no usable attribute vector.
#: Used identically by every scoring path so such objects can never
#: break byte-identity (they sort last, oldest last).
UNATTRIBUTED_SCORE = float("-inf")


# ----------------------------------------------------------------------
# Preference vectors and attribute extraction
# ----------------------------------------------------------------------
def validate_vector(vector: Sequence[float]) -> Tuple[float, ...]:
    """Normalise a preference vector to a tuple of floats, or raise.

    Weights must be finite and non-negative (the dominance bound
    ``w <= U  =>  score_w <= score_U`` needs ``x >= 0`` *and* ``w >= 0``
    for the envelope maths to stay one-sided), and at least one weight
    must be positive (an all-zero vector scores everything 0.0 and has
    no direction to cluster by).
    """
    try:
        values = tuple(float(value) for value in vector)
    except (TypeError, ValueError) as exc:
        raise InvalidQueryError(f"preference vector is not numeric: {exc}") from None
    if not values:
        raise InvalidQueryError("preference vector must not be empty")
    for value in values:
        if math.isnan(value) or math.isinf(value):
            raise InvalidQueryError(
                f"preference weights must be finite, got {value!r}"
            )
        if value < 0:
            raise InvalidQueryError(
                f"preference weights must be non-negative, got {value!r} "
                "(the cluster dominance bound requires w >= 0)"
            )
    if not any(values):
        raise InvalidQueryError("preference vector must have a positive weight")
    return values


def attributes_of(obj: StreamObject, dim: int) -> Optional[Tuple[float, ...]]:
    """The attribute vector of one stream object's payload, or ``None``.

    Recognised payload shapes, checked in order:

    * a mapping with an ``"attributes"`` (or ``"attrs"``) entry holding a
      numeric sequence of length ``dim``;
    * an object with an ``attributes`` attribute of that shape;
    * a bare numeric sequence of length ``dim``.

    Anything else — including a right-shaped sequence with a non-numeric
    entry — yields ``None``, and every scoring path prices the object at
    :data:`UNATTRIBUTED_SCORE` (counted per cluster).
    """
    return attributes_of_payload(obj.payload, dim)


def attributes_of_payload(payload: object, dim: int) -> Optional[Tuple[float, ...]]:
    """:func:`attributes_of` over a raw record instead of a StreamObject
    (the shape used by stream sources scoring records before wrapping)."""
    if payload is None:
        return None
    candidate = None
    if isinstance(payload, dict):
        candidate = payload.get("attributes", payload.get("attrs"))
    else:
        candidate = getattr(payload, "attributes", None)
        if candidate is None and not isinstance(payload, (str, bytes)):
            candidate = payload
    if candidate is None:
        return None
    try:
        values = tuple(float(value) for value in candidate)
    except (TypeError, ValueError):
        return None
    if len(values) != dim:
        return None
    for value in values:
        if math.isnan(value):
            return None
    return values


def linear_scores(
    weights: Sequence[float], rows: Sequence[Optional[Sequence[float]]]
) -> List[float]:
    """Canonical batch scorer: ``w · x`` per row, ``None`` rows -> -inf.

    This is the *only* routine that turns attributes into scores — the
    shared re-ranking path, the fallback scan, the private plan, and the
    independent baselines of the property tests all call it, so their
    floats are bit-identical (see the module docstring on why the numpy
    reduction is batch-size independent).
    """
    present = [row for row in rows if row is not None]
    if not present:
        return [UNATTRIBUTED_SCORE] * len(rows)
    if _np is not None:
        matrix = _np.ascontiguousarray(present, dtype=_np.float64)
        w = _np.asarray(weights, dtype=_np.float64)
        scored = iter((matrix * w).sum(axis=1).tolist())
    else:
        scored = iter(
            math.fsum(w * x for w, x in zip(weights, row)) for row in present
        )
    return [UNATTRIBUTED_SCORE if row is None else next(scored) for row in rows]


def linear_score(
    weights: Sequence[float], attributes: Optional[Sequence[float]]
) -> float:
    """Canonical single-object score (== ``linear_scores(w, [x])[0]``)."""
    return linear_scores(weights, [attributes])[0]


def upper_envelope(vectors: Sequence[Sequence[float]]) -> Tuple[float, ...]:
    """Elementwise maximum of same-dimension vectors (the cluster bound)."""
    if not vectors:
        raise ValueError("an envelope needs at least one vector")
    dims = {len(vector) for vector in vectors}
    if len(dims) != 1:
        raise InvalidQueryError(
            f"cluster members disagree on attribute dimension: {sorted(dims)}"
        )
    return tuple(max(column) for column in zip(*vectors))


def dominated_by(vector: Sequence[float], envelope: Sequence[float]) -> bool:
    """Whether ``vector <= envelope`` elementwise (the in-guard test)."""
    return len(vector) == len(envelope) and all(
        v <= u for v, u in zip(vector, envelope)
    )


def k_pad_for(k_max: int, n: int, pad_factor: float = DEFAULT_PAD_FACTOR) -> int:
    """Padded shared result size: ``min(n, max(k_max + 1, ceil(k_max * f)))``.

    At least ``k_max + 1`` so the guard can ever be strict, at most the
    window size (a core at ``k = n`` is just the sorted window).
    """
    if pad_factor < 1.0:
        raise InvalidQueryError(f"pad_factor must be >= 1, got {pad_factor}")
    return min(n, max(k_max + 1, int(math.ceil(k_max * pad_factor))))


# ----------------------------------------------------------------------
# Cluster assignment (greedy online centroid fit)
# ----------------------------------------------------------------------
class ClusterSpace:
    """Greedy online clustering of preference vectors by cosine similarity.

    ``assign`` matches a vector against the existing cluster centroids of
    its dimension: the first (lowest-id) centroid at least ``similarity``
    cosine-similar wins and absorbs the vector into its running mean;
    otherwise a fresh cluster is opened.  Assignment is deterministic in
    arrival order, which is what lets the sharded facade and a local
    engine agree on ids without talking to each other: whoever owns the
    space assigns, and the id travels with the subscription.
    """

    def __init__(self, similarity: float = DEFAULT_SIMILARITY) -> None:
        if not 0.0 < similarity <= 1.0:
            raise ValueError(f"similarity must be in (0, 1], got {similarity}")
        self.similarity = similarity
        # id -> (weight sums, member count); centroid = sums / count.
        self._centroids: Dict[int, Tuple[List[float], int]] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._centroids)

    @staticmethod
    def _cosine(left: Sequence[float], right: Sequence[float]) -> float:
        dot = math.fsum(a * b for a, b in zip(left, right))
        norms = math.sqrt(
            math.fsum(a * a for a in left) * math.fsum(b * b for b in right)
        )
        return dot / norms if norms > 0 else 0.0

    def assign(self, vector: Sequence[float]) -> int:
        """The cluster id for ``vector`` (existing when similar, else new)."""
        vector = validate_vector(vector)
        for cluster_id in sorted(self._centroids):
            sums, count = self._centroids[cluster_id]
            if len(sums) != len(vector):
                continue
            centroid = [value / count for value in sums]
            if self._cosine(vector, centroid) >= self.similarity:
                self._centroids[cluster_id] = (
                    [a + b for a, b in zip(sums, vector)],
                    count + 1,
                )
                return cluster_id
        cluster_id = self._next_id
        self._next_id += 1
        self._centroids[cluster_id] = (list(vector), 1)
        return cluster_id

    def centroid(self, cluster_id: int) -> Tuple[float, ...]:
        sums, count = self._centroids[cluster_id]
        return tuple(value / count for value in sums)

    def describe(self) -> Dict[int, Dict[str, object]]:
        return {
            cluster_id: {"members": count, "centroid": self.centroid(cluster_id)}
            for cluster_id, (_, count) in sorted(self._centroids.items())
        }


# ----------------------------------------------------------------------
# The shared plan: one envelope core at k_pad, per-member re-ranking
# ----------------------------------------------------------------------
class _WindowEntry:
    """One live window object with its extracted attributes.

    ``u_scored`` is the object as the shared core saw it (envelope score,
    same ``t``): expirations must replay exactly the arrivals the core
    consumed, or its candidate bookkeeping desyncs.
    """

    __slots__ = ("obj", "attributes", "negative", "u_scored")

    def __init__(self, obj: StreamObject, attributes: Optional[Tuple[float, ...]]):
        self.obj = obj
        self.attributes = attributes
        self.negative = attributes is not None and any(a < 0 for a in attributes)
        self.u_scored: Optional[StreamObject] = None


class _PreparedSlide:
    """Per-slide shared state consumed by the member re-ranking path."""

    __slots__ = (
        "event",
        "candidates",
        "candidate_rows",
        "tau_u",
        "saturated",
        "tainted",
    )

    def __init__(self, event, candidates, candidate_rows, tau_u, saturated, tainted):
        self.event = event
        #: The shared core's top-k_pad window entries, best-first by U-score.
        self.candidates: List[_WindowEntry] = candidates
        #: Attribute rows of the candidates (None for unattributed ones).
        self.candidate_rows: List[Optional[Tuple[float, ...]]] = candidate_rows
        #: U-score of the k_pad-th candidate (the guard threshold).
        self.tau_u: float = tau_u
        #: Whether the candidate set is full (|C| == k_pad): only then can
        #: an object exist outside it.
        self.saturated: bool = saturated
        #: Whether the live window holds any negative attribute (dominance
        #: bound invalid -> every member must scan).
        self.tainted: bool = tainted


class _SlideBatch:
    """One slide's vectorized member scores: ``scores[row_of[w]]`` holds
    ``w``'s candidate scores, ``order[row_of[w]]`` the full descending
    ``(score, t)`` rank (see :meth:`ClusterSharedPlan._batch_for`)."""

    __slots__ = ("scores", "order", "row_of")

    def __init__(self, scores, order, row_of):
        self.scores = scores
        self.order = order
        self.row_of: Dict[Tuple[float, ...], int] = row_of


class ClusterSharedPlan(SharedPlan):
    """One shared execution plan for a cluster of preference queries.

    The plan re-scores every arrival under the cluster's upper envelope
    ``U``, drives one registry algorithm (the *inner core*, e.g. SAP or
    MinTopK) at ``k_pad`` over the ``U``-scored stream, and serves each
    member from the resulting candidate set via
    :meth:`answer_for` — a vectorized ``w``-re-rank guarded by the
    dominance bound, with an exact full-window scan as the fallback.
    """

    kind = "cluster"

    def __init__(self, subscriptions: Sequence[object]) -> None:
        super().__init__(subscriptions)
        algorithms = [sub.algorithm for sub in self._subs]
        first = algorithms[0]
        for algorithm in algorithms:
            if not isinstance(algorithm, ClusteredTopK):
                raise AlgorithmStateError(
                    "cluster plans only host ClusteredTopK members"
                )
        self.cluster_id = first.cluster_id
        self.inner_name = first.inner_name
        self.envelope = upper_envelope([a.vector for a in algorithms])
        self.dim = len(self.envelope)
        query = first.query
        self.k_pad = k_pad_for(
            self.k_max, query.n, max(a.pad_factor for a in algorithms)
        )
        from ..registry import create_algorithm  # lazy: avoids import cycle

        self._core = create_algorithm(
            self.inner_name,
            TopKQuery(
                n=query.n, k=self.k_pad, s=query.s, time_based=query.time_based
            ),
            **first.inner_options,
        )
        #: Live window entries, oldest first (expiry pops from the left —
        #: sliding windows expire in exactly arrival order).
        self._window: Deque[_WindowEntry] = deque()
        self._by_t: Dict[int, _WindowEntry] = {}
        self._negatives = 0
        self._unattributed = 0
        self._current: Optional[_PreparedSlide] = None
        self._batch: Optional[_SlideBatch] = None
        self._scan_state: Optional[tuple] = None
        self._window_scan_cache: Dict[Tuple[float, ...], List[float]] = {}
        registry = get_registry()
        labels = {"cluster": str(self.cluster_id), "inner": self.inner_name}
        self._obs_rerank = registry.counter(
            "repro_cluster_rerank_total",
            "Member answers served by re-ranking the shared candidate set.",
            labels,
        )
        self._obs_fallback = registry.counter(
            "repro_cluster_fallback_total",
            "Member answers that fell back to an exact full-window scan.",
            labels,
        )
        self._obs_unattributed = registry.counter(
            "repro_cluster_unattributed_total",
            "Window objects whose payloads carried no usable attributes.",
            labels,
        )
        self._obs_members = registry.gauge(
            "repro_cluster_members",
            "Open member subscriptions of this cluster plan.",
            labels,
        )
        self.rerank_count = 0
        self.fallback_count = 0
        for algorithm in algorithms:
            algorithm.join_shared_plan(self)

    # ------------------------------------------------------------------
    def fast_forward(self, slide_index: int) -> None:
        self._core.fast_forward(slide_index)

    def candidate_count(self) -> int:
        return self._core.candidate_count() + len(self._window)

    def memory_bytes(self) -> int:
        per_entry = OBJECT_FOOTPRINT_BYTES + self.dim * POINTER_FOOTPRINT_BYTES // 2
        return self._core.memory_bytes() + len(self._window) * per_entry

    def describe(self) -> Dict[str, object]:
        record = super().describe()
        record.update(
            {
                "cluster_id": self.cluster_id,
                "inner": self.inner_name,
                "k_pad": self.k_pad,
                "dim": self.dim,
                "reranks": self.rerank_count,
                "fallbacks": self.fallback_count,
            }
        )
        return record

    # ------------------------------------------------------------------
    def _ingest(
        self, event: SlideEvent
    ) -> Tuple[Tuple[StreamObject, ...], Tuple[StreamObject, ...]]:
        """Maintain the raw window mirror; return the U-scored
        ``(arrivals, expirations)`` of the envelope event."""
        entries = []
        for obj in event.arrivals:
            entry = _WindowEntry(obj, attributes_of(obj, self.dim))
            if entry.attributes is None:
                self._unattributed += 1
                self._obs_unattributed.inc()
            if entry.negative:
                self._negatives += 1
            self._window.append(entry)
            self._by_t[obj.t] = entry
            entries.append(entry)
        scores = linear_scores(
            self.envelope, [entry.attributes for entry in entries]
        )
        for entry, score in zip(entries, scores):
            entry.u_scored = StreamObject(
                score=score,
                t=entry.obj.t,
                payload=entry.obj.payload,
                timestamp=entry.obj.timestamp,
            )
        expired_scored = []
        for expired in event.expirations:
            entry = self._window.popleft()
            if entry.obj.t != expired.t:  # pragma: no cover - invariant
                raise AlgorithmStateError(
                    "cluster plan window desynced from the group batcher: "
                    f"expired t={expired.t}, mirror head t={entry.obj.t}"
                )
            if self._by_t.get(entry.obj.t) is entry:
                del self._by_t[entry.obj.t]
            if entry.negative:
                self._negatives -= 1
            expired_scored.append(entry.u_scored)
        return (
            tuple(entry.u_scored for entry in entries),
            tuple(expired_scored),
        )

    def prepare(self, event: SlideEvent) -> SharedSlide:
        started = time.perf_counter()
        scored_arrivals, scored_expirations = self._ingest(event)
        envelope_event = SlideEvent(
            index=event.index,
            arrivals=scored_arrivals,
            expirations=scored_expirations,
            window_end=event.window_end,
        )
        result = self._core.process_slide(envelope_event)
        candidates = [self._by_t[obj.t] for obj in result.objects]
        saturated = len(candidates) >= self.k_pad
        prepared = _PreparedSlide(
            event=event,
            candidates=candidates,
            candidate_rows=[entry.attributes for entry in candidates],
            tau_u=result.objects[-1].score if saturated else UNATTRIBUTED_SCORE,
            saturated=saturated,
            tainted=self._negatives > 0,
        )
        self._current = prepared
        self._batch = None
        self._scan_state = None
        self._window_scan_cache.clear()
        members = self.open_member_count() or 1
        self._obs_members.set(members)
        prep = time.perf_counter() - started
        return SharedSlide(
            event=event,
            window_topk=result.objects,
            prep_share=prep / members,
        )

    # ------------------------------------------------------------------
    def _batch_for(self, prepared: _PreparedSlide) -> Optional["_SlideBatch"]:
        """All members' candidate scores and ranks, computed in one pass.

        Built lazily on the slide's first member answer: one elementwise
        product + row reduction scores every distinct member vector
        against every candidate, and one 2-D lexsort ranks all of them —
        the per-user Python loop of ``linear_scores`` + ``_rank`` becomes
        two numpy calls per slide regardless of member count.  The
        reduction runs along the attribute axis exactly like the
        canonical scorer's ``(m * w).sum(axis=1)``, so the floats stay
        bit-identical to a per-member scoring pass.  ``None`` when numpy
        is missing (members fall back to the per-member path).
        """
        if self._batch is not None:
            return self._batch
        if _np is None or not prepared.candidates:
            return None
        row_of: Dict[Tuple[float, ...], int] = {}
        for sub in self._subs:
            algorithm = sub.algorithm
            if algorithm.drifted or algorithm.vector in row_of:
                continue
            row_of[algorithm.vector] = len(row_of)
        if not row_of:
            return None
        weights = _np.ascontiguousarray(list(row_of), dtype=_np.float64)
        rows = prepared.candidate_rows
        missing = [index for index, row in enumerate(rows) if row is None]
        matrix = _np.ascontiguousarray(
            [row if row is not None else (0.0,) * self.dim for row in rows],
            dtype=_np.float64,
        )
        scores = (weights[:, None, :] * matrix[None, :, :]).sum(axis=2)
        if missing:
            scores[:, missing] = UNATTRIBUTED_SCORE
        ts = _np.asarray([entry.obj.t for entry in prepared.candidates], dtype=_np.int64)
        order = _np.lexsort(
            (_np.broadcast_to(ts, scores.shape), scores), axis=-1
        )[:, ::-1]
        self._batch = _SlideBatch(scores, order, row_of)
        return self._batch

    def answer_for(self, member: "ClusteredTopK", shared: SharedSlide) -> TopKResult:
        """One member's exact answer for the slide just prepared."""
        prepared = self._current
        if prepared is None or prepared.event is not shared.event:
            raise AlgorithmStateError(
                "cluster member asked about a slide the plan did not prepare"
            )
        event = prepared.event
        k = member.query.k
        if not member.drifted and not prepared.tainted:
            batch = self._batch_for(prepared)
            if batch is not None and member.vector in batch.row_of:
                row = batch.row_of[member.vector]
                scores = batch.scores[row]
                order = batch.order[row]
                exact = not prepared.saturated or (
                    order.shape[0] >= k and scores[order[k - 1]] > prepared.tau_u
                )
                if exact:
                    self.rerank_count += 1
                    self._obs_rerank.inc()
                    return _result_from(
                        event,
                        k,
                        prepared.candidates,
                        scores.tolist(),
                        order[:k].tolist(),
                    )
            else:
                scores = linear_scores(member.vector, prepared.candidate_rows)
                order = _rank(scores, [c.obj.t for c in prepared.candidates], k)
                exact = not prepared.saturated or (
                    len(order) >= k and scores[order[k - 1]] > prepared.tau_u
                )
                if exact:
                    self.rerank_count += 1
                    self._obs_rerank.inc()
                    return _result_from(
                        event, k, prepared.candidates, scores, order
                    )
        self.fallback_count += 1
        self._obs_fallback.inc()
        return self._scan(member, event, k)

    def _scan(
        self, member: "ClusteredTopK", event: SlideEvent, k: int
    ) -> TopKResult:
        """Exact vectorized full-window scan (guard failed / tainted /
        drifted).  The window's attribute matrix is materialised once per
        slide and shared by every scanning member (the slide's dominant
        cost is otherwise rebuilding it per member), and per-slide scores
        are cached per vector so members sharing one drifted vector pay
        the scoring once."""
        scan = self._scan_state
        if scan is None or scan[0] is not event:
            entries = list(self._window)
            ts = [entry.obj.t for entry in entries]
            matrix = missing = None
            if _np is not None and entries:
                rows = [entry.attributes for entry in entries]
                missing = [i for i, row in enumerate(rows) if row is None]
                matrix = _np.ascontiguousarray(
                    [row if row is not None else (0.0,) * self.dim for row in rows],
                    dtype=_np.float64,
                )
            scan = self._scan_state = (event, entries, ts, matrix, missing)
            self._window_scan_cache.clear()
        _, entries, ts, matrix, missing = scan
        scores = self._window_scan_cache.get(member.vector)
        if scores is None:
            if matrix is not None:
                # Same elementwise-product row reduction as the canonical
                # scorer (bit-identical floats), over the shared matrix.
                weights = _np.asarray(member.vector, dtype=_np.float64)
                scored = (matrix * weights).sum(axis=1)
                if missing:
                    scored[missing] = UNATTRIBUTED_SCORE
                scores = scored.tolist()
            else:
                scores = linear_scores(
                    member.vector, [entry.attributes for entry in entries]
                )
            self._window_scan_cache[member.vector] = scores
        order = _rank(scores, ts, k)
        return _result_from(event, k, entries, scores, order)

    def member_vector_changed(
        self, member: "ClusteredTopK", vector: Tuple[float, ...]
    ) -> bool:
        """Whether ``vector`` still sits under the plan's envelope.

        The envelope is *not* recomputed on drift: widening it would
        invalidate the running core's scores.  A drifted member keeps its
        membership but answers by exact scan until re-clustered."""
        self._batch = None  # the batch keys member rows by vector
        return dominated_by(vector, self.envelope)


def _rank(scores: List[float], ts: List[int], k: int) -> List[int]:
    """Indices of the top-``k`` under ``(score, t)`` desc — vectorized
    when numpy is available (same lexsort as :mod:`repro.core.columnar`)."""
    size = len(scores)
    if size == 0:
        return []
    if _np is not None and size > 16:
        order = _np.lexsort(
            (_np.asarray(ts, dtype=_np.int64), _np.asarray(scores, dtype=_np.float64))
        )[::-1]
        return order[:k].tolist()
    order = sorted(range(size), key=lambda i: (scores[i], ts[i]), reverse=True)
    return order[:k]


def _result_from(
    event: SlideEvent,
    k: int,
    entries: Sequence[_WindowEntry],
    scores: List[float],
    order: Sequence[int],
) -> TopKResult:
    objects = tuple(
        StreamObject(
            score=scores[i],
            t=entries[i].obj.t,
            payload=entries[i].obj.payload,
            timestamp=entries[i].obj.timestamp,
        )
        for i in order[:k]
    )
    return TopKResult(
        slide_index=event.index, window_end=event.window_end, objects=objects
    )


# ----------------------------------------------------------------------
# The member algorithm
# ----------------------------------------------------------------------
class ClusteredTopK(ContinuousTopKAlgorithm):
    """Continuous top-k under a declared linear preference vector.

    The algorithm has two execution modes:

    * **shared** — when at least two co-windowed subscriptions carry the
      same ``(inner, cluster id)`` plan key, the query group forms one
      :class:`ClusterSharedPlan` and this member answers by re-ranking
      the plan's padded candidate set (exactness-guarded, scan fallback);
    * **private** — alone in its bucket (or restored into a fresh group),
      the member runs its own inner registry algorithm over the stream
      re-scored with its *own* vector: the per-user exact plan that the
      shared mode is benchmarked against.

    Either way the answers are byte-identical to an independent engine
    fed ``StreamObject(score=w·attributes(payload), t)`` — the property
    tests assert exactly that.
    """

    name = "clustered"

    def __init__(
        self,
        query: TopKQuery,
        *,
        vector: Sequence[float],
        cluster_id: int = 0,
        inner: str = "SAP",
        pad_factor: float = DEFAULT_PAD_FACTOR,
        **inner_options: object,
    ) -> None:
        super().__init__(query)
        self.vector = validate_vector(vector)
        self.cluster_id = int(cluster_id)
        self.inner_name = str(inner)
        self.pad_factor = float(pad_factor)
        if self.pad_factor < 1.0:
            raise InvalidQueryError(
                f"pad_factor must be >= 1, got {self.pad_factor}"
            )
        self.inner_options = dict(inner_options)
        self.drifted = False
        self._plan: Optional[ClusterSharedPlan] = None
        self._inner: Optional[ContinuousTopKAlgorithm] = None
        self._window: Deque[StreamObject] = deque()
        self._pending_fast_forward: Optional[int] = None
        self._slides = 0
        self._last_index: Optional[int] = None

    # ------------------------------------------------------------------
    # Plan membership
    # ------------------------------------------------------------------
    def shared_plan_key(self):
        return ("cluster", self.inner_name, self.cluster_id)

    def build_shared_plan(self, subscriptions: Sequence[object]) -> ClusterSharedPlan:
        return ClusterSharedPlan(subscriptions)

    def join_shared_plan(self, plan: ClusterSharedPlan) -> None:
        if self._slides:
            raise AlgorithmStateError(
                "cannot join a cluster plan after processing has begun"
            )
        self._plan = plan
        if not dominated_by(self.vector, plan.envelope):  # pragma: no cover
            # The envelope is the max over the members, so a founding
            # member is always dominated; only a buggy custom plan trips
            # this.
            self.drifted = True

    @property
    def mode(self) -> str:
        if self._plan is not None:
            return "drifted" if self.drifted else "shared"
        return "private"

    def cluster_info(self) -> Dict[str, object]:
        """The MAPE-K/serve-visible cluster record of this member."""
        record: Dict[str, object] = {
            "cluster_id": self.cluster_id,
            "mode": self.mode,
            "inner": self.inner_name,
            "dim": len(self.vector),
            "drifted": self.drifted,
        }
        if self._plan is not None:
            record["k_pad"] = self._plan.k_pad
            record["reranks"] = self._plan.rerank_count
            record["fallbacks"] = self._plan.fallback_count
        return record

    # ------------------------------------------------------------------
    # Private (per-user exact) path
    # ------------------------------------------------------------------
    def _ensure_inner(self) -> ContinuousTopKAlgorithm:
        if self._inner is None:
            from ..registry import create_algorithm  # lazy: import cycle

            self._inner = create_algorithm(
                self.inner_name, self.query, **self.inner_options
            )
            if self._pending_fast_forward is not None:
                self._inner.fast_forward(self._pending_fast_forward)
        return self._inner

    def _rescore(self, objects: Sequence[StreamObject]) -> List[StreamObject]:
        rows = [attributes_of(obj, len(self.vector)) for obj in objects]
        scores = linear_scores(self.vector, rows)
        return [
            StreamObject(
                score=score, t=obj.t, payload=obj.payload, timestamp=obj.timestamp
            )
            for obj, score in zip(objects, scores)
        ]

    def _rescored_event(self, event: SlideEvent) -> SlideEvent:
        arrivals = self._rescore(event.arrivals)
        self._window.extend(arrivals)
        expirations = []
        for expired in event.expirations:
            mine = self._window.popleft()
            if mine.t != expired.t:  # pragma: no cover - invariant
                raise AlgorithmStateError(
                    "private cluster window desynced from the group batcher"
                )
            expirations.append(mine)
        return SlideEvent(
            index=event.index,
            arrivals=tuple(arrivals),
            expirations=tuple(expirations),
            window_end=event.window_end,
        )

    def process_slide(self, event: SlideEvent) -> TopKResult:
        if self._plan is not None:
            # Plan members are always fed through the group's shared-slide
            # path (dispatch, prime, and rebuild all prepare the plan
            # first); a raw event here means the caller bypassed the plan.
            raise AlgorithmStateError(
                "a cluster plan member only consumes shared slides"
            )
        self._slides += 1
        self._last_index = event.index
        return self._ensure_inner().process_slide(self._rescored_event(event))

    def process_shared_slide(self, shared: SharedSlide) -> TopKResult:
        if self._plan is None:
            return self.process_slide(shared.event)
        self._slides += 1
        self._last_index = shared.event.index
        return self._plan.answer_for(self, shared)

    # ------------------------------------------------------------------
    # Vector updates (drift)
    # ------------------------------------------------------------------
    def update_vector(self, vector: Sequence[float]) -> Dict[str, object]:
        """Re-declare the preference vector mid-stream.

        Shared members whose new vector still sits under the plan's
        envelope keep re-ranking (the guard stays sound); vectors outside
        the envelope mark the member *drifted* — every subsequent answer
        is an exact full-window scan, and the drift counter tells the
        control plane it is time to re-cluster.  Private members rebuild
        their inner algorithm over the re-scored live window, which keeps
        the answer stream exact without touching the query group.
        """
        vector = validate_vector(vector)
        if len(vector) != len(self.vector):
            raise InvalidQueryError(
                f"preference dimension changed from {len(self.vector)} to "
                f"{len(vector)}; resubscribe instead"
            )
        if vector == self.vector:
            return self.cluster_info()
        self.vector = vector
        if self._plan is not None:
            was_drifted = self.drifted
            self.drifted = not self._plan.member_vector_changed(self, vector)
            if self.drifted and not was_drifted:
                get_registry().counter(
                    "repro_cluster_drift_total",
                    "Members whose updated vector left the cluster envelope.",
                    {"cluster": str(self.cluster_id), "inner": self.inner_name},
                ).inc()
        elif self._slides:
            self._rebuild_private()
        return self.cluster_info()

    def _rebuild_private(self) -> None:
        """Drain-and-replay the private inner over the re-scored window."""
        from .state import replay_event  # lazy: state imports interface

        raw = [
            StreamObject(
                score=0.0, t=obj.t, payload=obj.payload, timestamp=obj.timestamp
            )
            for obj in self._window
        ]
        self._window.clear()
        if self._inner is not None:
            self._inner.close()
        self._inner = None
        self._pending_fast_forward = self._last_index
        inner = self._ensure_inner()
        if raw and self._last_index is not None:
            rescored = self._rescore(raw)
            self._window.extend(rescored)
            inner.process_slide(
                replay_event(tuple(rescored), self._last_index)
            )

    # ------------------------------------------------------------------
    # Lifecycle / bookkeeping
    # ------------------------------------------------------------------
    def respawn(self) -> "ClusteredTopK":
        return ClusteredTopK(
            self.query,
            vector=self.vector,
            cluster_id=self.cluster_id,
            inner=self.inner_name,
            pad_factor=self.pad_factor,
            **self.inner_options,
        )

    def fast_forward(self, slide_index: int) -> None:
        self._pending_fast_forward = slide_index
        self._last_index = slide_index
        if self._inner is not None:
            self._inner.fast_forward(slide_index)

    def candidate_count(self) -> int:
        if self._plan is not None:
            return self._plan.candidate_count()
        if self._inner is not None:
            return self._inner.candidate_count()
        return 0

    def memory_bytes(self) -> int:
        if self._plan is not None:
            return self._plan.memory_bytes() // max(
                1, len(self._plan.subscriptions())
            )
        if self._inner is not None:
            return self._inner.memory_bytes() + len(self._window) * (
                OBJECT_FOOTPRINT_BYTES + len(self.vector) * POINTER_FOOTPRINT_BYTES // 2
            )
        return 0

    def snapshot(self) -> Dict[str, object]:
        record = super().snapshot()
        record["cluster"] = self.cluster_info()
        return record

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()
