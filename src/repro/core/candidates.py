"""The SAP candidate set ``C = ∪ P_i^k`` with merge-and-refine maintenance.

Section 3.1 of the paper (Figure 4) describes how the top-k of a freshly
sealed partition is merged into the candidate set: both lists are scanned in
score order, every existing candidate receives a dominance-counter increment
equal to the number of newly merged objects that rank above it (those
objects arrived later, hence dominate it), and candidates whose counter
reaches ``k`` are removed — they can never become results again.

The class below implements exactly that merge, plus the order-statistic
queries the framework needs: the group dominance number ``P_i.ρ`` and the
global pruning threshold ``F_θ`` used by the S-AVL construction.

The set is backed by a sorted key list with a parallel entry list and a
``dict`` index rather than a balanced tree: the framework probes membership
far more often than it hits (expiration processing checks every leaving
object against ``C``), so the O(1) dict lookup makes the common miss free,
and the descending merge walk degenerates to a reversed slice scan over
contiguous lists — much cheaper constants than pointer-chasing an AVL, with
identical ordering semantics.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .object import StreamObject

RankKey = Tuple[float, int]


@dataclass
class CandidateEntry:
    """A candidate object together with its refinement bookkeeping."""

    obj: StreamObject
    partition_id: int
    dominance: int = 0

    @property
    def rank_key(self) -> RankKey:
        return self.obj.rank_key


class CandidateSet:
    """Ordered collection of candidate objects keyed by ``(score, t)``."""

    def __init__(self) -> None:
        #: Keys in ascending rank order, with the entries kept in lockstep.
        self._keys: List[RankKey] = []
        self._entries: List[CandidateEntry] = []
        self._index: Dict[RankKey, CandidateEntry] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, rank_key: RankKey) -> bool:
        return rank_key in self._index

    def get(self, rank_key: RankKey) -> Optional[CandidateEntry]:
        return self._index.get(rank_key)

    def iter_descending(self) -> Iterator[CandidateEntry]:
        return reversed(self._entries)

    def entries(self) -> List[CandidateEntry]:
        return list(self._entries)

    # ------------------------------------------------------------------
    def add(self, obj: StreamObject, partition_id: int, dominance: int = 0) -> CandidateEntry:
        """Insert a candidate (used for promotions from the S-AVL)."""
        entry = CandidateEntry(obj=obj, partition_id=partition_id, dominance=dominance)
        key = obj.rank_key
        if key in self._index:
            position = bisect_left(self._keys, key)
            self._entries[position] = entry
        else:
            position = bisect_left(self._keys, key)
            self._keys.insert(position, key)
            self._entries.insert(position, entry)
        self._index[key] = entry
        return entry

    def remove(self, rank_key: RankKey) -> Optional[CandidateEntry]:
        """Remove and return the entry with this key, if present."""
        entry = self._index.pop(rank_key, None)
        if entry is None:
            return None
        position = bisect_left(self._keys, rank_key)
        del self._keys[position]
        del self._entries[position]
        return entry

    # ------------------------------------------------------------------
    def merge_partition_topk(
        self, new_objects: Sequence[StreamObject], partition_id: int, k: int
    ) -> List[CandidateEntry]:
        """Merge a sealed partition's ``P_i^k`` into the candidate set.

        ``new_objects`` are the partition's top-k.  Every existing candidate
        receives a dominance increment equal to the number of new objects
        ranking above it; entries reaching ``k`` dominators are removed and
        returned so the framework can update its per-partition accounting.
        Finally the new objects are inserted with a dominance count of zero
        (nothing newer exists yet).
        """
        removed: List[CandidateEntry] = []
        if not new_objects:
            return removed
        ordered_new = sorted(new_objects, key=lambda o: o.rank_key, reverse=True)
        keys = self._keys
        entries = self._entries
        to_delete: List[int] = []
        new_index = 0
        seen_new = 0
        # Walk existing candidates best-first; the dominance increment for a
        # candidate is the count of new objects ranking above it.
        for position in range(len(keys) - 1, -1, -1):
            key = keys[position]
            while new_index < len(ordered_new) and ordered_new[new_index].rank_key > key:
                seen_new += 1
                new_index += 1
            if seen_new == 0:
                continue
            entry = entries[position]
            entry.dominance += seen_new
            if entry.dominance >= k:
                to_delete.append(position)
        # Positions were collected high-to-low, so in-place deletion is safe.
        for position in to_delete:
            removed.append(entries[position])
            del self._index[keys[position]]
            del keys[position]
            del entries[position]
        for obj in ordered_new:
            self.add(obj, partition_id=partition_id, dominance=0)
        return removed

    # ------------------------------------------------------------------
    # Queries used by the SAP framework
    # ------------------------------------------------------------------
    def top_entries(self, count: int) -> List[CandidateEntry]:
        """The ``count`` best candidates, best first."""
        if count <= 0:
            return []
        return self._entries[-count:][::-1]

    def top_scores(self, count: int) -> List[float]:
        """Scores of the best ``count`` candidates (for the WRT evaluation)."""
        return [entry.obj.score for entry in self.top_entries(count)]

    def group_dominance(self, kth_key: RankKey, partition_id: int, k: int) -> int:
        """Group dominance number ``P_i.ρ`` (Definition 1 of the paper).

        Counts candidates ranking above ``kth_key`` that belong to a
        different partition.  The scan stops early once ``k`` dominators are
        found because the framework never needs a larger value.
        """
        return self.group_dominance_excluding(kth_key, {partition_id}, k)

    def group_dominance_excluding(
        self, kth_key: RankKey, exclude_partition_ids: Iterable[int], k: int
    ) -> int:
        """Group dominance number counting only candidates owned by
        partitions outside ``exclude_partition_ids``.

        The amortized proactive formation of the S-AVL needs this variant:
        when ``M_1`` is prepared while ``P_0`` is still expiring, candidates
        of both ``P_0`` and ``P_1`` must be ignored because ``P_0`` leaves
        the window before ``P_1`` does.
        """
        excluded = set(exclude_partition_ids)
        start = bisect_right(self._keys, kth_key)
        count = 0
        for position in range(len(self._entries) - 1, start - 1, -1):
            if self._entries[position].partition_id not in excluded:
                count += 1
                if count >= k:
                    break
        return count

    def global_threshold(self, exclude_partition_id: int, k: int) -> Optional[RankKey]:
        """``F_θ``: rank key of the k-th best candidate outside a partition.

        Returns ``None`` when fewer than ``k`` such candidates exist (no
        global pruning possible).
        """
        return self.global_threshold_excluding({exclude_partition_id}, k)

    def global_threshold_excluding(
        self, exclude_partition_ids: Iterable[int], k: int
    ) -> Optional[RankKey]:
        """``F_θ`` computed while ignoring several partitions (see
        :meth:`group_dominance_excluding` for when this is needed)."""
        excluded = set(exclude_partition_ids)
        count = 0
        for position in range(len(self._entries) - 1, -1, -1):
            if self._entries[position].partition_id in excluded:
                continue
            count += 1
            if count == k:
                return self._keys[position]
        return None

    def count_for_partition(self, partition_id: int) -> int:
        """Number of candidates currently owned by a partition (O(|C|))."""
        return sum(1 for entry in self._entries if entry.partition_id == partition_id)
