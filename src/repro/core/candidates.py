"""The SAP candidate set ``C = ∪ P_i^k`` with merge-and-refine maintenance.

Section 3.1 of the paper (Figure 4) describes how the top-k of a freshly
sealed partition is merged into the candidate set: both lists are scanned in
score order, every existing candidate receives a dominance-counter increment
equal to the number of newly merged objects that rank above it (those
objects arrived later, hence dominate it), and candidates whose counter
reaches ``k`` are removed — they can never become results again.

The class below implements exactly that merge, plus the order-statistic
queries the framework needs: the group dominance number ``P_i.ρ`` and the
global pruning threshold ``F_θ`` used by the S-AVL construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..structures.avl import AVLTree
from .object import StreamObject

RankKey = Tuple[float, int]


@dataclass
class CandidateEntry:
    """A candidate object together with its refinement bookkeeping."""

    obj: StreamObject
    partition_id: int
    dominance: int = 0

    @property
    def rank_key(self) -> RankKey:
        return self.obj.rank_key


class CandidateSet:
    """Ordered collection of candidate objects keyed by ``(score, t)``."""

    def __init__(self) -> None:
        self._tree = AVLTree()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, rank_key: RankKey) -> bool:
        return rank_key in self._tree

    def get(self, rank_key: RankKey) -> Optional[CandidateEntry]:
        return self._tree.get(rank_key)

    def iter_descending(self) -> Iterator[CandidateEntry]:
        for _, entry in self._tree.items_descending():
            yield entry

    def entries(self) -> List[CandidateEntry]:
        return [entry for _, entry in self._tree.items()]

    # ------------------------------------------------------------------
    def add(self, obj: StreamObject, partition_id: int, dominance: int = 0) -> CandidateEntry:
        """Insert a candidate (used for promotions from the S-AVL)."""
        entry = CandidateEntry(obj=obj, partition_id=partition_id, dominance=dominance)
        self._tree.insert(obj.rank_key, entry)
        return entry

    def remove(self, rank_key: RankKey) -> Optional[CandidateEntry]:
        """Remove and return the entry with this key, if present."""
        entry = self._tree.get(rank_key)
        if entry is None:
            return None
        self._tree.remove(rank_key)
        return entry

    # ------------------------------------------------------------------
    def merge_partition_topk(
        self, new_objects: Sequence[StreamObject], partition_id: int, k: int
    ) -> List[CandidateEntry]:
        """Merge a sealed partition's ``P_i^k`` into the candidate set.

        ``new_objects`` are the partition's top-k.  Every existing candidate
        receives a dominance increment equal to the number of new objects
        ranking above it; entries reaching ``k`` dominators are removed and
        returned so the framework can update its per-partition accounting.
        Finally the new objects are inserted with a dominance count of zero
        (nothing newer exists yet).
        """
        removed: List[CandidateEntry] = []
        if new_objects:
            ordered_new = sorted(new_objects, key=lambda o: o.rank_key, reverse=True)
            to_delete: List[RankKey] = []
            new_index = 0
            seen_new = 0
            for key, entry in self._tree.items_descending():
                while new_index < len(ordered_new) and ordered_new[new_index].rank_key > key:
                    seen_new += 1
                    new_index += 1
                if seen_new == 0:
                    continue
                entry.dominance += seen_new
                if entry.dominance >= k:
                    to_delete.append(key)
            for key in to_delete:
                entry = self._tree.get(key)
                if entry is not None:
                    removed.append(entry)
                    self._tree.remove(key)
            for obj in ordered_new:
                self.add(obj, partition_id=partition_id, dominance=0)
        return removed

    # ------------------------------------------------------------------
    # Queries used by the SAP framework
    # ------------------------------------------------------------------
    def top_entries(self, count: int) -> List[CandidateEntry]:
        """The ``count`` best candidates, best first."""
        result: List[CandidateEntry] = []
        for entry in self.iter_descending():
            if len(result) >= count:
                break
            result.append(entry)
        return result

    def top_scores(self, count: int) -> List[float]:
        """Scores of the best ``count`` candidates (for the WRT evaluation)."""
        return [entry.obj.score for entry in self.top_entries(count)]

    def group_dominance(self, kth_key: RankKey, partition_id: int, k: int) -> int:
        """Group dominance number ``P_i.ρ`` (Definition 1 of the paper).

        Counts candidates ranking above ``kth_key`` that belong to a
        different partition.  The scan stops early once ``k`` dominators are
        found because the framework never needs a larger value.
        """
        return self.group_dominance_excluding(kth_key, {partition_id}, k)

    def group_dominance_excluding(
        self, kth_key: RankKey, exclude_partition_ids: Iterable[int], k: int
    ) -> int:
        """Group dominance number counting only candidates owned by
        partitions outside ``exclude_partition_ids``.

        The amortized proactive formation of the S-AVL needs this variant:
        when ``M_1`` is prepared while ``P_0`` is still expiring, candidates
        of both ``P_0`` and ``P_1`` must be ignored because ``P_0`` leaves
        the window before ``P_1`` does.
        """
        excluded = set(exclude_partition_ids)
        count = 0
        for key, entry in self._tree.items_descending():
            if key <= kth_key:
                break
            if entry.partition_id not in excluded:
                count += 1
                if count >= k:
                    break
        return count

    def global_threshold(self, exclude_partition_id: int, k: int) -> Optional[RankKey]:
        """``F_θ``: rank key of the k-th best candidate outside a partition.

        Returns ``None`` when fewer than ``k`` such candidates exist (no
        global pruning possible).
        """
        return self.global_threshold_excluding({exclude_partition_id}, k)

    def global_threshold_excluding(
        self, exclude_partition_ids: Iterable[int], k: int
    ) -> Optional[RankKey]:
        """``F_θ`` computed while ignoring several partitions (see
        :meth:`group_dominance_excluding` for when this is needed)."""
        excluded = set(exclude_partition_ids)
        count = 0
        for key, entry in self._tree.items_descending():
            if entry.partition_id in excluded:
                continue
            count += 1
            if count == k:
                return key
        return None

    def count_for_partition(self, partition_id: int) -> int:
        """Number of candidates currently owned by a partition (O(|C|))."""
        return sum(1 for entry in self.iter_descending() if entry.partition_id == partition_id)
