"""Core of the SAP reproduction: data model, window substrate, framework."""

from .exceptions import (
    AlgorithmStateError,
    InvalidPartitionError,
    InvalidQueryError,
    ReproError,
    StreamExhaustedError,
)
from .object import StreamObject, kth_score, sort_by_rank, top_k
from .query import TopKQuery, make_query
from .result import TopKResult, results_agree
from .window import SlideEvent, SlidingWindow, count_based_slides, slides_for_query, time_based_slides
from .interface import ContinuousTopKAlgorithm
from .candidates import CandidateEntry, CandidateSet
from .clustering import (
    ClusterSharedPlan,
    ClusterSpace,
    ClusteredTopK,
    linear_score,
    linear_scores,
    validate_vector,
)
from .partition import Partition, PartitionSpec, UnitSummary, build_partition
from .framework import SAPTopK

__all__ = [
    "ReproError",
    "InvalidQueryError",
    "InvalidPartitionError",
    "StreamExhaustedError",
    "AlgorithmStateError",
    "StreamObject",
    "top_k",
    "kth_score",
    "sort_by_rank",
    "TopKQuery",
    "make_query",
    "TopKResult",
    "results_agree",
    "SlideEvent",
    "SlidingWindow",
    "count_based_slides",
    "time_based_slides",
    "slides_for_query",
    "ContinuousTopKAlgorithm",
    "CandidateSet",
    "CandidateEntry",
    "ClusterSpace",
    "ClusterSharedPlan",
    "ClusteredTopK",
    "linear_score",
    "linear_scores",
    "validate_vector",
    "Partition",
    "PartitionSpec",
    "UnitSummary",
    "build_partition",
    "SAPTopK",
]
