"""Durability plane: checkpoints + a slide-granular write-ahead log.

The engine's answer streams are deterministic functions of the
subscription set and the ingested object sequence, and every
algorithm's state is already byte-identically restorable at slide
boundaries (:mod:`repro.core.state`).  Durability is therefore two
small, decoupled pieces:

* a **write-ahead log** (:class:`~repro.durability.wal.WriteAheadLog`)
  of everything that mutates the answer streams — ingested chunks in
  the columnar wire format of :mod:`repro.core.columnar`, and
  subscription lifecycle ops — appended *before* the engine applies it;
* periodic **checkpoints** (:class:`~repro.durability.checkpoint.CheckpointStore`)
  of every subscription's :class:`~repro.core.state.SubscriptionState`,
  written atomically with a CRC'd manifest, after which the WAL prefix
  they cover is truncated.

:class:`DurabilityManager` ties both to a live engine:
``StreamEngine.recover(directory)`` (or ``repro serve
--durability-dir``) restores the latest checkpoint and replays the WAL
tail, producing the exact pre-crash answer stream.
"""

from .checkpoint import CheckpointStore
from .manager import DurabilityError, DurabilityManager, RecoveryReport
from .wal import KIND_CHUNK, KIND_OP, WalCorruptionError, WriteAheadLog

__all__ = [
    "CheckpointStore",
    "DurabilityError",
    "DurabilityManager",
    "KIND_CHUNK",
    "KIND_OP",
    "RecoveryReport",
    "WalCorruptionError",
    "WriteAheadLog",
]
