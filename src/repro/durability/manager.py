"""The durability loop: WAL every mutation, checkpoint every N chunks.

:class:`DurabilityManager` sits between a live engine and the two
stores of this package.  Attached via
:meth:`repro.engine.EngineCore.attach_durability`, it

* appends every subscription lifecycle op and every ingested chunk to
  the :class:`~repro.durability.wal.WriteAheadLog` *before* the engine
  applies it (chunks in the columnar wire format, so the log is also a
  replayable copy of the exact post-dedupe object sequence);
* every ``checkpoint_interval`` chunks, at the first slide boundary,
  captures every subscription's state into one atomic
  :class:`~repro.core.state.EngineCheckpoint` and truncates the WAL
  prefix the checkpoint covers.

:meth:`recover` is the inverse: restore the latest checkpoint's states
into a fresh engine, then replay the WAL tail.  Determinism of the
engine (answers are a pure function of subscriptions + object sequence)
makes the recovered answer stream byte-identical to the crashed one's
continuation — the property the crash-injection suite in
``tests/durability/`` checks against an uncrashed twin.

Shard workers run the same manager with ``logs_engine_chunks=False``:
they log the already-encoded transport payload on receipt
(:meth:`log_encoded`) instead of re-encoding inside the engine hook.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from ..core import state as state_module
from ..core.columnar import decode_chunk, encode_chunk
from ..core.exceptions import AlgorithmStateError, InvalidQueryError, ReproError
from ..core.object import StreamObject
from ..core.state import STATE_FORMAT_VERSION, EngineCheckpoint, StateSerializationError
from ..obs.registry import get_registry
from .checkpoint import DEFAULT_KEEP, CheckpointStore
from .wal import DEFAULT_SEGMENT_BYTES, KIND_CHUNK, KIND_OP, WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.core import EngineCore

#: Attempt a checkpoint once this many chunks accumulated since the last
#: one (the attempt then lands on the first slide boundary that follows).
DEFAULT_CHECKPOINT_INTERVAL = 64


class DurabilityError(ReproError):
    """The durability directory cannot be used (corrupt, incompatible,
    or recovery was attempted into a non-empty engine)."""


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`DurabilityManager.recover` call reconstructed."""

    checkpoint_seq: Optional[int]
    restored_subscriptions: int
    replayed_ops: int
    replayed_chunks: int
    replayed_objects: int
    ingested_total: int
    chunks_total: int
    last_t: int
    seconds: float
    #: WAL chunks the engine deterministically rejected during replay
    #: (they were journaled ahead of an application that then failed, so
    #: the pre-crash state never contained them either).
    skipped_chunks: int = 0

    @property
    def next_t(self) -> int:
        """The arrival order the serving layer's clock continues from."""
        return self.last_t + 1


class DurabilityManager:
    """Checkpoints + WAL for one engine over one directory."""

    def __init__(
        self,
        directory: str,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        keep_checkpoints: int = DEFAULT_KEEP,
        logs_engine_chunks: bool = True,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        self.directory = directory
        self.checkpoint_interval = checkpoint_interval
        #: True for local engines (the engine hook encodes + logs each
        #: chunk); False on shard workers, which log the transport
        #: payload themselves via :meth:`log_encoded` before decoding.
        self.logs_engine_chunks = logs_engine_chunks
        self.wal = WriteAheadLog(directory, segment_bytes=segment_bytes)
        self.store = CheckpointStore(directory, keep=keep_checkpoints)
        #: Lifetime counters, restored by :meth:`recover`.
        self.ingested = 0
        self.chunks_logged = 0
        self.last_t = -1
        self.last_recovery: Optional[RecoveryReport] = None
        self._chunks_since_checkpoint = 0
        self._want_checkpoint = False
        registry = get_registry()
        self._obs_checkpoints = registry.counter(
            "repro_checkpoints_total", "Engine checkpoints committed."
        )
        self._obs_records = registry.counter(
            "repro_wal_records_total", "Records appended to the write-ahead log."
        )
        self._obs_bytes = registry.counter(
            "repro_wal_bytes_total", "Payload bytes appended to the write-ahead log."
        )
        self._obs_checkpoint_seconds = registry.histogram(
            "repro_checkpoint_seconds", "Wall time of one checkpoint commit."
        )
        self._obs_replayed = registry.counter(
            "repro_replayed_chunks_total", "WAL chunks replayed during recovery."
        )

    # ------------------------------------------------------------------
    # Logging (called by the engine hooks / worker receive path)
    # ------------------------------------------------------------------
    def _check_order(self, ts) -> None:
        """Refuse to journal a chunk the engine is bound to reject.

        The engine enforces non-decreasing ``t``; journaling happens
        before application (write-ahead), so an out-of-order chunk must
        be rejected *here* — otherwise it would poison the log and fail
        again on every replay.  Raises the same error the engine would.
        """
        prev = self.last_t
        for value in ts:
            if value < prev:
                raise InvalidQueryError(
                    "stream objects must arrive in non-decreasing order of "
                    f"t; got t={value} after t={prev}"
                )
            prev = value

    def log_objects(self, chunk: Sequence[StreamObject]) -> None:
        """WAL one chunk of objects about to enter the engine."""
        self._check_order(obj.t for obj in chunk)
        payload = encode_chunk(chunk)
        self.wal.append(KIND_CHUNK, payload)
        self._obs_records.inc()
        self._obs_bytes.inc(len(payload))
        for obj in chunk:
            if obj.t > self.last_t:
                self.last_t = obj.t

    def log_encoded(self, payload: bytes) -> None:
        """WAL one already-encoded chunk payload (worker receive path)."""
        self.wal.append(KIND_CHUNK, payload)
        self._obs_records.inc()
        self._obs_bytes.inc(len(payload))

    def log_block(self, block) -> None:
        """WAL one :class:`~repro.core.columnar.SlideBlock` chunk."""
        self._check_order(int(value) for value in block.ts)
        self.log_encoded(block.to_bytes())
        for value in block.ts:
            if int(value) > self.last_t:
                self.last_t = int(value)

    def log_op(self, op: Tuple) -> bool:
        """WAL one subscription lifecycle op; False when unpicklable.

        An op that cannot be serialized (e.g. a closure-scored algorithm
        instance) degrades that subscription to checkpoint-only
        durability: it survives any crash after the next checkpoint, but
        not one before it.
        """
        try:
            payload = state_module.dumps(op)
        except StateSerializationError:
            return False
        self.wal.append(KIND_OP, payload)
        self._obs_records.inc()
        self._obs_bytes.inc(len(payload))
        return True

    def after_chunk(self, engine: "EngineCore", count: int) -> None:
        """A chunk of ``count`` objects finished moving through ``engine``;
        checkpoint when due and the engine sits at a slide boundary."""
        self.ingested += count
        self.chunks_logged += 1
        self._chunks_since_checkpoint += 1
        if self._chunks_since_checkpoint >= self.checkpoint_interval:
            self._want_checkpoint = True
        if self._want_checkpoint and engine.at_checkpoint_boundary():
            self.checkpoint(engine)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, engine: "EngineCore") -> bool:
        """Capture every subscription and commit one checkpoint.

        Returns False (without partial effects) when the engine is not
        at a capturable point — a window holds a partial slide, or a
        time-based subscription exists; the caller just retries later.
        """
        started = time.perf_counter()
        states = []
        try:
            for name in engine.subscriptions():
                states.append(engine.capture_subscription(name))
        except AlgorithmStateError:
            return False
        checkpoint = EngineCheckpoint(
            version=STATE_FORMAT_VERSION,
            wal_records=self.wal.next_seq,
            ingested=self.ingested,
            last_t=self.last_t,
            states=tuple(states),
            chunks=self.chunks_logged,
        )
        self.wal.sync()
        self.store.write(checkpoint)
        self.wal.truncate(checkpoint.wal_records)
        self._chunks_since_checkpoint = 0
        self._want_checkpoint = False
        self._obs_checkpoints.inc()
        self._obs_checkpoint_seconds.observe(time.perf_counter() - started)
        return True

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, engine: "EngineCore") -> RecoveryReport:
        """Restore the latest checkpoint into ``engine``, replay the tail.

        ``engine`` must be fresh (no subscriptions, nothing pushed) and
        must not have this manager attached yet — the replayed records
        are already in the log, so replay must not re-log them.
        """
        if len(engine):
            raise DurabilityError(
                "recovery needs a fresh engine; this one already has "
                f"{len(engine)} subscription(s)"
            )
        started = time.perf_counter()
        latest = self.store.latest()
        checkpoint_seq: Optional[int] = None
        after_seq = 0
        restored = 0
        if latest is not None:
            checkpoint_seq, checkpoint = latest
            after_seq = checkpoint.wal_records
            self.ingested = checkpoint.ingested
            self.chunks_logged = checkpoint.chunks
            self.last_t = checkpoint.last_t
            for state in checkpoint.states:
                engine.restore_subscription(state)
                restored += 1
        replayed_ops = replayed_chunks = replayed_objects = skipped = 0
        for kind, payload in self.wal.replay(after_seq):
            if kind == KIND_OP:
                self._apply_op(engine, state_module.loads(payload))
                replayed_ops += 1
            else:
                try:
                    replayed_objects += self._apply_chunk(engine, payload)
                except InvalidQueryError:
                    # Deterministic rejection: the live engine refused
                    # this very chunk after it was journaled (write-ahead
                    # order), so the pre-crash state never held it and
                    # skipping it reproduces that state exactly.
                    skipped += 1
                replayed_chunks += 1
                self.chunks_logged += 1
                self._obs_replayed.inc()
        self.ingested += replayed_objects
        report = RecoveryReport(
            checkpoint_seq=checkpoint_seq,
            restored_subscriptions=restored,
            replayed_ops=replayed_ops,
            replayed_chunks=replayed_chunks,
            replayed_objects=replayed_objects,
            ingested_total=self.ingested,
            chunks_total=self.chunks_logged,
            last_t=self.last_t,
            seconds=time.perf_counter() - started,
            skipped_chunks=skipped,
        )
        self.last_recovery = report
        return report

    def _apply_chunk(self, engine: "EngineCore", payload: bytes) -> int:
        objects, block = decode_chunk(payload, materialize=False)
        if block is not None:
            count = len(block)
            engine.push_block(block)
            top = -1
            for value in block.ts:
                if int(value) > top:
                    top = int(value)
        else:
            count = len(objects)
            if count:
                engine.push_many(objects, chunk_size=count)
            top = max((obj.t for obj in objects), default=-1)
        if top > self.last_t:
            self.last_t = top
        return count

    def _apply_op(self, engine: "EngineCore", op: Tuple) -> None:
        kind = op[0]
        if kind == "subscribe":
            _, name, query, algorithm, options, keep, buffer, collect = op
            engine.subscribe(
                name,
                query,
                algorithm,
                keep_results=keep,
                result_buffer=buffer,
                collect_metrics=collect,
                **options,
            )
        elif kind == "restore":
            engine.restore_subscription(op[1])
        elif kind == "unsubscribe":
            try:
                engine.unsubscribe(op[1])
            except KeyError:
                pass
        elif kind == "update_preference":
            engine.update_preference(op[1], op[2])
        else:
            raise DurabilityError(f"unknown WAL op kind {kind!r}")

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.wal.close()
