"""Slide-granular write-ahead log with segment rotation.

Records are framed ``<kind:u8> <length:u32> <crc32:u32> <payload>``
(little-endian).  Two kinds exist: :data:`KIND_CHUNK` payloads are the
columnar wire format of :func:`repro.core.columnar.encode_chunk` — one
record per ingested (post-dedupe, post-shed) chunk — and
:data:`KIND_OP` payloads are pickled subscription lifecycle ops
(:func:`repro.core.state.dumps`).  Because chunks are logged in the
same format the data plane already ships between processes, a replayed
log reproduces the exact object sequence the engine saw, which is all
determinism needs for a byte-identical answer stream.

The log is a directory of segments named ``wal-<first_seq>.log`` where
``first_seq`` is the global sequence number of the segment's first
record.  Appends go to the newest segment until it exceeds
``segment_bytes``, then a new segment opens; :meth:`truncate` deletes
segments wholly below a checkpoint's covered prefix.  Reopening after a
crash always starts a *new* segment — old segments are immutable once
the writer moves past them, so a torn write can only ever live at the
tail of the last segment, where replay treats it as end-of-log.  A bad
CRC anywhere *else* is real corruption and raises
:class:`WalCorruptionError` rather than silently replaying a hole.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List, Tuple

from ..core.exceptions import ReproError

#: Record framing: kind (u8), payload length (u32), payload crc32 (u32).
_HEADER = struct.Struct("<BII")

#: Record payload is a columnar-encoded chunk of ingested objects.
KIND_CHUNK = 1
#: Record payload is a pickled subscription lifecycle op tuple.
KIND_OP = 2

_KINDS = (KIND_CHUNK, KIND_OP)

#: Rotate to a new segment once the current one exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


class WalCorruptionError(ReproError):
    """A WAL record failed its CRC somewhere other than the torn tail."""


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:016d}{_SEGMENT_SUFFIX}"


def _segment_seq(name: str) -> int:
    return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


def _list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` pairs for every segment, ascending."""
    pairs = []
    for name in os.listdir(directory):
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX):
            try:
                pairs.append((_segment_seq(name), os.path.join(directory, name)))
            except ValueError:
                continue
    pairs.sort()
    return pairs


def _read_segment(path: str, *, is_last: bool) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(kind, payload)`` records from one segment file.

    A short or CRC-bad record in the *last* segment is a torn tail from
    the crash — iteration just stops there.  The same damage in an
    earlier segment cannot be explained by a crash (earlier segments are
    immutable) and raises :class:`WalCorruptionError`.
    """
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                if is_last:
                    return
                raise WalCorruptionError(f"truncated record header in {path}")
            kind, length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
            if (
                kind not in _KINDS
                or len(payload) < length
                or zlib.crc32(payload) != crc
            ):
                if is_last:
                    return
                raise WalCorruptionError(
                    f"corrupt record (kind={kind}, length={length}) in {path}"
                )
            yield kind, payload


class WriteAheadLog:
    """Append-only record log over a directory of rotating segments."""

    def __init__(
        self, directory: str, *, segment_bytes: int = DEFAULT_SEGMENT_BYTES
    ) -> None:
        self.directory = directory
        self.segment_bytes = segment_bytes
        os.makedirs(directory, exist_ok=True)
        #: Global sequence number of the next record to be appended ==
        #: total records ever written to this log.  Recovered from the
        #: last segment's name plus its surviving record count, so
        #: numbering stays global across truncations.
        self.next_seq = 0
        self._handle = None
        self._segment_start = 0
        self._segment_size = 0
        segments = _list_segments(directory)
        if segments:
            last_first, last_path = segments[-1]
            count = sum(1 for _ in _read_segment(last_path, is_last=True))
            self.next_seq = last_first + count

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, kind: int, payload: bytes) -> int:
        """Append one record; returns its global sequence number.

        Writes are buffered and flushed to the OS per record (crash of
        *this* process loses nothing); :meth:`sync` adds an fsync for
        machine-crash durability at checkpoint boundaries.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        if self._handle is None or self._segment_size >= self.segment_bytes:
            self._rotate()
        seq = self.next_seq
        record = _HEADER.pack(kind, len(payload), zlib.crc32(payload)) + payload
        self._handle.write(record)
        self._handle.flush()
        self._segment_size += len(record)
        self.next_seq += 1
        return seq

    def sync(self) -> None:
        """fsync the open segment (called before a checkpoint commits)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def _rotate(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
        self._segment_start = self.next_seq
        self._segment_size = 0
        path = os.path.join(self.directory, _segment_name(self.next_seq))
        # "xb" — a fresh segment must not exist; colliding with one would
        # mean two writers on the same log directory.
        self._handle = open(path, "xb")

    # ------------------------------------------------------------------
    # Reading / truncation
    # ------------------------------------------------------------------
    def replay(self, after_seq: int = 0) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(kind, payload)`` for every record with seq >= after_seq.

        Only call before the first :meth:`append` (recovery happens
        before the engine goes live).
        """
        segments = _list_segments(self.directory)
        for index, (first_seq, path) in enumerate(segments):
            is_last = index == len(segments) - 1
            seq = first_seq
            for kind, payload in _read_segment(path, is_last=is_last):
                if seq >= after_seq:
                    yield kind, payload
                seq += 1

    def truncate(self, before_seq: int) -> int:
        """Delete segments whose records all precede ``before_seq``.

        Returns the number of segments removed.  The live segment is
        never deleted; a segment is removable once the *next* segment's
        first_seq is <= before_seq.
        """
        segments = _list_segments(self.directory)
        removed = 0
        for index, (_, path) in enumerate(segments):
            if index + 1 >= len(segments):
                break
            next_first, _ = segments[index + 1]
            if next_first <= before_seq:
                os.remove(path)
                removed += 1
        return removed

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
