"""Atomic, CRC-verified engine checkpoints.

A checkpoint is a directory ``checkpoints/checkpoint-<seq>`` holding

* ``state.bin`` — :func:`repro.core.state.dumps` of an
  :class:`~repro.core.state.EngineCheckpoint`;
* ``MANIFEST.json`` — ``{seq, wal_records, subscriptions, bytes,
  crc32}`` where ``crc32`` covers ``state.bin``.

Writes are crash-atomic: the payload and manifest land in a ``.tmp``
sibling that is fsynced and then :func:`os.replace`'d into place, so a
reader either sees a complete checkpoint or none at all.  The manifest
is written *after* ``state.bin`` inside the tmp dir, making its
presence the commit point even on filesystems that reorder directory
operations.  :meth:`CheckpointStore.latest` walks checkpoints newest
first and skips any whose manifest or CRC fails, so a torn or
bit-rotted newest checkpoint degrades to the previous one instead of
failing recovery (the WAL tail covers the difference).
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from typing import List, Optional, Tuple

from ..core import state as state_module
from ..core.state import EngineCheckpoint

_DIR_PREFIX = "checkpoint-"
_MANIFEST = "MANIFEST.json"
_STATE = "state.bin"

#: How many committed checkpoints to retain.  Two, so the newest being
#: torn by a crash mid-prune still leaves a verified fallback.
DEFAULT_KEEP = 2


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """Numbered engine checkpoints under ``<directory>/checkpoints``."""

    def __init__(self, directory: str, *, keep: int = DEFAULT_KEEP) -> None:
        self.directory = os.path.join(directory, "checkpoints")
        self.keep = max(1, keep)
        os.makedirs(self.directory, exist_ok=True)
        self.next_seq = max((seq for seq, _ in self._entries()), default=-1) + 1

    def _entries(self) -> List[Tuple[int, str]]:
        """``(seq, path)`` for every checkpoint dir (committed or not)."""
        entries = []
        for name in os.listdir(self.directory):
            if name.startswith(_DIR_PREFIX) and not name.endswith(".tmp"):
                try:
                    seq = int(name[len(_DIR_PREFIX) :])
                except ValueError:
                    continue
                entries.append((seq, os.path.join(self.directory, name)))
        entries.sort()
        return entries

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(self, checkpoint: EngineCheckpoint) -> int:
        """Persist a checkpoint atomically; returns its sequence number."""
        seq = self.next_seq
        payload = state_module.dumps(checkpoint)
        final = os.path.join(self.directory, f"{_DIR_PREFIX}{seq:08d}")
        tmp = final + ".tmp"
        if os.path.exists(tmp):
            shutil.rmtree(tmp)
        os.makedirs(tmp)
        state_path = os.path.join(tmp, _STATE)
        with open(state_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        manifest = {
            "seq": seq,
            "wal_records": checkpoint.wal_records,
            "subscriptions": len(checkpoint.states),
            "bytes": len(payload),
            "crc32": zlib.crc32(payload),
        }
        manifest_path = os.path.join(tmp, _MANIFEST)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_dir(tmp)
        os.replace(tmp, final)
        _fsync_dir(self.directory)
        self.next_seq = seq + 1
        self._prune()
        return seq

    def _prune(self) -> None:
        entries = self._entries()
        for _, path in entries[: -self.keep]:
            shutil.rmtree(path, ignore_errors=True)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latest(self) -> Optional[Tuple[int, EngineCheckpoint]]:
        """The newest checkpoint that passes manifest + CRC verification.

        Returns ``(seq, checkpoint)`` or ``None`` when no verifiable
        checkpoint exists (fresh directory, or every candidate is
        damaged — recovery then replays the WAL from record 0).
        """
        for seq, path in reversed(self._entries()):
            checkpoint = self._load(path, seq)
            if checkpoint is not None:
                return seq, checkpoint
        return None

    def _load(self, path: str, seq: int) -> Optional[EngineCheckpoint]:
        manifest_path = os.path.join(path, _MANIFEST)
        state_path = os.path.join(path, _STATE)
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
            with open(state_path, "rb") as handle:
                payload = handle.read()
        except (OSError, ValueError):
            return None
        if (
            manifest.get("seq") != seq
            or manifest.get("bytes") != len(payload)
            or manifest.get("crc32") != zlib.crc32(payload)
        ):
            return None
        try:
            checkpoint = state_module.loads(payload)
        except Exception:
            return None
        if not isinstance(checkpoint, EngineCheckpoint):
            return None
        return checkpoint
