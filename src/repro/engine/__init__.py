"""Push-based execution facade: :class:`StreamEngine` and friends.

This package is the library's single execution path.  See
:mod:`repro.engine.engine` for the facade, :mod:`repro.engine.group` for
the shared multi-query plane (one :class:`QueryGroup` per window shape,
with cross-query sharing plans at ``k_max``), :mod:`repro.engine.spec` for
the query builder, and :mod:`repro.engine.subscription` for the per-query
handle.  The subscription/group bookkeeping lives in
:mod:`repro.engine.core` (:class:`EngineCore`), which the sharded
execution plane (:mod:`repro.cluster`) builds on as well.  The legacy
one-shot helpers (:func:`repro.run_algorithm`,
:func:`repro.compare_algorithms`) are thin wrappers over these classes.
"""

from .core import EngineCore
from .engine import StreamEngine
from .group import QueryGroup, group_key_for
from .spec import QuerySpec, resolve_query
from .subscription import ResultCallback, Subscription

__all__ = [
    "EngineCore",
    "StreamEngine",
    "QueryGroup",
    "group_key_for",
    "QuerySpec",
    "resolve_query",
    "Subscription",
    "ResultCallback",
]
