"""One continuous query attached to a :class:`~repro.engine.StreamEngine`.

A subscription owns everything one query needs *beyond* the shared window
machinery: the algorithm instance, the metric aggregates, the retained
answers, and the result callbacks.  Slide batching lives in the query
group the engine assigns the subscription to (all queries of one window
shape share a single batcher), which delivers sealed slide events — plus
the group's precomputed shared artifacts, when the algorithm participates
in a shared plan — through :meth:`_deliver_slide`.

Memory stays O(window): the group batcher holds at most one window of
objects for the whole shape and the result buffer is bounded whenever the
caller bounds it (``result_buffer=...``) or disables retention
(``keep_results=False``).
"""

from __future__ import annotations

import copy
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from ..core.interface import ContinuousTopKAlgorithm
from ..core.metrics import MetricsCollector
from ..core.result import TopKResult
from ..core.shared import SharedSlide
from ..core.window import SlideEvent
from ..obs.registry import LATENCY_BUCKETS, SIZE_BUCKETS, get_registry
from ..obs.tracing import get_tracer

#: The documented schema of every per-subscription stats surface.
#: :meth:`Subscription.stats` (local and embedded engines),
#: ``ShardSubscription.stats()`` (one shard), and the cluster-wide
#: :func:`repro.cluster.merge.merged_latency_stats` all emit exactly
#: these keys, so stat consumers never branch on the execution plane.
STATS_KEYS = (
    "slides",
    "results_delivered",
    "average_candidates",
    "candidate_max",
    "average_memory_kb",
    "median_latency",
    "p50_latency",
    "p95_latency",
    "p99_latency",
    "max_latency",
    "latency_samples",
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .group import QueryGroup

ResultCallback = Callable[[str, TopKResult], None]


class Subscription:
    """Handle for one query registered on a :class:`StreamEngine`.

    Created by :meth:`StreamEngine.subscribe`; not meant to be instantiated
    directly.
    """

    def __init__(
        self,
        name: str,
        algorithm: ContinuousTopKAlgorithm,
        *,
        keep_results: bool = True,
        result_buffer: Optional[int] = None,
        collect_metrics: bool = True,
    ) -> None:
        self.name = name
        self.algorithm = algorithm
        self.query = algorithm.query
        self._group: Optional["QueryGroup"] = None
        self._metrics = MetricsCollector()
        self._collect_metrics = collect_metrics
        self._keep_results = keep_results
        self._results: Deque[TopKResult] = deque(maxlen=result_buffer)
        self._callbacks: List[ResultCallback] = []
        self._delivered = 0
        self._closed = False
        self._last_latency = 0.0
        # Observability instruments, resolved once per subscription so the
        # per-slide path is increment/observe only (a disabled registry
        # hands out shared no-op instruments instead).
        registry = get_registry()
        labels = {"algorithm": algorithm.name}
        self._obs_slides = registry.counter(
            "repro_slides_total", "Sealed slides processed.", labels
        )
        self._obs_delivered = registry.counter(
            "repro_results_delivered_total", "Top-k answers produced.", labels
        )
        self._obs_latency = registry.histogram(
            "repro_deliver_latency_seconds",
            "Per-slide answer latency (includes the shared-plan prep share).",
            labels,
            LATENCY_BUCKETS,
        )
        self._obs_candidates = registry.histogram(
            "repro_candidates",
            "Candidate-set size sampled after each slide.",
            labels,
            SIZE_BUCKETS,
        )
        self._obs_candidates_last = registry.gauge(
            "repro_candidates_last", "Candidate-set size of the latest slide.", labels
        )
        self._tracer = get_tracer()

    # ------------------------------------------------------------------
    # Consuming answers
    # ------------------------------------------------------------------
    def on_result(self, callback: ResultCallback) -> "Subscription":
        """Invoke ``callback(name, result)`` for every new answer."""
        self._callbacks.append(callback)
        return self

    def results(self) -> List[TopKResult]:
        """The retained answers, oldest first (see ``keep_results``)."""
        return list(self._results)

    def latest(self) -> Optional[TopKResult]:
        """The most recent answer, or ``None`` before the window first fills."""
        return self._results[-1] if self._results else None

    def drain(self):
        """Yield and discard retained answers, oldest first.

        Draining keeps consumption O(1) on unbounded streams: answers pulled
        here no longer occupy the result buffer.
        """
        while self._results:
            yield self._results.popleft()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def metrics(self) -> MetricsCollector:
        return self._metrics

    @property
    def results_delivered(self) -> int:
        """Total answers produced so far (regardless of retention)."""
        return self._delivered

    @property
    def group(self) -> Optional["QueryGroup"]:
        """The query group (window shape bucket) this subscription joined."""
        return self._group

    def window_size(self) -> int:
        """Number of stream objects currently buffered by the window."""
        return self._group.window_size() if self._group is not None else 0

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view of the subscription's state.

        Preference-clustered subscriptions additionally carry a
        ``"cluster"`` record (cluster id, shared/private/drifted mode,
        re-rank and fallback counters) — the surface the serve layer's
        inspect endpoint and the control plane read.
        """
        latest = self.latest()
        cluster_info = getattr(self.algorithm, "cluster_info", None)
        extras = {} if cluster_info is None else {"cluster": cluster_info()}
        return {
            **extras,
            "name": self.name,
            "algorithm": self.algorithm.name,
            "query": self.query.describe(),
            "closed": self._closed,
            "slides": self._metrics.slides,
            "results_delivered": self._delivered,
            "window_size": self.window_size(),
            "candidate_count": self.algorithm.candidate_count(),
            "memory_bytes": self.algorithm.memory_bytes(),
            "latest_scores": list(latest.scores) if latest is not None else [],
        }

    def stats(self) -> Dict[str, float]:
        """Aggregate performance statistics (the paper's three measures,
        plus the per-slide latency distribution as p50/p95/p99).

        Emits exactly :data:`STATS_KEYS` — the same schema every other
        stats surface (sharded, cluster-aggregate) uses.
        """
        m = self._metrics
        p50, p95, p99 = m.latency_percentiles((0.5, 0.95, 0.99))
        return {
            "slides": m.slides,
            "results_delivered": self._delivered,
            "average_candidates": m.average_candidates,
            "candidate_max": m.candidate_max,
            "average_memory_kb": m.average_memory_kb,
            "median_latency": p50,
            "p50_latency": p50,
            "p95_latency": p95,
            "p99_latency": p99,
            "max_latency": m.max_latency,
            "latency_samples": float(len(m.latencies)),
        }

    def last_slide_sample(self) -> Dict[str, float]:
        """Telemetry of the most recent slide: latency, candidates, memory.

        Read by the control plane's monitor after every slide.  Candidate
        and memory figures come from the metrics collector when it is
        enabled (they were sampled during the slide anyway) and straight
        from the algorithm otherwise.
        """
        if self._collect_metrics:
            return {
                "latency": self._metrics.last_latency,
                "candidates": self._metrics.last_candidates,
                "memory_bytes": self._metrics.last_memory_bytes,
            }
        return {
            "latency": self._last_latency,
            "candidates": self.algorithm.candidate_count(),
            "memory_bytes": self.algorithm.memory_bytes(),
        }

    # ------------------------------------------------------------------
    # Lifecycle (driven by the engine and its query groups)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop receiving objects; retained results stay readable."""
        if not self._closed:
            self._closed = True
            self.algorithm.close()

    def _attach_group(self, group: "QueryGroup") -> None:
        self._group = group

    def _adopt_state(self, state) -> None:
        """Adopt the runtime history carried by a
        :class:`~repro.core.state.SubscriptionState`: retained answers, the
        delivery counter, and the metric aggregates.  Called by
        :meth:`repro.engine.core.EngineCore.restore_subscription` so a
        rebalanced subscription keeps its percentiles and result history.

        The metric aggregates are copied, not adopted by reference — the
        state object stays reusable (restoring it into two engines must
        not make their subscriptions share one live collector).
        """
        self._results.extend(state.results)
        self._delivered = state.results_delivered
        self._metrics = copy.deepcopy(state.metrics)

    def _replace_algorithm(self, algorithm: ContinuousTopKAlgorithm) -> None:
        """Swap in a rebuilt algorithm instance (adaptive control plane).

        The query (and therefore the group membership) must not change;
        metric aggregates, retained results, and callbacks carry over so
        the swap is invisible to consumers of the subscription.
        """
        if algorithm.query != self.query:
            raise ValueError(
                "a replacement algorithm must answer the same query; "
                f"got {algorithm.query.describe()} for {self.query.describe()}"
            )
        self.algorithm.close()
        self.algorithm = algorithm

    def _deliver_slide(
        self, event: SlideEvent, shared: Optional[SharedSlide] = None
    ) -> Optional[TopKResult]:
        """Process one sealed slide; return the answer (None when closed).

        ``shared`` carries the artifacts precomputed by this subscription's
        shared plan, if it belongs to one; the per-slide latency then also
        includes this member's share of the plan's preparation time, so
        aggregate timings still account for the shared work.
        """
        if self._closed:
            return None
        started = time.perf_counter()
        if shared is not None:
            result = self.algorithm.process_shared_slide(shared)
        else:
            result = self.algorithm.process_slide(event)
        latency = time.perf_counter() - started
        if shared is not None:
            latency += shared.prep_share
        self._last_latency = latency
        self._obs_slides.inc()
        self._obs_delivered.inc()
        self._obs_latency.observe(latency)
        if self._tracer.enabled:
            self._tracer.record(
                "deliver", event.index, time.time() - latency, latency, self.name
            )
        if self._collect_metrics:
            candidates = self.algorithm.candidate_count()
            self._metrics.record(candidates, self.algorithm.memory_bytes(), latency)
            self._obs_candidates.observe(candidates)
            self._obs_candidates_last.set(candidates)
        else:
            self._metrics.slides += 1
        self._delivered += 1
        if self._keep_results:
            self._results.append(result)
        for callback in self._callbacks:
            callback(self.name, result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"Subscription({self.name!r}, {self.algorithm.name}, "
            f"{self.query.describe()}, {state})"
        )
