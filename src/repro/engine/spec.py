"""The unified, typed query specification: one object, every entry point.

:class:`~repro.core.query.TopKQuery` is an immutable tuple ``⟨n, k, s, F⟩``
whose constructor validates everything at once.  :class:`QuerySpec` is the
declaration callers hand to the engines: the window shape *plus* the
execution choices that used to be scattered over three different
subscription signatures — the algorithm and its options, and an optional
linear preference vector::

    spec = (
        QuerySpec()
        .window(5000)          # n: last 5000 objects ...
        .top(10)               # k: ... report the best 10 ...
        .slide(100)            # s: ... every 100 arrivals
        .using("MinTopK")      # algorithm (+ options)
        .preferring((2.0, 1.0))  # optional: rank by w · attributes
    )
    engine.subscribe("alerts", spec)

``QuerySpec(n=5000, k=10, s=100, algorithm="MinTopK")`` works too — every
fluent method has a matching constructor argument.  The same object (via
:meth:`from_dict`) is the single validator behind the REST body of
``POST /v1/subscriptions``, so `StreamEngine.subscribe`,
`ShardedStreamEngine.subscribe`, and the wire all enforce identical
rules: shape problems raise
:class:`~repro.core.exceptions.InvalidQueryError`, preference problems
raise :class:`~repro.streams.preference.PreferenceError`.

The legacy positional forms (``subscribe(name, spec, "SAP", **options)``
and ``subscribe_preference(...)``) still work; ``subscribe_preference``
is a thin shim over a preference-carrying spec and emits
``DeprecationWarning``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..core.exceptions import InvalidQueryError
from ..core.query import PreferenceFunction, TopKQuery, identity_preference


class QuerySpec:
    """Typed, validating declaration of one continuous top-k query."""

    def __init__(
        self,
        n: Optional[int] = None,
        k: Optional[int] = None,
        s: int = 1,
        preference: Optional[PreferenceFunction] = None,
        time_based: bool = False,
        algorithm: Optional[str] = None,
        options: Optional[Dict[str, object]] = None,
        vector: Optional[Tuple[float, ...]] = None,
        cluster_id: Optional[int] = None,
        pad_factor: Optional[float] = None,
    ) -> None:
        self._n = n
        self._k = k
        self._s = s
        self._preference = preference
        self._time_based = time_based
        self._algorithm = algorithm
        self._options: Dict[str, object] = dict(options or {})
        self._vector = None if vector is None else tuple(vector)
        self._cluster_id = cluster_id
        self._pad_factor = pad_factor

    # ------------------------------------------------------------------
    # Fluent setters (each returns self so calls chain).
    # ------------------------------------------------------------------
    def window(self, n: int) -> "QuerySpec":
        """Window size: an object count, or a duration when time-based."""
        self._n = n
        return self

    def top(self, k: int) -> "QuerySpec":
        """Number of result objects reported at every slide."""
        self._k = k
        return self

    def slide(self, s: int) -> "QuerySpec":
        """Slide size: an arrival count, or a duration when time-based."""
        self._s = s
        return self

    def scored_by(self, preference: PreferenceFunction) -> "QuerySpec":
        """Preference function ``F`` mapping a record to a numeric score."""
        self._preference = preference
        return self

    def over_time(self, time_based: bool = True) -> "QuerySpec":
        """Interpret ``n`` and ``s`` as durations (time-based window)."""
        self._time_based = time_based
        return self

    def over_count(self) -> "QuerySpec":
        """Interpret ``n`` and ``s`` as object counts (the default)."""
        self._time_based = False
        return self

    def using(self, algorithm: str, **options: object) -> "QuerySpec":
        """Algorithm (a :mod:`repro.registry` name) and its options."""
        self._algorithm = algorithm
        self._options.update(options)
        return self

    def preferring(
        self,
        vector,
        *,
        cluster_id: Optional[int] = None,
        pad_factor: Optional[float] = None,
    ) -> "QuerySpec":
        """Rank by the linear preference ``vector · attributes(payload)``.

        The subscription then shares a padded-k cluster plan with
        co-windowed similar vectors (:mod:`repro.core.clustering`);
        ``algorithm`` names the *inner* core the cluster runs.
        """
        self._vector = tuple(vector)
        if cluster_id is not None:
            self._cluster_id = int(cluster_id)
        if pad_factor is not None:
            self._pad_factor = float(pad_factor)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def algorithm(self) -> Optional[str]:
        return self._algorithm

    @property
    def vector(self) -> Optional[Tuple[float, ...]]:
        return self._vector

    @property
    def options(self) -> Dict[str, object]:
        return dict(self._options)

    def carries_execution(self) -> bool:
        """Whether this spec declares how to run, not just what to ask
        (algorithm, options, or a preference vector)."""
        return (
            self._algorithm is not None
            or bool(self._options)
            or self._vector is not None
        )

    # ------------------------------------------------------------------
    # Validation — the single rule set behind every entry point
    # ------------------------------------------------------------------
    def validate(self) -> "QuerySpec":
        """Check the whole declaration; returns self when consistent.

        Window-shape problems raise :class:`InvalidQueryError`;
        preference problems raise
        :class:`~repro.streams.preference.PreferenceError`.
        """
        from ..streams.preference import PreferenceError

        self.build()  # InvalidQueryError on shape problems
        if self._algorithm is not None:
            from ..registry import algorithm_names

            if self._algorithm not in algorithm_names():
                raise InvalidQueryError(
                    f"unknown algorithm {self._algorithm!r}; "
                    f"have {algorithm_names()}"
                )
        if self._vector is not None:
            from ..core.clustering import validate_vector

            try:
                validate_vector(self._vector)
            except InvalidQueryError as exc:
                raise PreferenceError(f"invalid preference vector: {exc}") from None
            if self._preference is not None:
                raise PreferenceError(
                    "a spec cannot combine scored_by(F) with a preference "
                    "vector: the vector is the preference"
                )
            if self._algorithm == "clustered":
                raise PreferenceError(
                    "'clustered' is the sharing wrapper itself; name the "
                    "inner algorithm in using() (default SAP)"
                )
        elif self._algorithm == "clustered":
            raise PreferenceError(
                "the 'clustered' algorithm needs a preference vector; "
                "declare one with preferring() (and name the inner "
                "algorithm in using())"
            )
        elif self._cluster_id is not None or self._pad_factor is not None:
            raise PreferenceError(
                "cluster_id / pad_factor only apply to preference "
                "subscriptions; declare a vector with preferring()"
            )
        return self

    def execution_plan(self) -> Tuple[str, Dict[str, object]]:
        """The validated ``(algorithm, options)`` pair an engine runs.

        For preference specs the plan is the ``"clustered"`` wrapper
        around the named inner algorithm; ``options["cluster_id"]`` is
        left to the engine when the spec does not pin one (assignment is
        engine-central).
        """
        self.validate()
        algorithm = self._algorithm or "SAP"
        if self._vector is None:
            return algorithm, dict(self._options)
        options = dict(self._options)
        options["vector"] = self._vector
        options["inner"] = algorithm
        if self._cluster_id is not None:
            options["cluster_id"] = int(self._cluster_id)
        if self._pad_factor is not None:
            options["pad_factor"] = float(self._pad_factor)
        return "clustered", options

    # ------------------------------------------------------------------
    def build(self) -> TopKQuery:
        """Validate and freeze the window shape into a :class:`TopKQuery`."""
        if self._n is None:
            raise InvalidQueryError("QuerySpec is missing the window size: call .window(n)")
        if self._k is None:
            raise InvalidQueryError("QuerySpec is missing the result size: call .top(k)")
        return TopKQuery(
            n=self._n,
            k=self._k,
            s=self._s,
            preference=self._preference if self._preference is not None else identity_preference,
            time_based=self._time_based,
        )

    @classmethod
    def from_query(cls, query: TopKQuery) -> "QuerySpec":
        """Builder pre-populated from an existing query."""
        return cls(
            n=query.n,
            k=query.k,
            s=query.s,
            preference=query.preference,
            time_based=query.time_based,
        )

    # ------------------------------------------------------------------
    # Wire form (the REST body of POST /v1/subscriptions)
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, body: Mapping, *, default_algorithm: str = "SAP"
    ) -> "QuerySpec":
        """Validate a wire dict into a spec — the REST body validator.

        Recognised keys: ``n``, ``k``, ``s``, ``time_based``,
        ``algorithm``, ``options``, ``preference`` (a weight vector),
        ``cluster_id``, ``pad_factor``.  ``algorithm: "clustered"``
        alongside a ``preference`` names the default inner core, matching
        the legacy wire behaviour.
        """
        if not isinstance(body, Mapping):
            raise InvalidQueryError("the subscription body must be a JSON object")
        unknown = set(body) - {
            "name", "n", "k", "s", "time_based", "algorithm", "options",
            "preference", "cluster_id", "pad_factor",
        }
        if unknown:
            raise InvalidQueryError(
                f"unknown subscription parameter(s): {sorted(unknown)}"
            )
        try:
            n = int(body["n"])
            k = int(body["k"])
        except KeyError as exc:
            raise InvalidQueryError(
                f"missing query parameter {exc.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"invalid query: {exc}") from None
        try:
            s = int(body.get("s", 1))
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"invalid slide size: {exc}") from None
        algorithm = body.get("algorithm", default_algorithm)
        if not isinstance(algorithm, str):
            raise InvalidQueryError(
                f"'algorithm' must be a string, got {type(algorithm).__name__}"
            )
        options = body.get("options") or {}
        if not isinstance(options, Mapping):
            raise InvalidQueryError("'options' must be a JSON object")
        preference = body.get("preference")
        vector = None
        if preference is not None:
            if not isinstance(preference, (list, tuple)):
                from ..streams.preference import PreferenceError

                raise PreferenceError(
                    "'preference' must be an array of weights"
                )
            vector = tuple(preference)
            if algorithm == "clustered":
                # "clustered" is the wrapper itself; a preference query's
                # ``algorithm`` names the inner core it shares.
                algorithm = default_algorithm
        cluster_id = body.get("cluster_id")
        pad_factor = body.get("pad_factor")
        spec = cls(
            n=n,
            k=k,
            s=s,
            time_based=bool(body.get("time_based", False)),
            algorithm=algorithm,
            options=dict(options),
            vector=vector,
            cluster_id=None if cluster_id is None else int(cluster_id),
            pad_factor=None if pad_factor is None else float(pad_factor),
        )
        return spec.validate()

    def to_dict(self) -> Dict[str, object]:
        """The wire form of this spec (inverse of :meth:`from_dict` for
        JSON-representable specs; ``scored_by`` functions are omitted)."""
        payload: Dict[str, object] = {
            "n": self._n,
            "k": self._k,
            "s": self._s,
            "time_based": self._time_based,
        }
        if self._algorithm is not None:
            payload["algorithm"] = self._algorithm
        if self._options:
            payload["options"] = dict(self._options)
        if self._vector is not None:
            payload["preference"] = list(self._vector)
        if self._cluster_id is not None:
            payload["cluster_id"] = self._cluster_id
        if self._pad_factor is not None:
            payload["pad_factor"] = self._pad_factor
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "time-based" if self._time_based else "count-based"
        extra = ""
        if self._algorithm is not None:
            extra += f", algorithm={self._algorithm!r}"
        if self._vector is not None:
            extra += f", vector={self._vector!r}"
        return f"QuerySpec(n={self._n}, k={self._k}, s={self._s}, {kind}{extra})"


def resolve_query(spec: object) -> TopKQuery:
    """Accept a :class:`TopKQuery` or a :class:`QuerySpec` and return a query."""
    if isinstance(spec, TopKQuery):
        return spec
    if isinstance(spec, QuerySpec):
        return spec.build()
    raise TypeError(
        f"expected a TopKQuery or QuerySpec, got {type(spec).__name__}"
    )
