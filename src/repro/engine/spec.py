"""Fluent builder for continuous top-k query specifications.

:class:`~repro.core.query.TopKQuery` is an immutable tuple ``⟨n, k, s, F⟩``
whose constructor validates everything at once.  :class:`QuerySpec` is the
builder the push-based API uses: callers describe the query incrementally
and :meth:`QuerySpec.build` produces the validated ``TopKQuery``::

    spec = (
        QuerySpec()
        .window(5000)          # n: last 5000 objects ...
        .top(10)               # k: ... report the best 10 ...
        .slide(100)            # s: ... every 100 arrivals
        .scored_by(fire_risk)  # F: preference function
    )
    query = spec.build()

``QuerySpec(n=5000, k=10, s=100)`` works too — every fluent method has a
matching constructor argument.
"""

from __future__ import annotations

from typing import Optional

from ..core.exceptions import InvalidQueryError
from ..core.query import PreferenceFunction, TopKQuery, identity_preference


class QuerySpec:
    """Mutable builder producing validated :class:`TopKQuery` instances."""

    def __init__(
        self,
        n: Optional[int] = None,
        k: Optional[int] = None,
        s: int = 1,
        preference: Optional[PreferenceFunction] = None,
        time_based: bool = False,
    ) -> None:
        self._n = n
        self._k = k
        self._s = s
        self._preference = preference
        self._time_based = time_based

    # ------------------------------------------------------------------
    # Fluent setters (each returns self so calls chain).
    # ------------------------------------------------------------------
    def window(self, n: int) -> "QuerySpec":
        """Window size: an object count, or a duration when time-based."""
        self._n = n
        return self

    def top(self, k: int) -> "QuerySpec":
        """Number of result objects reported at every slide."""
        self._k = k
        return self

    def slide(self, s: int) -> "QuerySpec":
        """Slide size: an arrival count, or a duration when time-based."""
        self._s = s
        return self

    def scored_by(self, preference: PreferenceFunction) -> "QuerySpec":
        """Preference function ``F`` mapping a record to a numeric score."""
        self._preference = preference
        return self

    def over_time(self, time_based: bool = True) -> "QuerySpec":
        """Interpret ``n`` and ``s`` as durations (time-based window)."""
        self._time_based = time_based
        return self

    def over_count(self) -> "QuerySpec":
        """Interpret ``n`` and ``s`` as object counts (the default)."""
        self._time_based = False
        return self

    # ------------------------------------------------------------------
    def build(self) -> TopKQuery:
        """Validate and freeze the spec into a :class:`TopKQuery`."""
        if self._n is None:
            raise InvalidQueryError("QuerySpec is missing the window size: call .window(n)")
        if self._k is None:
            raise InvalidQueryError("QuerySpec is missing the result size: call .top(k)")
        return TopKQuery(
            n=self._n,
            k=self._k,
            s=self._s,
            preference=self._preference if self._preference is not None else identity_preference,
            time_based=self._time_based,
        )

    @classmethod
    def from_query(cls, query: TopKQuery) -> "QuerySpec":
        """Builder pre-populated from an existing query."""
        return cls(
            n=query.n,
            k=query.k,
            s=query.s,
            preference=query.preference,
            time_based=query.time_based,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "time-based" if self._time_based else "count-based"
        return f"QuerySpec(n={self._n}, k={self._k}, s={self._s}, {kind})"


def resolve_query(spec: object) -> TopKQuery:
    """Accept a :class:`TopKQuery` or a :class:`QuerySpec` and return a query."""
    if isinstance(spec, TopKQuery):
        return spec
    if isinstance(spec, QuerySpec):
        return spec.build()
    raise TypeError(
        f"expected a TopKQuery or QuerySpec, got {type(spec).__name__}"
    )
