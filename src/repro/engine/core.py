"""The engine core: subscription/group bookkeeping and local execution.

:class:`EngineCore` is the part of the push-based engine that every
execution plane shares: it owns the subscription registry, buckets
subscriptions into :class:`~repro.engine.group.QueryGroup` objects by
window shape, moves stream objects through the groups, and captures /
restores serializable subscription state (:mod:`repro.core.state`).

Two planes build on it rather than forking it:

* :class:`repro.engine.StreamEngine` — the single-process facade; it adds
  the adaptive control plane integration (controller attachment, the
  load-shedding valve, slide-aligned chunking) by overriding the small
  hook methods at the bottom of this class.
* the shard workers of :mod:`repro.cluster` — each worker process hosts a
  full :class:`StreamEngine`, and the sharded facade moves subscriptions
  between workers with :meth:`capture_subscription` /
  :meth:`restore_subscription`.

The hooks (``_register_group``, ``_unregister_group``, ``_admit_one``,
``_chunk_size_for``, ``_admission_filter``, ``_note_chunk``,
``_after_ingest``) default to no-ops, so the core alone is a fully
functional, control-plane-free engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

from ..core.exceptions import AlgorithmStateError
from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.state import SubscriptionState, capture_subscription, check_version, loads
from ..obs.registry import get_registry
from ..registry import create_algorithm
from .group import GroupKey, QueryGroup, group_key_for
from .spec import QuerySpec, resolve_query
from .subscription import ResultCallback, Subscription

#: What ``subscribe`` accepts as the algorithm: a registry name, a ready
#: instance, or any factory/class called as ``factory(query, **options)``.
AlgorithmLike = Union[str, ContinuousTopKAlgorithm, Callable[..., ContinuousTopKAlgorithm]]

#: Default chunk size of ``push_many``: objects are drained from the input
#: iterable in chunks of this many and moved through each query group with
#: one call, instead of one full dispatch per object per subscription.
PUSH_MANY_CHUNK = 256


class EngineCore:
    """Shared, push-based execution of any number of continuous queries."""

    def __init__(self, *, keep_results: bool = True, return_results: bool = True) -> None:
        """``keep_results`` is the default retention policy of new
        subscriptions; ``return_results=False`` additionally makes
        :meth:`push` / :meth:`flush` return empty mappings without
        building them, for hot loops that only consume callbacks."""
        self._subscriptions: Dict[str, Subscription] = {}
        self._groups: List[QueryGroup] = []
        self._open_groups: Dict[GroupKey, QueryGroup] = {}
        self._default_keep_results = keep_results
        self._return_results = return_results
        self._cluster_space = None
        self._closed = False
        self._durability = None
        self._obs_ingested = get_registry().counter(
            "repro_events_ingested_total",
            "Stream objects admitted into this engine's windows.",
        )

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        name: str,
        spec: Union[QuerySpec, TopKQuery, None] = None,
        algorithm: AlgorithmLike = "SAP",
        *,
        keep_results: Optional[bool] = None,
        result_buffer: Optional[int] = None,
        collect_metrics: bool = True,
        on_result: Optional[ResultCallback] = None,
        **algorithm_options: object,
    ) -> Subscription:
        """Register a continuous query and return its subscription handle.

        Parameters
        ----------
        name:
            Unique identifier of the query on this engine.
        spec:
            The query, as a :class:`QuerySpec` builder or a ready
            :class:`TopKQuery`.  May be omitted when ``algorithm`` is an
            instance (the instance already knows its query).
        algorithm:
            A name from :mod:`repro.registry` (default ``"SAP"``), an
            algorithm instance, or a factory called as
            ``factory(query, **algorithm_options)``.
        keep_results / result_buffer:
            Retention policy for answers: ``keep_results=False`` retains
            nothing (callbacks still fire), ``result_buffer=b`` keeps only
            the ``b`` most recent answers.  The default retains everything,
            matching the legacy one-shot API.
        collect_metrics:
            Record candidate counts, memory, and per-slide latency.
        on_result:
            Optional callback invoked as ``callback(name, result)`` for
            every answer.

        The subscription joins the query group of its window shape.  A
        group that has already consumed stream objects is full: the new
        subscription then opens a fresh group (its window starts empty),
        and only queries subscribed before the first push share state.

        A :class:`QuerySpec` that carries execution choices (``using``,
        ``preferring``) is the whole declaration: the ``algorithm``
        parameter must then stay at its default and the spec's plan wins
        (preference vectors route through the clustered sharing plane
        exactly as :meth:`subscribe_preference` used to).
        """
        self._ensure_open()
        if name in self._subscriptions:
            raise ValueError(f"query {name!r} is already subscribed")
        if isinstance(spec, QuerySpec) and spec.carries_execution():
            if algorithm != "SAP" or algorithm_options:
                raise ValueError(
                    "the spec already declares its execution (using/"
                    "preferring); drop the algorithm/options arguments"
                )
            algorithm, algorithm_options = spec.execution_plan()
            if (
                algorithm == "clustered"
                and "cluster_id" not in algorithm_options
            ):
                algorithm_options["cluster_id"] = int(
                    self.cluster_space().assign(algorithm_options["vector"])
                )

        instance = self._resolve_algorithm(spec, algorithm, algorithm_options)
        subscription = Subscription(
            name,
            instance,
            keep_results=self._default_keep_results if keep_results is None else keep_results,
            result_buffer=result_buffer,
            collect_metrics=collect_metrics,
        )
        if on_result is not None:
            subscription.on_result(on_result)
        self._group_for(instance.query).add(subscription)
        self._subscriptions[name] = subscription
        if self._durability is not None:
            self._log_subscribe_op(name, instance, algorithm, algorithm_options,
                                   subscription)
        return subscription

    def _log_subscribe_op(
        self, name, instance, algorithm, options, subscription
    ) -> None:
        """WAL the subscription so recovery can replay its creation.

        Registry-named algorithms log a compact ``subscribe`` op; ready
        instances/factories fall back to a ``restore`` op of the fresh
        state (checkpoint-only durability when even that is unpicklable,
        e.g. closure-scored queries)."""
        if isinstance(algorithm, str):
            self._durability.log_op((
                "subscribe",
                name,
                instance.query,
                algorithm,
                dict(options),
                subscription._keep_results,
                subscription._results.maxlen,
                subscription._collect_metrics,
            ))
        else:
            try:
                state = self.capture_subscription(name)
            except AlgorithmStateError:  # pragma: no cover - defensive
                return
            self._durability.log_op(("restore", state))

    def subscribe_preference(
        self,
        name: str,
        spec: Union[QuerySpec, TopKQuery],
        vector: Iterable[float],
        algorithm: str = "SAP",
        *,
        cluster_id: Optional[int] = None,
        pad_factor: Optional[float] = None,
        keep_results: Optional[bool] = None,
        result_buffer: Optional[int] = None,
        collect_metrics: bool = True,
        on_result: Optional[ResultCallback] = None,
        **algorithm_options: object,
    ) -> Subscription:
        """Register a query scored by a linear preference vector.

        The subscription's answers rank the stream by ``vector ·
        attributes(payload)`` instead of the pre-scored ``score`` field.
        Vectors are clustered (:class:`repro.core.clustering.ClusterSpace`)
        and co-windowed members of one cluster share a single padded-k
        execution plan of the ``algorithm`` (a registry name), each member
        answering by vectorized re-ranking of the shared candidates — see
        :mod:`repro.core.clustering` for the exactness guard.

        ``cluster_id`` overrides the engine's own cluster assignment (the
        sharded facade assigns ids centrally and passes them down);
        ``pad_factor`` tunes the shared candidate padding.  All other
        parameters match :meth:`subscribe`.

        .. deprecated::
            Declare the preference on the spec instead:
            ``subscribe(name, QuerySpec(...).using(algorithm).preferring(vector))``.
        """
        import warnings

        warnings.warn(
            "subscribe_preference is deprecated; use "
            "subscribe(name, spec.using(algorithm).preferring(vector))",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..core.clustering import validate_vector

        vector = validate_vector(vector)
        if cluster_id is None:
            cluster_id = self.cluster_space().assign(vector)
        options = dict(algorithm_options)
        options["vector"] = vector
        options["cluster_id"] = int(cluster_id)
        options["inner"] = algorithm
        if pad_factor is not None:
            options["pad_factor"] = float(pad_factor)
        return self.subscribe(
            name,
            spec,
            "clustered",
            keep_results=keep_results,
            result_buffer=result_buffer,
            collect_metrics=collect_metrics,
            on_result=on_result,
            **options,
        )

    def update_preference(self, name: str, vector: Iterable[float]) -> Dict[str, object]:
        """Re-declare one preference subscription's vector mid-stream.

        Returns the member's cluster record (id, mode, counters).  A
        vector that drifts outside its cluster's envelope flips the member
        to exact per-slide fallback and bumps the MAPE-K-visible drift
        counter; it never changes the answers' exactness.
        """
        subscription = self.subscription(name)
        update = getattr(subscription.algorithm, "update_vector", None)
        if update is None:
            raise AlgorithmStateError(
                f"subscription {name!r} was not created by subscribe_preference"
            )
        vector = tuple(vector)
        record = update(vector)
        if self._durability is not None:
            self._durability.log_op(("update_preference", name, vector))
        return record

    def cluster_space(self):
        """The engine's preference-cluster assignment state (lazy)."""
        if self._cluster_space is None:
            from ..core.clustering import ClusterSpace

            self._cluster_space = ClusterSpace()
        return self._cluster_space

    def unsubscribe(self, name: str) -> None:
        """Close and remove one query."""
        subscription = self._subscriptions.pop(name, None)
        if subscription is None:
            raise KeyError(f"no subscription named {name!r}")
        subscription.close()
        group = subscription.group
        if group is not None:
            group.remove(subscription)
            if not len(group):
                self._unregister_group(group)
        if self._durability is not None:
            self._durability.log_op(("unsubscribe", name))

    def subscription(self, name: str) -> Subscription:
        try:
            return self._subscriptions[name]
        except KeyError:
            raise KeyError(
                f"no subscription named {name!r}; active: {sorted(self._subscriptions)}"
            ) from None

    def subscriptions(self) -> List[str]:
        """Names of every subscription, in registration order."""
        return list(self._subscriptions)

    def groups(self) -> List[Dict[str, object]]:
        """Description of every query group and its shared plans."""
        return [group.describe() for group in self._groups]

    def __contains__(self, name: object) -> bool:
        return name in self._subscriptions

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # Serializable state (rebalancing between engines / processes)
    # ------------------------------------------------------------------
    def capture_subscription(self, name: str) -> SubscriptionState:
        """Capture one subscription as transportable, picklable state.

        Only exact slide boundaries can be captured (the live window must
        equal the last reported window), so captures line up with the same
        points where the control plane may rebuild algorithms.  The
        subscription keeps running here; pair with :meth:`unsubscribe` to
        move it, or use the sharded engine's ``rebalance`` which does both
        ends atomically.
        """
        subscription = self.subscription(name)
        group = subscription.group
        if group is None or not group.started:
            # Never pushed: the window is empty and there is no slide clock.
            return capture_subscription(subscription, (), None)
        if group.time_based:
            raise AlgorithmStateError(
                "time-based subscriptions cannot be captured: their windows "
                "have no exact slide boundaries"
            )
        if not group.at_slide_boundary():
            raise AlgorithmStateError(
                "capture is only possible at a slide boundary (window full, "
                "no partial slide buffered); push a whole number of slides "
                "or use slide-aligned chunking"
            )
        return capture_subscription(
            subscription,
            tuple(group.window_contents()),
            group.last_slide_index(),
        )

    def restore_subscription(
        self, state: Union[SubscriptionState, bytes]
    ) -> Subscription:
        """Re-home a captured subscription on this engine.

        Accepts a :class:`~repro.core.state.SubscriptionState` or its
        pickled bytes.  The subscription resumes with its retained answers,
        metric aggregates, and — after the captured window is replayed
        through the standard drain-and-replay path — produces byte-identical
        answers to an uninterrupted run.  A restored subscription always
        opens a fresh query group (its window position is its own).
        """
        self._ensure_open()
        if isinstance(state, (bytes, bytearray)):
            state = loads(bytes(state))
        if not isinstance(state, SubscriptionState):
            raise TypeError(
                f"expected SubscriptionState or bytes, got {type(state).__name__}"
            )
        check_version(state.version)
        if state.name in self._subscriptions:
            raise ValueError(f"query {state.name!r} is already subscribed")
        # Respawn once more so the state object stays reusable: restoring
        # the same payload twice must not share one live instance.
        subscription = Subscription(
            state.name,
            state.algorithm.respawn(),
            keep_results=state.keep_results,
            result_buffer=state.result_buffer,
            collect_metrics=state.collect_metrics,
        )
        subscription._adopt_state(state)
        if state.slide_index is None:
            self._group_for(subscription.query).add(subscription)
        else:
            query = subscription.query
            group = QueryGroup(query.n, query.s, query.time_based)
            group.add(subscription)
            group.prime(state.window, state.slide_index)
            self._register_group(group)
        self._subscriptions[state.name] = subscription
        if self._durability is not None:
            self._durability.log_op(("restore", state))
        return subscription

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, obj: StreamObject) -> Dict[str, List[TopKResult]]:
        """Feed one object to every open subscription.

        Returns, per query name, the answers (possibly none) whose windows
        were completed by this object.  With ``return_results=False`` the
        mapping is never built and an empty dict is returned; callbacks
        and retained results are unaffected.
        """
        self._ensure_open()
        if not self._subscriptions:
            raise ValueError("no queries subscribed")
        if not self._admit_one(obj):
            return {}
        if self._durability is not None and self._durability.logs_engine_chunks:
            self._durability.log_objects((obj,))
        collect = self._return_results
        produced = None
        self._obs_ingested.inc()
        # Snapshot: result callbacks may unsubscribe (mutating the list).
        for group in tuple(self._groups):
            for subscription, results in group.push(obj, collect=collect):
                if produced is None:
                    produced = {}
                produced[subscription.name] = results
        self._after_ingest()
        if self._durability is not None:
            self._durability.after_chunk(self, 1)
        return self._ordered(produced)

    def push_many(
        self, objects: Iterable[StreamObject], *, chunk_size: int = PUSH_MANY_CHUNK
    ) -> int:
        """Feed any iterable of objects, lazily; return how many were pushed.

        The iterable is never materialised — it is drained in chunks of
        ``chunk_size`` objects that move through each query group with a
        single batched call, so arbitrarily long generators stream through
        in O(window) memory with none of ``push``'s per-object dispatch.
        Answers are not collected (use callbacks, ``results()``, or
        ``drain()``); they are produced in the same order as with ``push``.
        """
        self._ensure_open()
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        chunk_size = self._chunk_size_for(chunk_size)
        count = 0
        chunk: List[StreamObject] = []
        # The admission filter can only engage/disengage between chunks —
        # so it is hoisted out of the per-object loop and re-read after
        # each chunk (None in the common unfiltered case).
        admit = self._admission_filter()
        for obj in objects:
            if admit is not None and not admit(obj):
                continue
            chunk.append(obj)
            if len(chunk) >= chunk_size:
                count += self._push_chunk(chunk)
                chunk = []
                admit = self._admission_filter()
        if chunk:
            count += self._push_chunk(chunk)
        return count

    def _push_chunk(self, chunk: List[StreamObject]) -> int:
        if not self._subscriptions:
            raise ValueError("no queries subscribed")
        if self._durability is not None and self._durability.logs_engine_chunks:
            self._durability.log_objects(chunk)
        self._obs_ingested.inc(len(chunk))
        for group in tuple(self._groups):
            group.push_batch(chunk, collect=False)
        self._note_chunk(len(chunk))
        if self._durability is not None:
            self._durability.after_chunk(self, len(chunk))
        return len(chunk)

    def push_block(self, block) -> int:
        """Feed one :class:`~repro.core.columnar.SlideBlock` as a chunk.

        The zero-copy ingest path of the shm transport: the block's columns
        flow through each query group unchanged, so slide events carry
        block-form arrivals.  Falls back to :meth:`push_many` when an
        admission filter is active (filters are per-object)."""
        self._ensure_open()
        if len(block) == 0:
            return 0
        if self._admission_filter() is not None:
            return self.push_many(block.to_objects(), chunk_size=len(block))
        if not self._subscriptions:
            raise ValueError("no queries subscribed")
        if self._durability is not None and self._durability.logs_engine_chunks:
            self._durability.log_block(block)
        self._obs_ingested.inc(len(block))
        for group in tuple(self._groups):
            group.push_block(block, collect=False)
        self._note_chunk(len(block))
        if self._durability is not None:
            self._durability.after_chunk(self, len(block))
        return len(block)

    def flush(self) -> Dict[str, List[TopKResult]]:
        """Emit the end-of-stream report of time-based windows (if any)."""
        self._ensure_open()
        collect = self._return_results
        produced = None
        for group in tuple(self._groups):
            for subscription, results in group.flush(collect=collect):
                if produced is None:
                    produced = {}
                produced[subscription.name] = results
        self._after_ingest()
        return self._ordered(produced)

    def _ordered(
        self, produced: Optional[Dict[str, List[TopKResult]]]
    ) -> Dict[str, List[TopKResult]]:
        """Re-key group-major results into subscription registration order."""
        if not produced:
            return {}
        if len(produced) == 1:
            return produced
        return {name: produced[name] for name in self._subscriptions if name in produced}

    # ------------------------------------------------------------------
    # Reading answers and state
    # ------------------------------------------------------------------
    def results(self, name: str) -> List[TopKResult]:
        """Retained answers of one query (see ``keep_results``)."""
        return self.subscription(name).results()

    def drain_results(self) -> Dict[str, List[TopKResult]]:
        """Fetch *and discard* every subscription's retained answers.

        One call covers the whole engine: the serving layer
        (:mod:`repro.serve`) uses it to collect everything a just-pushed
        batch produced without a per-subscription round-trip.  Names with
        no new answers are omitted.  Reading is allowed on a closed
        engine (the final answers stay collectible after ``close``).
        """
        produced: Dict[str, List[TopKResult]] = {}
        for name, subscription in self._subscriptions.items():
            drained = list(subscription.drain())
            if drained:
                produced[name] = drained
        return produced

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time state of every subscription, keyed by name."""
        return {name: sub.snapshot() for name, sub in self._subscriptions.items()}

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate performance statistics of every subscription."""
        return {name: sub.stats() for name, sub in self._subscriptions.items()}

    def aggregate_stats(self) -> Dict[str, float]:
        """Engine-wide latency distribution over every subscription.

        The local analogue of
        :meth:`repro.cluster.ShardedStreamEngine.aggregate_stats`: the
        same merge code runs over this engine's subscriptions as over a
        cluster's shards, so both planes emit the identical schema
        (:data:`~repro.engine.subscription.STATS_KEYS`) and identical
        numbers for the same stream.
        """
        from ..cluster.merge import merged_latency_stats

        telemetry = {
            name: {
                "stats": sub.stats(),
                "latencies": list(sub.metrics.latencies),
                "shard": -1,
            }
            for name, sub in self._subscriptions.items()
        }
        return merged_latency_stats([telemetry])

    # ------------------------------------------------------------------
    # Durability (checkpoints + write-ahead log, :mod:`repro.durability`)
    # ------------------------------------------------------------------
    def attach_durability(self, manager) -> None:
        """Persist this engine through ``manager``: every subscription op
        and ingested chunk is WAL'd ahead of application, and checkpoints
        commit at slide boundaries.  Attach exactly one manager, *after*
        any :meth:`repro.durability.DurabilityManager.recover` call (the
        replayed records are already in the log)."""
        if self._durability is not None:
            raise ValueError("a durability manager is already attached")
        self._durability = manager

    def detach_durability(self):
        """Stop persisting; returns the detached manager (or ``None``)."""
        manager, self._durability = self._durability, None
        return manager

    @property
    def durability(self):
        """The attached :class:`~repro.durability.DurabilityManager`."""
        return self._durability

    def at_checkpoint_boundary(self) -> bool:
        """Whether every window sits at an exact slide boundary (the only
        points where :meth:`capture_subscription` — and therefore a
        checkpoint — is possible).  Time-based windows never are."""
        for group in self._groups:
            if group.time_based:
                return False
            if group.started and not group.at_slide_boundary():
                return False
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> Dict[str, List[TopKResult]]:
        """Flush pending time-based reports, then close every subscription.

        Returns the answers produced by the final flush.  Closing twice is
        a no-op; pushing after close raises :class:`AlgorithmStateError`.
        """
        if self._closed:
            return {}
        produced = self.flush()
        for subscription in self._subscriptions.values():
            subscription.close()
        self._closed = True
        return produced

    def __enter__(self) -> "EngineCore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise AlgorithmStateError("the engine is closed")

    def _group_for(self, query: TopKQuery) -> QueryGroup:
        key = group_key_for(query)
        group = self._open_groups.get(key)
        if group is None or group.started:
            group = QueryGroup(query.n, query.s, query.time_based)
            self._open_groups[key] = group
            self._register_group(group)
        return group

    @staticmethod
    def _resolve_algorithm(
        spec: Union[QuerySpec, TopKQuery, None],
        algorithm: AlgorithmLike,
        options: Dict[str, object],
    ) -> ContinuousTopKAlgorithm:
        if isinstance(algorithm, ContinuousTopKAlgorithm):
            if options:
                raise ValueError(
                    "algorithm options cannot be applied to a ready instance: "
                    f"{sorted(options)}"
                )
            if spec is not None and resolve_query(spec) != algorithm.query:
                raise ValueError(
                    "the given spec disagrees with the algorithm instance's query; "
                    "omit the spec or build the instance from it"
                )
            return algorithm
        if spec is None:
            raise ValueError("a QuerySpec (or TopKQuery) is required")
        query = resolve_query(spec)
        if isinstance(algorithm, str):
            return create_algorithm(algorithm, query, **options)
        return algorithm(query, **options)

    # ------------------------------------------------------------------
    # Hooks (overridden by StreamEngine's control-plane integration)
    # ------------------------------------------------------------------
    def _register_group(self, group: QueryGroup) -> None:
        """A new query group joined the engine."""
        self._groups.append(group)

    def _unregister_group(self, group: QueryGroup) -> None:
        """A query group lost its last member and leaves the engine."""
        self._groups.remove(group)
        if self._open_groups.get(group.key) is group:
            del self._open_groups[group.key]

    def _admit_one(self, obj: StreamObject) -> bool:
        """Admission decision of :meth:`push` (load-shedding valve)."""
        return True

    def _admission_filter(self) -> Optional[Callable[[StreamObject], bool]]:
        """Per-chunk admission filter of :meth:`push_many` (None = admit all)."""
        return None

    def _chunk_size_for(self, requested: int) -> int:
        """Opportunity to align ``push_many`` chunks to slide boundaries."""
        return requested

    def _note_chunk(self, count: int) -> None:
        """A chunk of ``count`` objects finished moving through the groups."""

    def _after_ingest(self) -> None:
        """An ingest call (push / flush) completed."""
