"""Query groups: the shared multi-query execution plane of the engine.

A :class:`QueryGroup` holds every subscription whose query shares one
window shape ``(n, s, window type)``.  The group owns the *single* slide
batcher for that shape — window filling, slide batching, and expiry happen
exactly once per slide, no matter how many queries watch the shape — and
fans each sealed slide event out to its members.

On its first slide the group additionally buckets members by their
algorithm's :meth:`~repro.core.interface.ContinuousTopKAlgorithm.shared_plan_key`
and forms a :class:`~repro.core.shared.SharedPlan` for every bucket with at
least two members: SAP queries share one partition-sealing pipeline at
``k_max``, k-skyband and MinTopK queries share one candidate core at
``k_max``.  Algorithms without a plan (or alone in their bucket) process
the raw events exactly as before, so mixing sharable and unsharable
queries in one group is always safe.

Membership is fixed once the group has started consuming the stream: a
subscription added later must see an *empty* window, so the engine opens a
fresh group of the same shape for it instead.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import AlgorithmStateError
from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.shared import SharedPlan, SharedSlide
from ..core.state import replay_event
from ..core.window import SlideBatcher, SlideEvent
from ..obs.registry import LATENCY_BUCKETS, get_registry
from ..obs.tracing import get_tracer
from .subscription import Subscription

#: Group key: window size, slide, and window type.
GroupKey = Tuple[int, int, bool]


def group_key_for(query: TopKQuery) -> GroupKey:
    """The window shape a query is grouped by (everything but ``k``/``F``)."""
    return (query.n, query.s, query.time_based)


class QueryGroup:
    """All subscriptions sharing one window shape on a stream engine."""

    def __init__(self, n: int, s: int, time_based: bool) -> None:
        self.n = n
        self.s = s
        self.time_based = time_based
        # The batcher only consults n, s, and the window type; k is
        # irrelevant to window movement, so a placeholder of 1 is used.
        self._batcher = SlideBatcher(TopKQuery(n=n, k=1, s=s, time_based=time_based))
        self._members: List[Subscription] = []
        self._plans: List[SharedPlan] = []
        self._started = False
        #: Telemetry sink of the adaptive control plane (duck-typed to
        #: avoid an import cycle): when set, ``record_slide(group=...,
        #: subscription=..., event=..., result=...)`` is called after every
        #: member processes a slide.
        self.telemetry = None
        registry = get_registry()
        self._obs_merge = registry.histogram(
            "repro_stage_seconds",
            "Pipeline stage timings over the slide lifecycle.",
            {"stage": "merge"},
            LATENCY_BUCKETS,
        )
        self._obs_enabled = registry.enabled
        self._tracer = get_tracer()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def key(self) -> GroupKey:
        return (self.n, self.s, self.time_based)

    @property
    def started(self) -> bool:
        return self._started

    def members(self) -> List[Subscription]:
        return list(self._members)

    def add(self, subscription: Subscription) -> None:
        if self._started:
            raise AlgorithmStateError(
                "cannot join a query group that has started consuming the stream"
            )
        self._members.append(subscription)
        subscription._attach_group(self)

    def remove(self, subscription: Subscription) -> None:
        if subscription in self._members:
            self._members.remove(subscription)
        for plan in self._plans:
            plan.discard(subscription)

    def __len__(self) -> int:
        return len(self._members)

    def window_size(self) -> int:
        """Number of stream objects currently buffered for this shape."""
        return self._batcher.window_size()

    def window_contents(self) -> List[StreamObject]:
        """Snapshot of the shape's buffered window, oldest first."""
        return self._batcher.window_contents()

    def last_slide_index(self) -> Optional[int]:
        """Index of the most recent slide event (None before first fill)."""
        return self._batcher.last_index

    def at_slide_boundary(self) -> bool:
        """True when the group's window state matches the last emitted slide
        exactly (count-based, filled, no partial slide buffered).  Live
        rebuilds by the control plane are only legal at such boundaries."""
        return self._started and self._batcher.at_slide_boundary()

    # ------------------------------------------------------------------
    # Plan formation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Freeze membership and form the shared plans (first push)."""
        if self._started:
            return
        self._started = True
        self._plans.extend(self._form_plans(self._members))

    @staticmethod
    def _form_plans(members: Sequence[Subscription]) -> List[SharedPlan]:
        """Bucket ``members`` by plan key and build one plan per bucket."""
        plans: List[SharedPlan] = []
        buckets: Dict[object, List[Subscription]] = {}
        for subscription in members:
            key = subscription.algorithm.shared_plan_key()
            if key is None:
                continue
            buckets.setdefault(key, []).append(subscription)
        for bucket in buckets.values():
            if len(bucket) < 2:
                # A lone member gains nothing from a plan; it keeps its
                # fully independent execution path (and its exact legacy
                # per-slide accounting).
                continue
            plan = bucket[0].algorithm.build_shared_plan(bucket)
            if plan is not None:
                plans.append(plan)
        return plans

    def plans(self) -> List[SharedPlan]:
        return list(self._plans)

    # ------------------------------------------------------------------
    # Live re-planning (adaptive control plane)
    # ------------------------------------------------------------------
    def rebuild(
        self, replacements: Dict[str, ContinuousTopKAlgorithm]
    ) -> float:
        """Swap member algorithms at a slide boundary; return the cost in
        seconds.

        ``replacements`` maps subscription names to fresh (never pushed)
        algorithm instances for the same query.  The group is "drained" in
        place: every replaced member — plus every member that shared a plan
        with one, since dissolving a plan orphans its members — gets a
        fresh instance, shared plans are re-formed over the rebuilt set,
        and the live window contents are replayed into the new pipeline as
        one synthetic slide event whose answer is discarded (the current
        window was already reported).  Because every algorithm in the
        library computes exact answers from the window contents alone, the
        result stream after a rebuild is identical to an uninterrupted
        run — this is what makes control-plane tactics answer-preserving.

        Members untouched by the rebuild (not replaced, not in a dissolved
        plan) keep their instances and plans and never notice.
        """
        if not self.at_slide_boundary():
            raise AlgorithmStateError(
                "a live rebuild is only possible at a count-based slide "
                "boundary (window full, no partial slide buffered)"
            )
        by_name = {sub.name: sub for sub in self._members}
        unknown = sorted(set(replacements) - set(by_name))
        if unknown:
            raise KeyError(f"no such members in this group: {unknown}")

        started = time.perf_counter()
        affected = {by_name[name] for name in replacements}
        # Dissolving a plan orphans every member bound to it: their old
        # instances refuse to run outside the plan, so they must be
        # rebuilt (with their current configuration) alongside the swaps.
        surviving_plans: List[SharedPlan] = []
        for plan in self._plans:
            plan_members = set(plan.subscriptions())
            if plan_members & affected:
                affected |= {m for m in plan_members if m in self._members}
            else:
                surviving_plans.append(plan)
        self._plans = surviving_plans

        slide_index = self._batcher.last_index
        for subscription in affected:
            algorithm = replacements.get(subscription.name)
            if algorithm is None:
                algorithm = subscription.algorithm.respawn()
            algorithm.fast_forward(slide_index)
            subscription._replace_algorithm(algorithm)

        ordered = [sub for sub in self._members if sub in affected]
        new_plans = self._form_plans(ordered)
        for plan in new_plans:
            plan.fast_forward(slide_index)
        self._plans.extend(new_plans)
        self._replay(ordered, new_plans, slide_index)
        return time.perf_counter() - started

    def prime(self, contents: Sequence[StreamObject], last_index: int) -> None:
        """Seed a never-started group with captured window state.

        This is the restore half of subscription serialization
        (:mod:`repro.core.state`): the members — all fresh, never-pushed
        algorithm instances — adopt a window captured at slide boundary
        ``last_index`` in some other group (typically in another process).
        The group's batcher is seeded, shared plans are formed, every
        member is fast-forwarded to the captured slide clock, and the
        window is replayed through the standard drain-and-replay path, so
        subsequent slides produce byte-identical answers to the group the
        state was captured from.
        """
        if self._started:
            raise AlgorithmStateError("cannot prime a group that has started")
        if not self._members:
            raise AlgorithmStateError("cannot prime a group with no members")
        self._batcher.seed(contents, last_index)
        self._started = True
        for subscription in self._members:
            subscription.algorithm.fast_forward(last_index)
        self._plans.extend(self._form_plans(self._members))
        for plan in self._plans:
            plan.fast_forward(last_index)
        self._replay(self._members, self._plans, last_index)

    def _replay(
        self,
        subscriptions: Sequence[Subscription],
        plans: Sequence[SharedPlan],
        slide_index: int,
    ) -> None:
        """Replay the live window into ``subscriptions`` as one synthetic
        slide event (same shape as the initial window-fill event).  The
        produced answers are discarded: this window was already reported.
        """
        event = replay_event(tuple(self._batcher.window_contents()), slide_index)
        planned: Dict[int, SharedSlide] = {}
        for plan in plans:
            shared = plan.prepare(event)
            for subscription in plan.subscriptions():
                planned[id(subscription)] = shared
        for subscription in subscriptions:
            shared = planned.get(id(subscription))
            if shared is not None:
                subscription.algorithm.process_shared_slide(shared)
            else:
                subscription.algorithm.process_slide(event)

    def describe(self) -> Dict[str, object]:
        """Introspection record shown by ``StreamEngine.groups()``."""
        kind = "time-based" if self.time_based else "count-based"
        return {
            "n": self.n,
            "s": self.s,
            "window": kind,
            "members": [subscription.name for subscription in self._members],
            "plans": [plan.describe() for plan in self._plans],
        }

    # ------------------------------------------------------------------
    # Ingestion (driven by the engine)
    # ------------------------------------------------------------------
    def push(
        self, obj: StreamObject, collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        """Feed one object; return each member's newly completed answers.

        ``collect=False`` skips gathering the answers entirely (callbacks
        and retention still run) and always returns an empty sequence.
        """
        if not self._started:
            self.start()
        return self._dispatch(self._batcher.push(obj), collect)

    def push_batch(
        self, objects: Sequence[StreamObject], collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        """Feed a chunk of objects through the shared batcher at once."""
        if not self._started:
            self.start()
        return self._dispatch(self._batcher.push_batch(objects), collect)

    def push_block(
        self, block, collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        """Feed a column block; slide events keep block-form arrivals."""
        if not self._started:
            self.start()
        return self._dispatch(self._batcher.push_block(block), collect)

    def flush(
        self, collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        """Emit the end-of-stream report of a time-based window (if any)."""
        if not self._started:
            self.start()
        return self._dispatch(self._batcher.flush(), collect)

    # ------------------------------------------------------------------
    def _dispatch(
        self, events: Sequence[SlideEvent], collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        if not events:
            return ()
        produced: Dict[Subscription, List[TopKResult]] = {}
        timed = self._obs_enabled or self._tracer.enabled
        for event in events:
            merge_started = time.perf_counter() if timed else 0.0
            shared_for: Dict[int, SharedSlide] = {}
            for plan in self._plans:
                if not plan.has_open_members():
                    continue
                shared = plan.prepare(event)
                for subscription in plan.subscriptions():
                    shared_for[id(subscription)] = shared
            # Snapshot: a result callback may unsubscribe a member (which
            # mutates self._members) without desyncing this dispatch.
            for subscription in tuple(self._members):
                result = subscription._deliver_slide(
                    event, shared_for.get(id(subscription))
                )
                if result is not None and self.telemetry is not None:
                    self.telemetry.record_slide(self, subscription, event, result)
                if collect and result is not None:
                    produced.setdefault(subscription, []).append(result)
            if timed:
                merge_seconds = time.perf_counter() - merge_started
                self._obs_merge.observe(merge_seconds)
                if self._tracer.enabled:
                    self._tracer.record(
                        "merge",
                        event.index,
                        time.time() - merge_seconds,
                        merge_seconds,
                        f"members={len(self._members)}",
                    )
        if not collect:
            return ()
        return [
            (subscription, produced[subscription])
            for subscription in self._members
            if subscription in produced
        ]
