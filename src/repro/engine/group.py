"""Query groups: the shared multi-query execution plane of the engine.

A :class:`QueryGroup` holds every subscription whose query shares one
window shape ``(n, s, window type)``.  The group owns the *single* slide
batcher for that shape — window filling, slide batching, and expiry happen
exactly once per slide, no matter how many queries watch the shape — and
fans each sealed slide event out to its members.

On its first slide the group additionally buckets members by their
algorithm's :meth:`~repro.core.interface.ContinuousTopKAlgorithm.shared_plan_key`
and forms a :class:`~repro.core.shared.SharedPlan` for every bucket with at
least two members: SAP queries share one partition-sealing pipeline at
``k_max``, k-skyband and MinTopK queries share one candidate core at
``k_max``.  Algorithms without a plan (or alone in their bucket) process
the raw events exactly as before, so mixing sharable and unsharable
queries in one group is always safe.

Membership is fixed once the group has started consuming the stream: a
subscription added later must see an *empty* window, so the engine opens a
fresh group of the same shape for it instead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.exceptions import AlgorithmStateError
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.shared import SharedPlan, SharedSlide
from ..core.window import SlideBatcher, SlideEvent
from .subscription import Subscription

#: Group key: window size, slide, and window type.
GroupKey = Tuple[int, int, bool]


def group_key_for(query: TopKQuery) -> GroupKey:
    """The window shape a query is grouped by (everything but ``k``/``F``)."""
    return (query.n, query.s, query.time_based)


class QueryGroup:
    """All subscriptions sharing one window shape on a stream engine."""

    def __init__(self, n: int, s: int, time_based: bool) -> None:
        self.n = n
        self.s = s
        self.time_based = time_based
        # The batcher only consults n, s, and the window type; k is
        # irrelevant to window movement, so a placeholder of 1 is used.
        self._batcher = SlideBatcher(TopKQuery(n=n, k=1, s=s, time_based=time_based))
        self._members: List[Subscription] = []
        self._plans: List[SharedPlan] = []
        self._started = False

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def key(self) -> GroupKey:
        return (self.n, self.s, self.time_based)

    @property
    def started(self) -> bool:
        return self._started

    def members(self) -> List[Subscription]:
        return list(self._members)

    def add(self, subscription: Subscription) -> None:
        if self._started:
            raise AlgorithmStateError(
                "cannot join a query group that has started consuming the stream"
            )
        self._members.append(subscription)
        subscription._attach_group(self)

    def remove(self, subscription: Subscription) -> None:
        if subscription in self._members:
            self._members.remove(subscription)
        for plan in self._plans:
            plan.discard(subscription)

    def __len__(self) -> int:
        return len(self._members)

    def window_size(self) -> int:
        """Number of stream objects currently buffered for this shape."""
        return self._batcher.window_size()

    # ------------------------------------------------------------------
    # Plan formation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Freeze membership and form the shared plans (first push)."""
        if self._started:
            return
        self._started = True
        buckets: Dict[object, List[Subscription]] = {}
        for subscription in self._members:
            key = subscription.algorithm.shared_plan_key()
            if key is None:
                continue
            buckets.setdefault(key, []).append(subscription)
        for bucket in buckets.values():
            if len(bucket) < 2:
                # A lone member gains nothing from a plan; it keeps its
                # fully independent execution path (and its exact legacy
                # per-slide accounting).
                continue
            plan = bucket[0].algorithm.build_shared_plan(bucket)
            if plan is not None:
                self._plans.append(plan)

    def plans(self) -> List[SharedPlan]:
        return list(self._plans)

    def describe(self) -> Dict[str, object]:
        """Introspection record shown by ``StreamEngine.groups()``."""
        kind = "time-based" if self.time_based else "count-based"
        return {
            "n": self.n,
            "s": self.s,
            "window": kind,
            "members": [subscription.name for subscription in self._members],
            "plans": [plan.describe() for plan in self._plans],
        }

    # ------------------------------------------------------------------
    # Ingestion (driven by the engine)
    # ------------------------------------------------------------------
    def push(
        self, obj: StreamObject, collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        """Feed one object; return each member's newly completed answers.

        ``collect=False`` skips gathering the answers entirely (callbacks
        and retention still run) and always returns an empty sequence.
        """
        if not self._started:
            self.start()
        return self._dispatch(self._batcher.push(obj), collect)

    def push_batch(
        self, objects: Sequence[StreamObject], collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        """Feed a chunk of objects through the shared batcher at once."""
        if not self._started:
            self.start()
        return self._dispatch(self._batcher.push_batch(objects), collect)

    def flush(
        self, collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        """Emit the end-of-stream report of a time-based window (if any)."""
        if not self._started:
            self.start()
        return self._dispatch(self._batcher.flush(), collect)

    # ------------------------------------------------------------------
    def _dispatch(
        self, events: Sequence[SlideEvent], collect: bool = True
    ) -> Sequence[Tuple[Subscription, List[TopKResult]]]:
        if not events:
            return ()
        produced: Dict[Subscription, List[TopKResult]] = {}
        for event in events:
            shared_for: Dict[int, SharedSlide] = {}
            for plan in self._plans:
                if not plan.has_open_members():
                    continue
                shared = plan.prepare(event)
                for subscription in plan.subscriptions():
                    shared_for[id(subscription)] = shared
            # Snapshot: a result callback may unsubscribe a member (which
            # mutates self._members) without desyncing this dispatch.
            for subscription in tuple(self._members):
                result = subscription._deliver_slide(
                    event, shared_for.get(id(subscription))
                )
                if collect and result is not None:
                    produced.setdefault(subscription, []).append(result)
        if not collect:
            return ()
        return [
            (subscription, produced[subscription])
            for subscription in self._members
            if subscription in produced
        ]
