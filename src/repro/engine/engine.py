"""Push-based facade over every continuous top-k algorithm in the library.

:class:`StreamEngine` is the single execution path of the reproduction:
the one-shot :func:`repro.run_algorithm`, the comparison helper, the
multi-query engine, the CLI, and the benchmarks all drive it.  Callers
describe queries with :class:`~repro.engine.spec.QuerySpec` (or a plain
:class:`~repro.core.query.TopKQuery`), attach any algorithm registered in
:mod:`repro.registry` by name, and push stream objects one at a time::

    engine = StreamEngine()
    fire = engine.subscribe("fire", QuerySpec(n=5000, k=10, s=100), algorithm="SAP")
    for obj in sensor_feed:           # unbounded — never materialised
        engine.push(obj)
        for result in fire.drain():
            alert(result)
    engine.close()

Memory stays O(window) per subscription: the engine holds one partially
filled slide batcher per query and whatever answers the caller asked it to
retain — nothing else.  ``push_many`` consumes any iterable lazily, so a
generator of millions of objects flows through in constant space.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

from ..core.exceptions import AlgorithmStateError
from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..registry import create_algorithm
from .spec import QuerySpec, resolve_query
from .subscription import ResultCallback, Subscription

#: What ``subscribe`` accepts as the algorithm: a registry name, a ready
#: instance, or any factory/class called as ``factory(query, **options)``.
AlgorithmLike = Union[str, ContinuousTopKAlgorithm, Callable[..., ContinuousTopKAlgorithm]]


class StreamEngine:
    """Shared, push-based execution of any number of continuous queries."""

    def __init__(self, *, keep_results: bool = True) -> None:
        self._subscriptions: Dict[str, Subscription] = {}
        self._default_keep_results = keep_results
        self._closed = False

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        name: str,
        spec: Union[QuerySpec, TopKQuery, None] = None,
        algorithm: AlgorithmLike = "SAP",
        *,
        keep_results: Optional[bool] = None,
        result_buffer: Optional[int] = None,
        collect_metrics: bool = True,
        on_result: Optional[ResultCallback] = None,
        **algorithm_options: object,
    ) -> Subscription:
        """Register a continuous query and return its subscription handle.

        Parameters
        ----------
        name:
            Unique identifier of the query on this engine.
        spec:
            The query, as a :class:`QuerySpec` builder or a ready
            :class:`TopKQuery`.  May be omitted when ``algorithm`` is an
            instance (the instance already knows its query).
        algorithm:
            A name from :mod:`repro.registry` (default ``"SAP"``), an
            algorithm instance, or a factory called as
            ``factory(query, **algorithm_options)``.
        keep_results / result_buffer:
            Retention policy for answers: ``keep_results=False`` retains
            nothing (callbacks still fire), ``result_buffer=b`` keeps only
            the ``b`` most recent answers.  The default retains everything,
            matching the legacy one-shot API.
        collect_metrics:
            Record candidate counts, memory, and per-slide latency.
        on_result:
            Optional callback invoked as ``callback(name, result)`` for
            every answer.
        """
        self._ensure_open()
        if name in self._subscriptions:
            raise ValueError(f"query {name!r} is already subscribed")

        instance = self._resolve_algorithm(spec, algorithm, algorithm_options)
        subscription = Subscription(
            name,
            instance,
            keep_results=self._default_keep_results if keep_results is None else keep_results,
            result_buffer=result_buffer,
            collect_metrics=collect_metrics,
        )
        if on_result is not None:
            subscription.on_result(on_result)
        self._subscriptions[name] = subscription
        return subscription

    def unsubscribe(self, name: str) -> None:
        """Close and remove one query."""
        subscription = self._subscriptions.pop(name, None)
        if subscription is None:
            raise KeyError(f"no subscription named {name!r}")
        subscription.close()

    def subscription(self, name: str) -> Subscription:
        try:
            return self._subscriptions[name]
        except KeyError:
            raise KeyError(
                f"no subscription named {name!r}; active: {sorted(self._subscriptions)}"
            ) from None

    def subscriptions(self) -> List[str]:
        """Names of every subscription, in registration order."""
        return list(self._subscriptions)

    def __contains__(self, name: object) -> bool:
        return name in self._subscriptions

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, obj: StreamObject) -> Dict[str, List[TopKResult]]:
        """Feed one object to every open subscription.

        Returns, per query name, the answers (possibly none) whose windows
        were completed by this object.
        """
        self._ensure_open()
        if not self._subscriptions:
            raise ValueError("no queries subscribed")
        produced: Dict[str, List[TopKResult]] = {}
        for subscription in self._subscriptions.values():
            new_results = subscription._process(obj)
            if new_results:
                produced[subscription.name] = new_results
        return produced

    def push_many(self, objects: Iterable[StreamObject]) -> int:
        """Feed any iterable of objects, lazily; return how many were pushed.

        The iterable is never materialised — a generator of arbitrarily many
        objects streams through in O(window) memory.
        """
        count = 0
        for obj in objects:
            self.push(obj)
            count += 1
        return count

    def flush(self) -> Dict[str, List[TopKResult]]:
        """Emit the end-of-stream report of time-based windows (if any)."""
        self._ensure_open()
        produced: Dict[str, List[TopKResult]] = {}
        for subscription in self._subscriptions.values():
            new_results = subscription._flush()
            if new_results:
                produced[subscription.name] = new_results
        return produced

    # ------------------------------------------------------------------
    # Reading answers and state
    # ------------------------------------------------------------------
    def results(self, name: str) -> List[TopKResult]:
        """Retained answers of one query (see ``keep_results``)."""
        return self.subscription(name).results()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time state of every subscription, keyed by name."""
        return {name: sub.snapshot() for name, sub in self._subscriptions.items()}

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate performance statistics of every subscription."""
        return {name: sub.stats() for name, sub in self._subscriptions.items()}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> Dict[str, List[TopKResult]]:
        """Flush pending time-based reports, then close every subscription.

        Returns the answers produced by the final flush.  Closing twice is
        a no-op; pushing after close raises :class:`AlgorithmStateError`.
        """
        if self._closed:
            return {}
        produced = self.flush()
        for subscription in self._subscriptions.values():
            subscription.close()
        self._closed = True
        return produced

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise AlgorithmStateError("the engine is closed")

    @staticmethod
    def _resolve_algorithm(
        spec: Union[QuerySpec, TopKQuery, None],
        algorithm: AlgorithmLike,
        options: Dict[str, object],
    ) -> ContinuousTopKAlgorithm:
        if isinstance(algorithm, ContinuousTopKAlgorithm):
            if options:
                raise ValueError(
                    "algorithm options cannot be applied to a ready instance: "
                    f"{sorted(options)}"
                )
            if spec is not None and resolve_query(spec) != algorithm.query:
                raise ValueError(
                    "the given spec disagrees with the algorithm instance's query; "
                    "omit the spec or build the instance from it"
                )
            return algorithm
        if spec is None:
            raise ValueError("a QuerySpec (or TopKQuery) is required")
        query = resolve_query(spec)
        if isinstance(algorithm, str):
            return create_algorithm(algorithm, query, **options)
        return algorithm(query, **options)
